"""Frozen scalar reference kernels for the analytical-model layer.

The PR-2 ``_perfref`` pattern applied to the model layer: this module
holds self-contained, scalar (one-sample-per-call) copies of the hot
analytical models that :mod:`repro.mc` vectorizes -- the accelerator-ROI
cashflow model, the commodity-year Monte-Carlo scenario, the SoC-vs-SiP
volume curve, market concentration / Bass adoption paths, and the survey
theme statistics. The perf suite (``python -m repro perf``, suite
``models``) times each batch kernel against its reference here, and the
equivalence tests in ``tests/test_mc_models.py`` pin the two paths to
identical outputs.

Determinism contract: every reference draws random variates from the
same ``numpy`` generator stream *in the same order* as the batch kernel
(batched ``Generator`` draws are stream-equivalent to repeated scalar
draws of the same distribution) and evaluates the model with the same
floating-point operation order, using ``numpy`` scalar transcendentals
(``np.log`` / ``np.exp``) rather than ``math.*`` so both sides share one
libm entry point. Batch-vs-reference equality is therefore bit-for-bit,
and the perf harness verifies it before reporting any timing.

Nothing here imports the live model modules: like ``_perfref``, the
formulas are frozen copies, so later optimizations to the production
kernels cannot silently change what "reference" means.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "reference_adoption_paths",
    "reference_arrival_times",
    "reference_client_ids",
    "reference_commodity_year_samples",
    "reference_cost_per_unit_curve",
    "reference_hhi",
    "reference_npv_sweep",
    "reference_payback_sweep",
    "reference_sampled_market_shares",
    "reference_sampled_unit_costs",
    "reference_session_lengths",
    "reference_theme_statistics",
    "reference_tornado",
]


# ---------------------------------------------------------------------------
# Commodity-year Monte-Carlo scenario (core/scenarios.py pre-vectorization).
# ---------------------------------------------------------------------------


def _trl_weighted_steps(trl: int) -> float:
    """Frozen copy of ``TrlSchedule.years_to_trl``'s step weighting."""
    if not 1 <= trl <= 9:
        raise ValueError(f"TRL must be 1-9, got {trl}")
    if trl >= 9:
        return 0.0
    steps = 9 - trl
    return sum(1.0 + 0.15 * (trl + i - 1) for i in range(1, steps + 1))


def reference_commodity_year_samples(
    trl_2016: int,
    risk: float,
    investment_acceleration: float,
    n_samples: int,
    seed: int,
    start_year: int = 2016,
) -> np.ndarray:
    """Scalar-loop commodity-year sampler (one model call per sample).

    Batch draw order (all paces, then all imitation coefficients), but
    the TRL schedule and Bass inverse are evaluated per sample in pure
    Python -- the pre-vectorization cost profile.
    """
    rng = np.random.default_rng(int(seed))
    sigma = 0.05 + 0.5 * risk
    log_median = np.log(2.0)
    pace = np.array(
        [rng.lognormal(log_median, sigma) for _ in range(n_samples)]
    )
    q_sigma = 0.1 * (1 + risk)
    q_raw = np.array([rng.normal(0.4, q_sigma) for _ in range(n_samples)])
    weighted = _trl_weighted_steps(trl_2016)
    years = np.empty(n_samples)
    for i in range(n_samples):
        intro = start_year + weighted * pace[i] / investment_acceleration
        q = max(0.05, q_raw[i])
        p = 0.02
        numerator = 1.0 - 0.3
        denominator = 1.0 + (q / p) * 0.3
        years[i] = intro + -np.log(numerator / denominator) / (p + q)
    return years


# ---------------------------------------------------------------------------
# Accelerator-ROI cashflow model (econ/roi.py scalar semantics).
# ---------------------------------------------------------------------------

#: Default field values of the frozen AcceleratorInvestment model.
ROI_DEFAULTS: Dict[str, float] = {
    "hardware_usd": 0.0,
    "port_effort_person_months": 0.0,
    "engineer_usd_per_month": 12_000.0,
    "speedup": 1.0,
    "baseline_compute_value_usd_per_year": 100_000.0,
    "accelerator_power_w": 250.0,
    "electricity_usd_per_kwh": 0.10,
    "pue": 1.5,
    "utilization": 0.5,
    "discount_rate": 0.08,
}


def _roi_sample(params: Mapping[str, np.ndarray], i: int) -> Dict[str, float]:
    sample = {}
    for key, default in ROI_DEFAULTS.items():
        values = np.asarray(params.get(key, default))
        sample[key] = float(values if values.ndim == 0 else values[i])
    return sample


def _reference_cashflows(sample: Mapping[str, float], horizon: int) -> List[float]:
    upfront = (
        sample["hardware_usd"]
        + sample["port_effort_person_months"] * sample["engineer_usd_per_month"]
    )
    freed = sample["utilization"] * (1.0 - 1.0 / sample["speedup"])
    benefit = sample["baseline_compute_value_usd_per_year"] * freed
    hours = 24 * 365 * sample["utilization"]
    kwh = sample["accelerator_power_w"] / 1000.0 * hours * sample["pue"]
    energy = kwh * sample["electricity_usd_per_kwh"]
    net = benefit - energy
    return [-upfront] + [net] * horizon


def reference_npv_sweep(
    params: Mapping[str, np.ndarray], n_samples: int, horizon_years: int
) -> np.ndarray:
    """One scalar cashflow + NPV evaluation per parameter sample."""
    out = np.empty(n_samples)
    for i in range(n_samples):
        sample = _roi_sample(params, i)
        flows = _reference_cashflows(sample, horizon_years)
        rate = sample["discount_rate"]
        out[i] = sum(
            cash / (1.0 + rate) ** year for year, cash in enumerate(flows)
        )
    return out


def reference_payback_sweep(
    params: Mapping[str, np.ndarray], n_samples: int, horizon_years: int
) -> np.ndarray:
    """Scalar payback interpolation per sample; NaN when never repaid."""
    out = np.full(n_samples, np.nan)
    for i in range(n_samples):
        flows = _reference_cashflows(_roi_sample(params, i), horizon_years)
        cumulative = 0.0
        for year, cash in enumerate(flows):
            previous = cumulative
            cumulative += cash
            if cumulative >= 0.0 and year > 0:
                if cash <= 0:
                    out[i] = float(year)
                else:
                    out[i] = year - 1 + (-previous / cash)
                break
    return out


def reference_tornado(
    base: Mapping[str, float],
    ranges: Sequence[Tuple[str, float, float]],
    horizon_years: int,
) -> List[Tuple[str, float, float]]:
    """One-at-a-time NPV sweep, two scalar model calls per parameter."""
    bars = []
    for parameter, low, high in ranges:
        outputs = []
        for value in (low, high):
            sample = dict(ROI_DEFAULTS)
            sample.update(base)
            sample[parameter] = value
            flows = _reference_cashflows(sample, horizon_years)
            rate = sample["discount_rate"]
            outputs.append(
                sum(
                    cash / (1.0 + rate) ** year
                    for year, cash in enumerate(flows)
                )
            )
        bars.append((parameter, outputs[0], outputs[1]))
    return bars


# ---------------------------------------------------------------------------
# SoC-vs-SiP volume curve (econ/silicon.py + econ/soc_sip.py semantics).
# ---------------------------------------------------------------------------

_WAFER_DIAMETER_MM = 300.0


def _ref_dies_per_wafer(die_area_mm2: float) -> int:
    radius = _WAFER_DIAMETER_MM / 2.0
    wafer_area = math.pi * radius**2
    edge_loss = math.pi * _WAFER_DIAMETER_MM / np.sqrt(2.0 * die_area_mm2)
    count = wafer_area / die_area_mm2 - edge_loss
    return max(0, int(count))


def _ref_die_cost(die_area_mm2, wafer_cost_usd, defect_density, alpha=3.0):
    gross = _ref_dies_per_wafer(die_area_mm2)
    defects = defect_density * die_area_mm2 / 100.0
    good_fraction = (1.0 + defects / alpha) ** -alpha
    good = gross * good_fraction
    if good < 1e-9:
        raise ValueError("yield is effectively zero for this die size")
    return wafer_cost_usd / good


def _design_unit_costs(design) -> Tuple[float, float]:
    """Frozen per-unit silicon cost of the SoC and the SiP."""
    leading = design.leading_node
    total_area = sum(
        s.area_at_28nm_mm2 / leading.density_vs_28nm for s in design.subsystems
    )
    soc = _ref_die_cost(
        total_area, leading.wafer_cost_usd, leading.defect_density_per_cm2
    )
    die_total = 0.0
    for subsystem in design.subsystems:
        node = leading if subsystem.needs_leading_edge else design.commodity_node
        area = subsystem.area_at_28nm_mm2 / node.density_vs_28nm
        die_total += _ref_die_cost(
            area, node.wafer_cost_usd, node.defect_density_per_cm2
        )
    n = len(design.subsystems)
    packaged = die_total + (
        design.packaging.base_usd + design.packaging.per_chiplet_usd * n
    )
    sip = packaged / design.packaging.assembly_yield**n
    return soc, sip


def _design_nre_totals(design) -> Tuple[float, float]:
    """Frozen total NRE of the SoC and SiP projects."""
    rates = design.rates
    effort = sum(s.design_effort_person_years for s in design.subsystems)

    def project_nre(node, design_effort, ip_licensing, respins):
        design_cost = design_effort * rates.hardware_engineer_usd_per_year
        verification = design_cost * rates.verification_fraction
        masks = node.mask_set_cost_usd * (1 + respins)
        return design_cost + verification + masks + ip_licensing

    soc = project_nre(design.leading_node, effort + 0.25 * effort, 0.0, 1)
    mask_total = sum(
        (design.leading_node if s.needs_leading_edge else design.commodity_node)
        .mask_set_cost_usd
        for s in design.subsystems
    )
    sip = project_nre(
        design.commodity_node,
        effort,
        mask_total - design.commodity_node.mask_set_cost_usd,
        0,
    )
    return soc, sip


def reference_cost_per_unit_curve(
    design, volumes: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-volume scalar sweep, recomputing unit costs at every point.

    This is the pre-vectorization cost profile of calling
    ``ChipDesign.cost_per_unit_at_volume`` in a loop: the die-cost and
    NRE aggregation is volume-independent but was re-evaluated per call.
    """
    soc_out = np.empty(len(volumes))
    sip_out = np.empty(len(volumes))
    for i, volume in enumerate(volumes):
        soc_unit, sip_unit = _design_unit_costs(design)
        soc_nre, sip_nre = _design_nre_totals(design)
        soc_out[i] = soc_unit + soc_nre / volume
        sip_out[i] = sip_unit + sip_nre / volume
    return soc_out, sip_out


def reference_sampled_unit_costs(
    design, area_sigma: float, n_samples: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar Monte-Carlo over lognormal subsystem-area jitter."""
    rng = np.random.default_rng(int(seed))
    n_subsystems = len(design.subsystems)
    jitter = np.array(
        [rng.lognormal(0.0, area_sigma) for _ in range(n_samples * n_subsystems)]
    ).reshape(n_samples, n_subsystems)
    soc_out = np.empty(n_samples)
    sip_out = np.empty(n_samples)
    leading = design.leading_node
    for i in range(n_samples):
        total_area = 0.0
        die_total = 0.0
        for j, subsystem in enumerate(design.subsystems):
            area_28 = subsystem.area_at_28nm_mm2 * jitter[i, j]
            total_area = total_area + area_28 / leading.density_vs_28nm
            node = (
                leading
                if subsystem.needs_leading_edge
                else design.commodity_node
            )
            die_total = die_total + _ref_die_cost(
                area_28 / node.density_vs_28nm,
                node.wafer_cost_usd,
                node.defect_density_per_cm2,
            )
        soc_out[i] = _ref_die_cost(
            total_area, leading.wafer_cost_usd, leading.defect_density_per_cm2
        )
        packaged = die_total + (
            design.packaging.base_usd
            + design.packaging.per_chiplet_usd * n_subsystems
        )
        sip_out[i] = packaged / design.packaging.assembly_yield**n_subsystems
    return soc_out, sip_out


# ---------------------------------------------------------------------------
# Market concentration and Bass adoption paths (ecosystem/market.py,
# core/adoption.py scalar semantics).
# ---------------------------------------------------------------------------


def reference_hhi(shares: np.ndarray) -> np.ndarray:
    """Row-wise HHI (0-10,000 scale) via a per-row scalar fold."""
    shares = np.asarray(shares, dtype=float)
    out = np.empty(shares.shape[0])
    for i in range(shares.shape[0]):
        total = 0.0
        for share in shares[i]:
            scaled = share * 100.0
            total = total + scaled * scaled
        out[i] = total
    return out


def reference_sampled_market_shares(
    shares: Sequence[float], sigma: float, n_samples: int, seed: int
) -> np.ndarray:
    """Scalar lognormal share jitter with per-row renormalization."""
    rng = np.random.default_rng(int(seed))
    k = len(shares)
    jitter = np.array(
        [rng.lognormal(0.0, sigma) for _ in range(n_samples * k)]
    ).reshape(n_samples, k)
    out = np.empty((n_samples, k))
    for i in range(n_samples):
        row = [shares[j] * jitter[i, j] for j in range(k)]
        total = 0.0
        for value in row:
            total = total + value
        for j in range(k):
            out[i, j] = row[j] / total
    return out


def reference_adoption_paths(
    p: float, q_values: np.ndarray, t_grid: np.ndarray
) -> np.ndarray:
    """Scalar Bass cumulative-fraction paths, one (sample, t) at a time."""
    out = np.empty((len(q_values), len(t_grid)))
    for i, q in enumerate(q_values):
        for j, t in enumerate(t_grid):
            if t < 0:
                out[i, j] = 0.0
                continue
            expo = np.exp(-(p + q) * t)
            out[i, j] = (1.0 - expo) / (1.0 + (q / p) * expo)
    return out


# ---------------------------------------------------------------------------
# Survey theme statistics (survey/analysis.py scalar semantics).
# ---------------------------------------------------------------------------


def reference_theme_statistics(
    interview_themes: Sequence[Sequence[str]],
    roles: Sequence[str],
    themes: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Per-theme corpus fraction and per-role cross-tab, scalar loops.

    One full pass over the corpus per theme (membership scan per
    interview), as the pre-vectorization analysis layer did.
    """
    n = len(interview_themes)
    out: Dict[str, Dict[str, float]] = {}
    for theme in themes:
        hits = sum(1 for coded in interview_themes if theme in coded)
        totals: Dict[str, int] = {}
        role_hits: Dict[str, int] = {}
        for coded, role in zip(interview_themes, roles):
            totals[role] = totals.get(role, 0) + 1
            if theme in coded:
                role_hits[role] = role_hits.get(role, 0) + 1
        stats = {"fraction": hits / n}
        for role, count in totals.items():
            stats[f"fraction.{role}"] = role_hits.get(role, 0) / count
        out[theme] = stats
    return out


# ---------------------------------------------------------------------------
# Traffic-scenario generators (mc/traffic.py pre-vectorization).
# ---------------------------------------------------------------------------

_TWO_PI = 2.0 * np.pi


def reference_arrival_times(
    base_rate_hz: float,
    horizon_s: float,
    diurnal_amplitude: float,
    diurnal_period_s: float,
    flash_crowds: Sequence[Tuple[float, float, float, float, float]],
    burst_multiplier: float,
    burst_mean_s: float,
    calm_mean_s: float,
    seed: int,
) -> np.ndarray:
    """Scalar-loop inhomogeneous-Poisson thinning (one candidate at a time).

    Frozen copy of the pre-vectorization scenario generator: the same
    draw order as :func:`repro.mc.traffic.arrival_times` (one Poisson
    count, per-candidate uniforms, the MMPP switch loop, per-candidate
    acceptance uniforms) with the rate function -- diurnal sinusoid,
    additive flash-crowd excess, burst-state multiplier -- evaluated in
    pure Python per candidate. ``flash_crowds`` entries are
    ``(start_s, ramp_s, peak_multiplier, decay_s, hold_s)`` tuples.
    """
    rng = np.random.default_rng(int(seed))
    lam_max = base_rate_hz * (1.0 + diurnal_amplitude)
    boost = 0.0
    for _start, _ramp, peak, _decay, _hold in flash_crowds:
        boost = boost + (peak - 1.0)
    lam_max = lam_max * (1.0 + boost)
    bursty = burst_multiplier > 1.0
    if bursty:
        lam_max = lam_max * burst_multiplier
    m = int(rng.poisson(lam_max * horizon_s))
    if m == 0:
        return np.empty(0, dtype=np.float64)
    candidates = np.sort(
        np.array([rng.random() * horizon_s for _ in range(m)])
    )
    edges = np.empty(0, dtype=np.float64)
    if bursty:
        edge_list = []
        t_edge = 0.0
        in_burst = False
        while t_edge < horizon_s:
            mean = burst_mean_s if in_burst else calm_mean_s
            t_edge += float(rng.exponential(mean))
            edge_list.append(t_edge)
            in_burst = not in_burst
        edges = np.asarray(edge_list, dtype=np.float64)
    accepted: List[float] = []
    for t in candidates:
        if diurnal_amplitude == 0.0:
            diurnal = 1.0
        else:
            diurnal = 1.0 + diurnal_amplitude * np.sin(
                _TWO_PI * (t / diurnal_period_s)
            )
        flash = 1.0
        for start, ramp, peak, decay, hold in flash_crowds:
            rel = t - start
            shape = rel / ramp
            if shape < 0.0:
                shape = 0.0
            elif shape > 1.0:
                shape = 1.0
            tail_rel = rel - (ramp + hold)
            if tail_rel > 0.0:
                shape = np.exp(-tail_rel / decay)
            flash = flash + (peak - 1.0) * shape
        rate = base_rate_hz * diurnal
        rate = rate * flash
        if bursty:
            interval = int(np.searchsorted(edges, t, side="right"))
            rate = rate * (burst_multiplier if interval & 1 else 1.0)
        if rng.random() * lam_max < rate:
            accepted.append(float(t))
    return np.asarray(accepted, dtype=np.float64)


def reference_session_lengths(
    tail: str,
    median_s: float,
    sigma: float,
    shape: float,
    scale_s: float,
    n: int,
    seed: int,
) -> np.ndarray:
    """Scalar-loop heavy-tailed session lengths (one draw per session).

    Same parameterization and stream as
    :func:`repro.mc.traffic.session_lengths`: lognormal by median and
    log-space sigma, Pareto by shape and scale with minimum ``scale``.
    """
    rng = np.random.default_rng(int(seed))
    if tail == "lognormal":
        log_median = np.log(median_s)
        return np.array(
            [rng.lognormal(log_median, sigma) for _ in range(n)],
            dtype=np.float64,
        )
    return np.array(
        [scale_s * (1.0 + rng.pareto(shape)) for _ in range(n)],
        dtype=np.float64,
    )


def reference_client_ids(
    n_clients: int,
    skew: float,
    n: int,
    seed: int,
) -> np.ndarray:
    """Scalar-loop Zipf client ids (one CDF inversion per arrival).

    Same rank-CDF construction and uniform stream as
    :func:`repro.mc.traffic.client_ids`, inverted one draw at a time.
    """
    rng = np.random.default_rng(int(seed))
    ranks = np.arange(1, n_clients + 1, dtype=np.float64)
    weights = ranks**-skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.asarray(
        [int(np.searchsorted(cdf, rng.random(), side="right")) for _ in range(n)],
        dtype=np.int64,
    )

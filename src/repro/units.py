"""Unit helpers and constants shared across the library.

All quantities in the library are plain floats in SI-ish base units with
the unit spelled out in the variable name (``_s``, ``_w``, ``_usd``,
``_gbps``, ``_bytes``).  This module centralizes the conversion factors so
call sites never hand-roll powers of ten.
"""

from __future__ import annotations

# --- data sizes ---------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

# --- rates --------------------------------------------------------------

GBPS = 1e9  # bits per second in one gigabit/s
KFLOPS = 1e3
MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12

# --- time ---------------------------------------------------------------

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0
YEAR = 365.0 * DAY

# --- energy / power -----------------------------------------------------

KWH_J = 3.6e6  # joules in one kilowatt-hour


def bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return n_bytes * 8.0


def gbps_to_bytes_per_s(rate_gbps: float) -> float:
    """Convert a link rate in Gbit/s to bytes/s."""
    return rate_gbps * GBPS / 8.0


def bytes_per_s_to_gbps(rate_bps: float) -> float:
    """Convert a rate in bytes/s to Gbit/s."""
    return rate_bps * 8.0 / GBPS


def joules_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / KWH_J


def kwh_to_joules(energy_kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return energy_kwh * KWH_J


def transfer_time_s(size_bytes: float, rate_gbps: float) -> float:
    """Serialization time of ``size_bytes`` on a ``rate_gbps`` link."""
    if rate_gbps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_gbps}")
    return bits(size_bytes) / (rate_gbps * GBPS)


def pretty_bytes(n_bytes: float) -> str:
    """Human-readable byte count, e.g. ``pretty_bytes(2.5e9) == '2.50 GB'``."""
    magnitude = abs(n_bytes)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if magnitude >= unit:
            return f"{n_bytes / unit:.2f} {name}"
    return f"{n_bytes:.0f} B"


def pretty_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``pretty_duration(90) == '1.50 min'``."""
    magnitude = abs(seconds)
    if magnitude >= DAY:
        return f"{seconds / DAY:.2f} d"
    if magnitude >= HOUR:
        return f"{seconds / HOUR:.2f} h"
    if magnitude >= MINUTE:
        return f"{seconds / MINUTE:.2f} min"
    if magnitude >= 1.0:
        return f"{seconds:.2f} s"
    if magnitude >= MS:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds / US:.2f} us"

"""Online job-stream scheduling: R11's *dynamic* resource allocation.

Recommendation 11 asks for "dynamic scheduling and resource allocation
strategies" for heterogeneous platforms. The offline schedulers compare
placement quality on one DAG; this module compares *allocation* policies
over a stream of arriving jobs:

- ``run_exclusive``: jobs served FIFO, each getting the whole pool
  (the coarse-grained cluster-per-job model);
- ``run_shared``: all ready tasks from all arrived jobs compete for
  executors under earliest-finish-time placement (work-conserving
  dynamic allocation).

Shared allocation wins on mean job completion time whenever jobs cannot
individually saturate the pool -- the quantitative case for R11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytics.blocks import BlockRegistry, default_blocks
from repro.engine import Observability
from repro.errors import SchedulingError
from repro.scheduler.hetero import Executor, _task_time, _transfer_time
from repro.scheduler.task import Job


@dataclass(frozen=True)
class OnlineJob:
    """A job plus its arrival time."""

    arrival_s: float
    job: Job

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise SchedulingError("negative arrival time")


@dataclass(frozen=True)
class HostOutage:
    """One host-level outage window.

    While the window is open every executor on ``host`` is unavailable:
    a task that would start inside the window waits (no work lost), and
    a task already running when the window opens is killed and restarted
    from scratch once the host comes back -- the partial execution is
    counted as wasted work.
    """

    host: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise SchedulingError("negative outage start")
        if self.end_s <= self.start_s:
            raise SchedulingError("outage must end after it starts")


@dataclass
class OnlineOutcome:
    """Per-job completion accounting for one policy run."""

    completions: Dict[str, float]  # job name -> finish time
    arrivals: Dict[str, float]
    rescheduled: int = 0  # task executions killed by outages and redone
    wasted_s: float = 0.0  # executor-seconds of killed partial work

    @property
    def makespan_s(self) -> float:
        """Finish of the last job."""
        return max(self.completions.values())

    @property
    def mean_completion_time_s(self) -> float:
        """Mean of (finish - arrival) across jobs."""
        waits = [
            self.completions[name] - self.arrivals[name]
            for name in self.completions
        ]
        return sum(waits) / len(waits)


class OnlineScheduler:
    """Simulates job streams over a fixed executor pool."""

    def __init__(
        self,
        executors: List[Executor],
        blocks: Optional[BlockRegistry] = None,
        link_gbps: float = 10.0,
        observability: Optional[Observability] = None,
    ) -> None:
        if not executors:
            raise SchedulingError("need at least one executor")
        self.executors = list(executors)
        self.blocks = blocks or default_blocks()
        self.link_gbps = link_gbps
        self.observability = observability

    # -- policies -----------------------------------------------------------

    def run_exclusive(self, stream: List[OnlineJob]) -> OnlineOutcome:
        """FIFO whole-pool allocation: one job at a time."""
        ordered = self._validated(stream)
        pool_free_at = 0.0
        completions: Dict[str, float] = {}
        for online in ordered:
            start = max(online.arrival_s, pool_free_at)
            job_finish = self._eft_makespan(online.job, base_time=start)
            completions[online.job.name] = job_finish
            pool_free_at = job_finish
            if self.observability is not None:
                self.observability.spans.record(
                    "exclusive.job",
                    start,
                    job_finish,
                    tags={
                        "subsystem": "scheduler.online",
                        "job": online.job.name,
                        "policy": "exclusive",
                    },
                )
        outcome = OnlineOutcome(
            completions=completions,
            arrivals={o.job.name: o.arrival_s for o in ordered},
        )
        self._record_outcome(outcome, policy="exclusive")
        return outcome

    def run_shared(
        self,
        stream: List[OnlineJob],
        outages: Optional[List[HostOutage]] = None,
    ) -> OnlineOutcome:
        """Dynamic work-conserving allocation across concurrent jobs.

        Tasks from all jobs are placed in global earliest-ready order
        with EFT, each constrained by its job's arrival time. With
        ``outages``, executors on a failed host are unavailable during
        each window: tasks caught mid-run are killed and restarted after
        the outage (EFT sees the post-outage finish time, so placement
        routes around down hosts when a surviving executor finishes
        sooner), and the outcome reports the kill count and wasted work.
        """
        ordered = self._validated(stream)
        outage_windows = self._outage_windows(outages)
        rescheduled = 0
        wasted_s = 0.0
        free_at: Dict[str, float] = {e.name: 0.0 for e in self.executors}
        finish: Dict[Tuple[str, str], Tuple[float, Executor]] = {}
        completions: Dict[str, float] = {}
        # Interleave jobs' topological orders by arrival, then task order.
        work: List[Tuple[float, str, str]] = []
        for online in ordered:
            for task_id in online.job.topological_order():
                work.append((online.arrival_s, online.job.name, task_id))
        jobs = {o.job.name: o.job for o in ordered}
        arrivals = {o.job.name: o.arrival_s for o in ordered}

        for arrival, job_name, task_id in work:
            task = jobs[job_name].tasks[task_id]
            best: Optional[Tuple[float, float, Executor, int, float]] = None
            for executor in self.executors:
                duration = _task_time(task, executor, self.blocks)
                if duration is None:
                    continue
                ready = arrival
                for dep in task.deps:
                    dep_finish, dep_exec = finish[(job_name, dep)]
                    ready = max(
                        ready,
                        dep_finish
                        + _transfer_time(
                            jobs[job_name].tasks[dep],
                            dep_exec.host,
                            executor.host,
                            self.link_gbps,
                        ),
                    )
                start = max(ready, free_at[executor.name])
                kills, wasted = 0, 0.0
                windows = outage_windows.get(executor.name)
                if windows:
                    start, kills, wasted = _next_free_interval(
                        start, duration, windows
                    )
                candidate = (start + duration, start, executor, kills, wasted)
                if best is None or (candidate[0], candidate[2].name) < (
                    best[0], best[2].name
                ):
                    best = candidate
            if best is None:
                raise SchedulingError(
                    f"no executor can run {job_name}/{task_id}"
                )
            end, _start, executor, kills, wasted = best
            rescheduled += kills
            wasted_s += wasted
            free_at[executor.name] = end
            finish[(job_name, task_id)] = (end, executor)
            completions[job_name] = max(completions.get(job_name, 0.0), end)
            if self.observability is not None:
                self.observability.spans.record(
                    f"task.{task.block}",
                    _start,
                    end,
                    tags={
                        "subsystem": "scheduler.online",
                        "job": job_name,
                        "task": task_id,
                        "executor": executor.name,
                        "policy": "shared",
                    },
                )
                registry = self.observability.registry
                registry.counter("scheduler.tasks_placed").inc()
                registry.counter(f"scheduler.busy_s.{executor.name}").inc(
                    end - _start
                )
                if kills:
                    registry.counter("scheduler.tasks_rescheduled").inc(kills)
                    registry.counter("scheduler.wasted_s").inc(wasted)
        outcome = OnlineOutcome(
            completions=completions,
            arrivals=arrivals,
            rescheduled=rescheduled,
            wasted_s=wasted_s,
        )
        self._record_outcome(outcome, policy="shared")
        return outcome

    # -- helpers ---------------------------------------------------------------

    def _outage_windows(
        self, outages: Optional[List[HostOutage]]
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Merged, sorted outage windows keyed by executor name."""
        if not outages:
            return {}
        by_host: Dict[str, List[Tuple[float, float]]] = {}
        for outage in outages:
            by_host.setdefault(outage.host, []).append(
                (outage.start_s, outage.end_s)
            )
        return {
            executor.name: _merge_windows(by_host[executor.host])
            for executor in self.executors
            if executor.host in by_host
        }

    def _record_outcome(self, outcome: OnlineOutcome, policy: str) -> None:
        """Publish per-job completion-time histograms for one policy run."""
        if self.observability is None:
            return
        histogram = self.observability.registry.histogram(
            f"scheduler.completion_s.{policy}"
        )
        for name, finish_s in outcome.completions.items():
            histogram.observe(finish_s - outcome.arrivals[name])

    def _validated(self, stream: List[OnlineJob]) -> List[OnlineJob]:
        if not stream:
            raise SchedulingError("empty job stream")
        names = [o.job.name for o in stream]
        if len(set(names)) != len(names):
            raise SchedulingError("job names must be unique in a stream")
        for online in stream:
            online.job.validate()
        return sorted(stream, key=lambda o: (o.arrival_s, o.job.name))

    def _eft_makespan(self, job: Job, base_time: float) -> float:
        """EFT makespan of one job starting at ``base_time`` on an idle pool."""
        free_at: Dict[str, float] = {e.name: base_time for e in self.executors}
        finish: Dict[str, Tuple[float, Executor]] = {}
        for task_id in job.topological_order():
            task = job.tasks[task_id]
            best: Optional[Tuple[float, float, Executor]] = None
            for executor in self.executors:
                duration = _task_time(task, executor, self.blocks)
                if duration is None:
                    continue
                ready = base_time
                for dep in task.deps:
                    dep_finish, dep_exec = finish[dep]
                    ready = max(
                        ready,
                        dep_finish
                        + _transfer_time(
                            job.tasks[dep], dep_exec.host, executor.host,
                            self.link_gbps,
                        ),
                    )
                start = max(ready, free_at[executor.name])
                candidate = (start + duration, start, executor)
                if best is None or (candidate[0], candidate[2].name) < (
                    best[0], best[2].name
                ):
                    best = candidate
            if best is None:
                raise SchedulingError(f"no executor can run {task_id}")
            end, _start, executor = best
            free_at[executor.name] = end
            finish[task_id] = (end, executor)
        return max(end for end, _ in finish.values())


def _merge_windows(
    windows: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Sort and coalesce overlapping or touching (start, end) intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _next_free_interval(
    start: float,
    duration: float,
    windows: List[Tuple[float, float]],
) -> Tuple[float, int, float]:
    """Earliest start for an uninterrupted ``duration`` run given outages.

    ``windows`` must be sorted and disjoint (see :func:`_merge_windows`).
    Returns ``(start, kills, wasted_s)``: a start inside a window is
    deferred to the window's end for free (the executor was down, so the
    task never launched), while a window opening mid-run kills the task
    -- the partial run before the window counts as wasted work and the
    task restarts from scratch after the window.
    """
    kills = 0
    wasted = 0.0
    for window_start, window_end in windows:
        if window_end <= start:
            continue
        if window_start <= start:
            start = window_end
        elif start + duration > window_start:
            kills += 1
            wasted += window_start - start
            start = window_end
        else:
            break
    return start, kills, wasted


def poisson_job_stream(
    n_jobs: int,
    mean_interarrival_s: float,
    job_factory,
    seed: int = 17,
) -> List[OnlineJob]:
    """A Poisson stream of jobs built by ``job_factory(index)``."""
    from repro.engine.randomness import RandomStream

    if n_jobs < 1:
        raise SchedulingError("need at least one job")
    if mean_interarrival_s <= 0:
        raise SchedulingError("interarrival must be positive")
    rng = RandomStream(seed, "arrivals")
    stream = []
    t = 0.0
    for index in range(n_jobs):
        t += rng.exponential(mean_interarrival_s)
        stream.append(OnlineJob(arrival_s=t, job=job_factory(index)))
    return stream

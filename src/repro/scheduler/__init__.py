"""Heterogeneous task scheduling (Recommendation 11)."""

from repro.scheduler.hetero import (
    Assignment,
    Executor,
    HeterogeneousScheduler,
    Schedule,
    executors_from_cluster,
)
from repro.scheduler.online import (
    HostOutage,
    OnlineJob,
    OnlineOutcome,
    OnlineScheduler,
    poisson_job_stream,
)
from repro.scheduler.task import Job, Task, chain_job, fork_join_job

__all__ = [
    "Assignment",
    "Executor",
    "HeterogeneousScheduler",
    "HostOutage",
    "Job",
    "OnlineJob",
    "OnlineOutcome",
    "OnlineScheduler",
    "Schedule",
    "Task",
    "chain_job",
    "executors_from_cluster",
    "fork_join_job",
    "poisson_job_stream",
]

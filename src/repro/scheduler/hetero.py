"""Heterogeneous DAG schedulers: FIFO, greedy-EFT and HEFT.

The E10 experiment (R11: "creation of dynamic scheduling and resource
allocation strategies") compares:

- ``fifo``: heterogeneity-blind -- tasks in topological order onto the
  next free capable executor (round-robin), ignoring device speed;
- ``greedy_eft``: tasks in topological order, each placed on the
  executor giving the earliest finish time (dynamic allocation);
- ``heft``: the classic Heterogeneous-Earliest-Finish-Time list
  scheduler -- upward-rank priorities, then EFT placement with
  inter-host communication costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analytics.blocks import BlockRegistry, default_blocks
from repro.errors import SchedulingError
from repro.node.device import ComputeDevice
from repro.scheduler.task import Job, Task


@dataclass(frozen=True)
class Executor:
    """One schedulable device instance on a named host."""

    name: str
    host: str
    device: ComputeDevice


@dataclass
class Assignment:
    """Where and when one task ran."""

    task_id: str
    executor: Executor
    start_s: float
    finish_s: float


@dataclass
class Schedule:
    """A complete schedule for a job."""

    job: Job
    assignments: Dict[str, Assignment] = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        """Finish time of the last task."""
        if not self.assignments:
            raise SchedulingError("empty schedule")
        return max(a.finish_s for a in self.assignments.values())

    def executor_busy_s(self) -> Dict[str, float]:
        """Total busy time per executor."""
        busy: Dict[str, float] = {}
        for assignment in self.assignments.values():
            name = assignment.executor.name
            busy[name] = busy.get(name, 0.0) + (
                assignment.finish_s - assignment.start_s
            )
        return busy

    def total_energy_j(self) -> float:
        """Active energy: each task's duration at its device's TDP."""
        return sum(
            (a.finish_s - a.start_s) * a.executor.device.tdp_w
            for a in self.assignments.values()
        )

    def validate(self) -> None:
        """Check precedence and executor-overlap invariants."""
        for task_id, task in self.job.tasks.items():
            if task_id not in self.assignments:
                raise SchedulingError(f"task {task_id} unscheduled")
            mine = self.assignments[task_id]
            for dep in task.deps:
                if self.assignments[dep].finish_s > mine.start_s + 1e-9:
                    raise SchedulingError(
                        f"task {task_id} starts before dep {dep} finishes"
                    )
        by_executor: Dict[str, List[Assignment]] = {}
        for assignment in self.assignments.values():
            by_executor.setdefault(assignment.executor.name, []).append(assignment)
        for name, assignments in by_executor.items():
            assignments.sort(key=lambda a: a.start_s)
            for first, second in zip(assignments, assignments[1:]):
                if first.finish_s > second.start_s + 1e-9:
                    raise SchedulingError(f"overlap on executor {name}")


def executors_from_cluster(cluster) -> List[Executor]:
    """One executor per (host, device) in a cluster."""
    out = []
    for host in cluster.hosts:
        server = cluster.server_at(host)
        for index, device in enumerate(server.devices):
            out.append(Executor(f"{host}/{device.name}#{index}", host, device))
    if not out:
        raise SchedulingError("cluster yields no executors")
    return out


def _task_time(
    task: Task, executor: Executor, blocks: BlockRegistry
) -> Optional[float]:
    block = blocks.get(task.block)
    if not block.runs_on(executor.device):
        return None
    return block.time_s(executor.device, task.n_records)


def _transfer_time(task: Task, src_host: str, dst_host: str,
                   link_gbps: float) -> float:
    if src_host == dst_host or task.output_bytes == 0:
        return 0.0
    return task.output_bytes * 8.0 / (link_gbps * 1e9)


class HeterogeneousScheduler:
    """Builds schedules for jobs on a fixed executor pool."""

    def __init__(
        self,
        executors: List[Executor],
        blocks: Optional[BlockRegistry] = None,
        link_gbps: float = 10.0,
    ) -> None:
        if not executors:
            raise SchedulingError("need at least one executor")
        if link_gbps <= 0:
            raise SchedulingError("link rate must be positive")
        self.executors = list(executors)
        self.blocks = blocks or default_blocks()
        self.link_gbps = link_gbps

    # -- shared placement machinery -----------------------------------------

    def _place(
        self,
        order: List[str],
        job: Job,
        consider_speed: bool,
    ) -> Schedule:
        schedule = Schedule(job)
        free_at: Dict[str, float] = {e.name: 0.0 for e in self.executors}
        round_robin = 0
        for task_id in order:
            task = job.tasks[task_id]
            candidates: List[Tuple[float, float, Executor]] = []
            for executor in self.executors:
                duration = _task_time(task, executor, self.blocks)
                if duration is None:
                    continue
                ready = 0.0
                for dep in task.deps:
                    dep_assignment = schedule.assignments[dep]
                    arrival = dep_assignment.finish_s + _transfer_time(
                        job.tasks[dep],
                        dep_assignment.executor.host,
                        executor.host,
                        self.link_gbps,
                    )
                    ready = max(ready, arrival)
                start = max(ready, free_at[executor.name])
                candidates.append((start + duration, start, executor))
            if not candidates:
                raise SchedulingError(
                    f"no executor can run task {task_id} ({task.block})"
                )
            if consider_speed:
                finish, start, executor = min(
                    candidates, key=lambda c: (c[0], c[2].name)
                )
            else:
                # FIFO: rotate through capable executors ignoring speed.
                capable = sorted(
                    {c[2].name: c for c in candidates}.values(),
                    key=lambda c: c[2].name,
                )
                finish, start, executor = capable[round_robin % len(capable)]
                round_robin += 1
            free_at[executor.name] = finish
            schedule.assignments[task_id] = Assignment(
                task_id, executor, start, finish
            )
        schedule.validate()
        return schedule

    # -- algorithms ------------------------------------------------------------

    def fifo(self, job: Job) -> Schedule:
        """Heterogeneity-blind round-robin placement."""
        job.validate()
        return self._place(job.topological_order(), job, consider_speed=False)

    def greedy_eft(self, job: Job) -> Schedule:
        """Topological order, earliest-finish-time placement."""
        job.validate()
        return self._place(job.topological_order(), job, consider_speed=True)

    def heft(self, job: Job) -> Schedule:
        """HEFT: upward-rank priority order, then EFT placement."""
        job.validate()
        ranks = self._upward_ranks(job)
        order = sorted(job.tasks, key=lambda tid: (-ranks[tid], tid))
        order = self._legalize(order, job)
        return self._place(order, job, consider_speed=True)

    def energy_aware(self, job: Job, slack: float = 1.5) -> Schedule:
        """Energy-bounded list scheduling (R4 meets R11).

        HEFT ordering, but each task picks the *lowest-energy* executor
        among those whose finish time stays within ``slack`` times the
        task's best achievable finish -- trading bounded makespan
        stretch for joules (the FPGA usually wins these ties).
        """
        if slack < 1.0:
            raise SchedulingError(f"slack must be >= 1, got {slack}")
        job.validate()
        ranks = self._upward_ranks(job)
        order = self._legalize(
            sorted(job.tasks, key=lambda tid: (-ranks[tid], tid)), job
        )
        schedule = Schedule(job)
        free_at: Dict[str, float] = {e.name: 0.0 for e in self.executors}
        for task_id in order:
            task = job.tasks[task_id]
            candidates: List[Tuple[float, float, float, Executor]] = []
            for executor in self.executors:
                duration = _task_time(task, executor, self.blocks)
                if duration is None:
                    continue
                ready = 0.0
                for dep in task.deps:
                    dep_assignment = schedule.assignments[dep]
                    ready = max(
                        ready,
                        dep_assignment.finish_s
                        + _transfer_time(
                            job.tasks[dep],
                            dep_assignment.executor.host,
                            executor.host,
                            self.link_gbps,
                        ),
                    )
                start = max(ready, free_at[executor.name])
                finish = start + duration
                energy = duration * executor.device.tdp_w
                candidates.append((finish, start, energy, executor))
            if not candidates:
                raise SchedulingError(
                    f"no executor can run task {task_id} ({task.block})"
                )
            best_finish = min(c[0] for c in candidates)
            eligible = [
                c for c in candidates if c[0] <= slack * best_finish + 1e-12
            ]
            finish, start, _energy, executor = min(
                eligible, key=lambda c: (c[2], c[0], c[3].name)
            )
            free_at[executor.name] = finish
            schedule.assignments[task_id] = Assignment(
                task_id, executor, start, finish
            )
        schedule.validate()
        return schedule

    def critical_path_order(self, job: Job) -> Schedule:
        """Ablation variant: order by static critical-path length instead
        of mean-based upward rank (same placement rule)."""
        job.validate()
        lengths = self._critical_path_lengths(job)
        order = sorted(job.tasks, key=lambda tid: (-lengths[tid], tid))
        order = self._legalize(order, job)
        return self._place(order, job, consider_speed=True)

    # -- ranking helpers ---------------------------------------------------------

    def _mean_time(self, task: Task) -> float:
        times = [
            t
            for t in (
                _task_time(task, e, self.blocks) for e in self.executors
            )
            if t is not None
        ]
        if not times:
            raise SchedulingError(f"task {task.task_id}: no capable executor")
        return sum(times) / len(times)

    def _mean_transfer(self, task: Task) -> float:
        # Average over same-host (free) and cross-host cases.
        hosts = {e.host for e in self.executors}
        if len(hosts) <= 1:
            return 0.0
        cross = _transfer_time(task, "a", "b", self.link_gbps)
        return cross * (len(hosts) - 1) / len(hosts)

    def _upward_ranks(self, job: Job) -> Dict[str, float]:
        successors = job.successors()
        ranks: Dict[str, float] = {}
        for task_id in reversed(job.topological_order()):
            task = job.tasks[task_id]
            succ_rank = max(
                (
                    self._mean_transfer(task) + ranks[s]
                    for s in successors[task_id]
                ),
                default=0.0,
            )
            ranks[task_id] = self._mean_time(task) + succ_rank
        return ranks

    def _critical_path_lengths(self, job: Job) -> Dict[str, float]:
        successors = job.successors()
        lengths: Dict[str, float] = {}
        for task_id in reversed(job.topological_order()):
            task = job.tasks[task_id]
            succ = max((lengths[s] for s in successors[task_id]), default=0.0)
            lengths[task_id] = self._mean_time(task) + succ
        return lengths

    @staticmethod
    def _legalize(order: List[str], job: Job) -> List[str]:
        """Stable-reorder a priority list into a valid topological order."""
        position = {tid: i for i, tid in enumerate(order)}
        placed: List[str] = []
        done = set()
        remaining = set(order)
        while remaining:
            best = min(
                (
                    tid
                    for tid in remaining
                    if all(d in done for d in job.tasks[tid].deps)
                ),
                key=lambda tid: position[tid],
            )
            placed.append(best)
            done.add(best)
            remaining.discard(best)
        return placed

"""Task and job models for heterogeneous scheduling (Recommendation 11).

A :class:`Job` is a DAG of :class:`Task` nodes. Each task names the
building block it executes and its batch size; its runtime on any device
comes from the block's roofline cost, so the scheduler sees the *same*
heterogeneity the rest of the library models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchedulingError


@dataclass
class Task:
    """One schedulable unit of work.

    ``deps`` are task ids that must finish first; ``output_bytes`` is the
    data shipped to each dependent (charged when producer and consumer
    land on different hosts).
    """

    task_id: str
    block: str
    n_records: int
    deps: List[str] = field(default_factory=list)
    output_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise SchedulingError(f"task {self.task_id}: needs records")
        if self.output_bytes < 0:
            raise SchedulingError(f"task {self.task_id}: negative output")
        if self.task_id in self.deps:
            raise SchedulingError(f"task {self.task_id}: depends on itself")


@dataclass
class Job:
    """A named DAG of tasks."""

    name: str
    tasks: Dict[str, Task] = field(default_factory=dict)

    def add(self, task: Task) -> None:
        """Add a task; ids must be unique and deps known at validation."""
        if task.task_id in self.tasks:
            raise SchedulingError(f"duplicate task id: {task.task_id}")
        self.tasks[task.task_id] = task

    def validate(self) -> None:
        """Check dependency closure and acyclicity."""
        if not self.tasks:
            raise SchedulingError(f"job {self.name}: no tasks")
        for task in self.tasks.values():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise SchedulingError(
                        f"task {task.task_id}: unknown dependency {dep!r}"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Deterministic topological order (Kahn's, lexicographic ties)."""
        in_degree = {tid: len(t.deps) for tid, t in self.tasks.items()}
        dependents: Dict[str, List[str]] = {tid: [] for tid in self.tasks}
        for task in self.tasks.values():
            for dep in task.deps:
                dependents[dep].append(task.task_id)
        ready = sorted(tid for tid, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            inserted = []
            for succ in dependents[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    inserted.append(succ)
            if inserted:
                ready = sorted(ready + inserted)
        if len(order) != len(self.tasks):
            raise SchedulingError(f"job {self.name}: dependency cycle")
        return order

    def successors(self) -> Dict[str, List[str]]:
        """task id -> dependent task ids."""
        out: Dict[str, List[str]] = {tid: [] for tid in self.tasks}
        for task in self.tasks.values():
            for dep in task.deps:
                out[dep].append(task.task_id)
        return out


def chain_job(
    name: str, blocks: List[str], n_records: int, output_bytes: float = 1e6
) -> Job:
    """A linear pipeline job: block[0] -> block[1] -> ..."""
    if not blocks:
        raise SchedulingError("need at least one block")
    job = Job(name)
    previous: Optional[str] = None
    for index, block in enumerate(blocks):
        tid = f"{name}-{index}"
        deps = [previous] if previous else []
        job.add(Task(tid, block, n_records, deps=deps, output_bytes=output_bytes))
        previous = tid
    job.validate()
    return job


def fork_join_job(
    name: str,
    fan_out: int,
    branch_block: str,
    join_block: str,
    n_records: int,
    output_bytes: float = 1e6,
) -> Job:
    """A map-reduce-shaped DAG: source -> N branches -> join."""
    if fan_out < 1:
        raise SchedulingError("fan-out must be >= 1")
    job = Job(name)
    job.add(Task(f"{name}-src", "filter-scan", n_records,
                 output_bytes=output_bytes))
    for i in range(fan_out):
        job.add(
            Task(
                f"{name}-branch{i}",
                branch_block,
                max(1, n_records // fan_out),
                deps=[f"{name}-src"],
                output_bytes=output_bytes,
            )
        )
    job.add(
        Task(
            f"{name}-join",
            join_block,
            n_records,
            deps=[f"{name}-branch{i}" for i in range(fan_out)],
        )
    )
    job.validate()
    return job

"""Portfolio prioritization: which recommendations to fund under a budget.

The Commission funds programmes under a budget constraint; selecting the
best subset of scored recommendations is a 0/1 knapsack. Solved exactly
with dynamic programming over euro-resolution weights (costs are tens of
millions -- tiny state space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.recommendations import ScoredRecommendation
from repro.errors import ModelError


@dataclass
class Portfolio:
    """A funded subset of recommendations."""

    selected: List[ScoredRecommendation]
    budget_meur: float

    @property
    def total_cost_meur(self) -> float:
        """Spend of the selection."""
        return sum(s.recommendation.cost_meur for s in self.selected)

    @property
    def total_priority(self) -> float:
        """Summed priority score of the selection."""
        return sum(s.priority for s in self.selected)

    @property
    def rec_ids(self) -> List[int]:
        """Funded recommendation ids, ascending."""
        return sorted(s.recommendation.rec_id for s in self.selected)


def optimize_portfolio(
    scored: List[ScoredRecommendation],
    budget_meur: float,
    resolution_meur: float = 1.0,
) -> Portfolio:
    """Exact 0/1 knapsack over the scored recommendations.

    ``resolution_meur`` discretizes costs (default 1 M-euro steps).
    """
    if budget_meur <= 0:
        raise ModelError("budget must be positive")
    if resolution_meur <= 0:
        raise ModelError("resolution must be positive")
    if not scored:
        raise ModelError("nothing to optimize")

    capacity = int(budget_meur / resolution_meur)
    weights = [
        max(1, round(s.recommendation.cost_meur / resolution_meur))
        for s in scored
    ]
    values = [s.priority for s in scored]

    # dp[w] = (best value, chosen indices) using items so far.
    best_value = [0.0] * (capacity + 1)
    chosen: List[Tuple[int, ...]] = [()] * (capacity + 1)
    for index, (weight, value) in enumerate(zip(weights, values)):
        for w in range(capacity, weight - 1, -1):
            candidate = best_value[w - weight] + value
            if candidate > best_value[w] + 1e-12:
                best_value[w] = candidate
                chosen[w] = chosen[w - weight] + (index,)
    winning = chosen[capacity]
    return Portfolio(
        selected=[scored[i] for i in winning], budget_meur=budget_meur
    )


def greedy_portfolio(
    scored: List[ScoredRecommendation], budget_meur: float
) -> Portfolio:
    """Greedy density heuristic (priority per M-euro), for comparison."""
    if budget_meur <= 0:
        raise ModelError("budget must be positive")
    order = sorted(
        scored,
        key=lambda s: (-s.priority / s.recommendation.cost_meur,
                       s.recommendation.rec_id),
    )
    selected = []
    remaining = budget_meur
    for item in order:
        if item.recommendation.cost_meur <= remaining:
            selected.append(item)
            remaining -= item.recommendation.cost_meur
    return Portfolio(selected=selected, budget_meur=budget_meur)

"""Crash-safe file writes: temp file + fsync + atomic rename.

Every durable artifact the harness produces -- ``results.json``,
``BENCH_*.json``, streamed ``--events-out`` logs -- is written through
these helpers so a crash at any instant leaves either the previous
file or the complete new one, never a truncated hybrid. The recipe is
the classic one: write to a sibling temp file in the same directory
(same filesystem, so the rename is atomic), flush, ``fsync`` the file,
then ``os.replace`` it over the destination.

The directory entry itself is not fsync'd; on a whole-machine power
loss the rename may be lost, but the destination still holds either
the old or the new complete contents -- which is the invariant the
crash-recovery layer (:mod:`repro.runner.journal`) depends on.
"""

from __future__ import annotations

import itertools
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

#: Per-process serial for scratch names: together with the pid it makes
#: every scratch file unique even across threads racing the same target.
_SCRATCH_SERIAL = itertools.count()


def _scratch_for(target: Path) -> Path:
    return target.parent / (
        f"{target.name}.tmp-{os.getpid()}-{next(_SCRATCH_SERIAL)}"
    )


def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``.

    Creates parent directories as needed. The temp file is named after
    the destination plus a ``.tmp-<pid>-<serial>`` suffix so concurrent
    writers -- other processes or other threads in this one -- never
    collide on the scratch name.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = _scratch_for(target)
    with open(scratch, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, target)
    return target


def atomic_write_text(
    path: "str | Path", text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: "str | Path", document: Any) -> Path:
    """Atomically write ``document`` in the repo's canonical JSON style.

    The encoding (2-space indent, sorted keys, trailing newline) matches
    what ``results.json`` and ``BENCH_*.json`` have always used, so
    routing existing artifacts through this helper changes durability,
    not bytes.
    """
    return atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


@contextmanager
def atomic_open(
    path: "str | Path", encoding: str = "utf-8"
) -> Iterator[TextIO]:
    """Open a text stream whose contents appear atomically on close.

    For artifacts built up incrementally (streamed event logs): the
    body writes to the scratch file, and only a clean exit fsyncs and
    renames it into place. An exception leaves the destination
    untouched and removes the scratch file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = _scratch_for(target)
    handle = open(scratch, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(scratch, target)
    except BaseException:
        handle.close()
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise

"""The roadmap core: technology catalog, adoption forecasting, the twelve
recommendations, portfolio prioritization, roadmap assembly, and the
crash-safe file primitives the rest of the stack builds on."""

from repro.core.adoption import (
    BassModel,
    LogisticModel,
    TrlSchedule,
    adoption_curve,
    commodity_year_forecast,
)
from repro.core.atomicio import (
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.core.prioritize import (
    Portfolio,
    greedy_portfolio,
    optimize_portfolio,
)
from repro.core.recommendations import (
    RECOMMENDATIONS,
    Recommendation,
    ScoredRecommendation,
    score_all,
    score_recommendation,
)
from repro.core.retrospective import (
    ACTUALS_2026,
    ActualOutcome,
    ForecastScore,
    Outcome,
    forecast_error_summary,
    hindsight_report,
    risk_calibration,
)
from repro.core.waiting_game import (
    WaitingGameConfig,
    WaitingGameResult,
    minimum_seed_for_takeoff,
    simulate_waiting_game,
)
from repro.core.scenarios import (
    ForecastDistribution,
    InvestmentImpact,
    forecast_uncertainty_table,
    investment_impact,
    monte_carlo_commodity_year,
)
from repro.core.roadmap import (
    Milestone,
    Roadmap,
    build_roadmap,
    forecast_milestones,
)
from repro.core.technology import (
    StackLayer,
    TECHNOLOGY_CATALOG,
    Technology,
    get_technology,
    technologies_in_layer,
)

__all__ = [
    "ACTUALS_2026",
    "ActualOutcome",
    "BassModel",
    "ForecastDistribution",
    "ForecastScore",
    "InvestmentImpact",
    "LogisticModel",
    "Milestone",
    "Outcome",
    "Portfolio",
    "RECOMMENDATIONS",
    "Recommendation",
    "Roadmap",
    "ScoredRecommendation",
    "StackLayer",
    "TECHNOLOGY_CATALOG",
    "Technology",
    "TrlSchedule",
    "WaitingGameConfig",
    "WaitingGameResult",
    "adoption_curve",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "build_roadmap",
    "commodity_year_forecast",
    "forecast_error_summary",
    "forecast_milestones",
    "forecast_uncertainty_table",
    "get_technology",
    "greedy_portfolio",
    "hindsight_report",
    "investment_impact",
    "minimum_seed_for_takeoff",
    "monte_carlo_commodity_year",
    "optimize_portfolio",
    "risk_calibration",
    "score_all",
    "score_recommendation",
    "simulate_waiting_game",
    "technologies_in_layer",
]

"""Technology catalog: everything the roadmap names, as data.

Each :class:`Technology` carries its 2016 technology-readiness level
(TRL, the EC's 1-9 scale), market/adoption parameters for forecasting,
and which part of the stack it belongs to. The catalog drives the
adoption forecasts (E9), the recommendation engine (E16) and the
ecosystem coverage analysis (F1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError


class StackLayer(enum.Enum):
    """Where in the system stack a technology lives."""

    NETWORK = "network"
    NODE = "node"
    SOFTWARE = "software"


@dataclass(frozen=True)
class Technology:
    """One roadmap technology.

    ``trl_2016``: readiness at roadmap publication (1=principles,
    9=proven in operation). ``maturity_year``: expected commodity
    availability. ``eu_strength``: 0-1 judgement of Europe's position
    (the roadmap's competitive-advantage axis). ``risk``: 0-1 judgement
    of technical/market risk.
    """

    name: str
    layer: StackLayer
    trl_2016: int
    maturity_year: int
    eu_strength: float
    risk: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.trl_2016 <= 9:
            raise ModelError(f"{self.name}: TRL must be 1-9")
        if not 0.0 <= self.eu_strength <= 1.0:
            raise ModelError(f"{self.name}: eu_strength must be in [0, 1]")
        if not 0.0 <= self.risk <= 1.0:
            raise ModelError(f"{self.name}: risk must be in [0, 1]")


#: The technologies §IV discusses, with 2016-era TRL judgements.
TECHNOLOGY_CATALOG: Dict[str, Technology] = {
    tech.name: tech
    for tech in (
        Technology(
            "10-40gbe", StackLayer.NETWORK, 9, 2015, 0.6, 0.05,
            "commodity 10/40 GbE adoption (R1)",
        ),
        Technology(
            "100gbe", StackLayer.NETWORK, 8, 2018, 0.5, 0.15,
            "hyperscaler-grade 100 GbE",
        ),
        Technology(
            "400gbe", StackLayer.NETWORK, 4, 2021, 0.45, 0.35,
            "beyond-400GbE appliances, post-2020 (R3)",
        ),
        Technology(
            "silicon-photonics", StackLayer.NETWORK, 5, 2022, 0.55, 0.4,
            "photonics-on-silicon integration (R3)",
        ),
        Technology(
            "sdn", StackLayer.NETWORK, 7, 2017, 0.5, 0.2,
            "software-defined networking control planes",
        ),
        Technology(
            "nfv", StackLayer.NETWORK, 6, 2018, 0.55, 0.25,
            "network function virtualization",
        ),
        Technology(
            "bare-metal-switching", StackLayer.NETWORK, 7, 2017, 0.4, 0.2,
            "commodity switches with third-party NOS",
        ),
        Technology(
            "disaggregation", StackLayer.NETWORK, 3, 2023, 0.5, 0.5,
            "composable CPU/memory/storage pools",
        ),
        Technology(
            "gpgpu", StackLayer.NODE, 8, 2016, 0.25, 0.15,
            "general-purpose GPU computing",
        ),
        Technology(
            "fpga-accel", StackLayer.NODE, 6, 2019, 0.5, 0.3,
            "FPGA acceleration for analytics (R4/R6)",
        ),
        Technology(
            "hls-tools", StackLayer.SOFTWARE, 4, 2020, 0.55, 0.4,
            "high-level FPGA programming (R6)",
        ),
        Technology(
            "asic-accel", StackLayer.NODE, 5, 2020, 0.3, 0.45,
            "application-specific accelerators",
        ),
        Technology(
            "neuromorphic", StackLayer.NODE, 3, 2026, 0.6, 0.7,
            "spike-based computing (R7)",
        ),
        Technology(
            "sip-chiplets", StackLayer.NODE, 5, 2020, 0.65, 0.35,
            "system-in-package integration (EUROSERVER, R5)",
        ),
        Technology(
            "nvm", StackLayer.NODE, 6, 2019, 0.45, 0.3,
            "non-volatile main memory (R5)",
        ),
        Technology(
            "distributed-frameworks", StackLayer.SOFTWARE, 9, 2014, 0.6, 0.05,
            "MapReduce/Spark/Flink ecosystems",
        ),
        Technology(
            "accelerated-blocks", StackLayer.SOFTWARE, 4, 2020, 0.55, 0.35,
            "hardware-accelerated framework building blocks (R10)",
        ),
        Technology(
            "hetero-scheduling", StackLayer.SOFTWARE, 4, 2020, 0.6, 0.3,
            "dynamic heterogeneous resource allocation (R11)",
        ),
        Technology(
            "standard-benchmarks", StackLayer.SOFTWARE, 3, 2019, 0.6, 0.2,
            "Big Data architecture benchmarks (R9)",
        ),
    )
}


def technologies_in_layer(layer: StackLayer) -> List[Technology]:
    """Catalog entries in one stack layer, name-sorted."""
    return sorted(
        (t for t in TECHNOLOGY_CATALOG.values() if t.layer == layer),
        key=lambda t: t.name,
    )


def get_technology(name: str) -> Technology:
    """Catalog lookup with a helpful error."""
    if name not in TECHNOLOGY_CATALOG:
        raise ModelError(f"unknown technology: {name!r}")
    return TECHNOLOGY_CATALOG[name]

"""Hindsight validation: the 2016 roadmap versus the actual 2016-2026 decade.

The roadmap promised to "maximize European industry competitiveness ...
over the next 10 years". Writing in 2026, that decade has elapsed; this
module records what actually happened to each catalog technology
(public-record status as of early 2026) and scores the roadmap's
forecasts against it -- the only ground truth a roadmap reproduction can
ever have.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.technology import TECHNOLOGY_CATALOG
from repro.errors import ModelError


class Outcome(enum.Enum):
    """What became of a technology by 2026."""

    COMMODITY = "commodity"  # broadly adopted, boring
    PARTIAL = "partial"  # real deployments, not yet default
    NOT_YET = "not_yet"  # still research/niche
    WITHDRAWN = "withdrawn"  # shipped, then exited the market


@dataclass(frozen=True)
class ActualOutcome:
    """Public-record status of one technology as of early 2026."""

    technology: str
    outcome: Outcome
    actual_year: Optional[int]  # commodity/partial arrival; None if not yet
    note: str

    def __post_init__(self) -> None:
        if self.outcome in (Outcome.COMMODITY, Outcome.PARTIAL,
                            Outcome.WITHDRAWN):
            if self.actual_year is None:
                raise ModelError(
                    f"{self.technology}: arrived outcomes need a year"
                )
        elif self.actual_year is not None:
            raise ModelError(f"{self.technology}: not-yet cannot have a year")


#: The decade's scorecard (public record, early 2026).
ACTUALS_2026: Dict[str, ActualOutcome] = {
    a.technology: a
    for a in (
        ActualOutcome("10-40gbe", Outcome.COMMODITY, 2016,
                      "already commodity at publication"),
        ActualOutcome("100gbe", Outcome.COMMODITY, 2019,
                      "hyperscale default by ~2019"),
        ActualOutcome("400gbe", Outcome.COMMODITY, 2022,
                      "hyperscale volume from ~2022 -- 'after 2020' held"),
        ActualOutcome("silicon-photonics", Outcome.PARTIAL, 2024,
                      "pluggables everywhere; co-packaged optics ramping"),
        ActualOutcome("sdn", Outcome.COMMODITY, 2018,
                      "controller-based fabrics became the default"),
        ActualOutcome("nfv", Outcome.COMMODITY, 2020,
                      "telco VNF/CNF mainstream by ~2020"),
        ActualOutcome("bare-metal-switching", Outcome.PARTIAL, 2020,
                      "SONiC default at hyperscalers; enterprise mixed"),
        ActualOutcome("disaggregation", Outcome.PARTIAL, 2024,
                      "CXL memory pooling shipping, far from default"),
        ActualOutcome("gpgpu", Outcome.COMMODITY, 2017,
                      "the ML boom made DC GPUs ubiquitous"),
        ActualOutcome("fpga-accel", Outcome.PARTIAL, 2018,
                      "cloud FPGA instances real; never became default"),
        ActualOutcome("hls-tools", Outcome.PARTIAL, 2021,
                      "toolchains much better; software devs still rare"),
        ActualOutcome("asic-accel", Outcome.COMMODITY, 2019,
                      "TPUs/inferentia-class parts are cloud staples"),
        ActualOutcome("neuromorphic", Outcome.NOT_YET, None,
                      "still research-grade in 2026 -- the risk rating held"),
        ActualOutcome("sip-chiplets", Outcome.COMMODITY, 2020,
                      "chiplet CPUs took the mainstream -- the big win"),
        ActualOutcome("nvm", Outcome.WITHDRAWN, 2019,
                      "Optane DIMMs shipped 2019, discontinued 2022"),
        ActualOutcome("distributed-frameworks", Outcome.COMMODITY, 2014,
                      "already commodity at publication"),
        ActualOutcome("accelerated-blocks", Outcome.PARTIAL, 2020,
                      "GPU dataframes/SQL engines real but not default"),
        ActualOutcome("hetero-scheduling", Outcome.COMMODITY, 2021,
                      "k8s device plugins + cluster autoscaling everywhere"),
        ActualOutcome("standard-benchmarks", Outcome.COMMODITY, 2019,
                      "MLPerf (2018-) became exactly the R9 instrument"),
    )
}


@dataclass(frozen=True)
class ForecastScore:
    """Forecast-vs-actual for one technology."""

    technology: str
    forecast_year: int
    outcome: Outcome
    actual_year: Optional[int]
    note: str

    @property
    def error_years(self) -> Optional[float]:
        """Signed forecast error (positive = arrived later than forecast).

        ``None`` when the technology has not arrived (no ground truth yet).
        """
        if self.actual_year is None:
            return None
        return self.actual_year - self.forecast_year


def hindsight_report(
    actuals: Optional[Dict[str, ActualOutcome]] = None,
) -> List[ForecastScore]:
    """Score every catalog technology against the 2026 record."""
    table = actuals or ACTUALS_2026
    missing = set(TECHNOLOGY_CATALOG) - set(table)
    if missing:
        raise ModelError(f"no actual recorded for: {sorted(missing)}")
    scores = []
    for name in sorted(TECHNOLOGY_CATALOG):
        tech = TECHNOLOGY_CATALOG[name]
        actual = table[name]
        scores.append(
            ForecastScore(
                technology=name,
                forecast_year=tech.maturity_year,
                outcome=actual.outcome,
                actual_year=actual.actual_year,
                note=actual.note,
            )
        )
    return scores


def forecast_error_summary(
    scores: Optional[List[ForecastScore]] = None,
) -> Dict[str, float]:
    """Aggregate forecast quality over the arrived technologies."""
    scores = scores if scores is not None else hindsight_report()
    errors = [s.error_years for s in scores if s.error_years is not None]
    if not errors:
        raise ModelError("no arrived technologies to score")
    absolute = [abs(e) for e in errors]
    return {
        "n_scored": float(len(errors)),
        "mean_error_years": sum(errors) / len(errors),
        "mean_abs_error_years": sum(absolute) / len(absolute),
        "max_abs_error_years": max(absolute),
        "n_not_yet": float(
            sum(1 for s in scores if s.outcome == Outcome.NOT_YET)
        ),
        "n_withdrawn": float(
            sum(1 for s in scores if s.outcome == Outcome.WITHDRAWN)
        ),
    }


def risk_calibration(
    scores: Optional[List[ForecastScore]] = None,
) -> Dict[str, float]:
    """Was the catalog's risk rating informative?

    Returns the mean catalog risk of arrived-on-time technologies versus
    late/never ones; a well-calibrated roadmap rates the latter riskier.
    """
    scores = scores if scores is not None else hindsight_report()
    on_time, troubled = [], []
    for score in scores:
        risk = TECHNOLOGY_CATALOG[score.technology].risk
        late = (
            score.error_years is None
            or score.error_years > 2
            or score.outcome == Outcome.WITHDRAWN
        )
        (troubled if late else on_time).append(risk)
    if not on_time or not troubled:
        raise ModelError("need both on-time and troubled technologies")
    return {
        "mean_risk_on_time": sum(on_time) / len(on_time),
        "mean_risk_troubled": sum(troubled) / len(troubled),
    }

"""Technology adoption forecasting: Bass diffusion, logistic S-curves,
and TRL progression.

Used by the Ethernet-roadmap experiment (E9: 400 GbE "available after
2020") and the recommendation engine's timing judgements. The Bass-vs-
logistic choice is one of the DESIGN.md ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError


@dataclass(frozen=True)
class BassModel:
    """Bass diffusion: innovation coefficient ``p``, imitation ``q``.

    Classic values: p ~ 0.01-0.03, q ~ 0.3-0.5 for enterprise hardware.
    """

    p: float = 0.02
    q: float = 0.4

    def __post_init__(self) -> None:
        if self.p <= 0 or self.q < 0:
            raise ModelError("Bass p must be positive and q non-negative")

    def cumulative_fraction(self, years_since_intro: float) -> float:
        """Installed-base fraction ``F(t)`` after ``years_since_intro``."""
        if years_since_intro < 0:
            return 0.0
        p, q = self.p, self.q
        expo = math.exp(-(p + q) * years_since_intro)
        return (1.0 - expo) / (1.0 + (q / p) * expo)

    def years_to_fraction(self, fraction: float) -> float:
        """Years from introduction until ``fraction`` adoption."""
        if not 0.0 < fraction < 1.0:
            raise ModelError("fraction must be in (0, 1)")
        p, q = self.p, self.q
        # Closed form of the inverse of F(t).
        numerator = 1.0 - fraction
        denominator = 1.0 + (q / p) * fraction
        return -math.log(numerator / denominator) / (p + q)

    def peak_adoption_year(self) -> float:
        """Time of maximum adoption rate (the Bass inflection point)."""
        p, q = self.p, self.q
        if q <= p:
            return 0.0
        return math.log(q / p) / (p + q)


@dataclass(frozen=True)
class LogisticModel:
    """Symmetric logistic S-curve with midpoint and steepness."""

    midpoint_years: float = 6.0
    steepness: float = 0.8

    def __post_init__(self) -> None:
        if self.midpoint_years <= 0 or self.steepness <= 0:
            raise ModelError("midpoint and steepness must be positive")

    def cumulative_fraction(self, years_since_intro: float) -> float:
        """Adoption fraction after ``years_since_intro``."""
        if years_since_intro < 0:
            return 0.0
        return 1.0 / (
            1.0
            + math.exp(-self.steepness * (years_since_intro - self.midpoint_years))
        )

    def years_to_fraction(self, fraction: float) -> float:
        """Years from introduction until ``fraction`` adoption."""
        if not 0.0 < fraction < 1.0:
            raise ModelError("fraction must be in (0, 1)")
        return self.midpoint_years - math.log(1.0 / fraction - 1.0) / self.steepness


@dataclass(frozen=True)
class TrlSchedule:
    """TRL progression under a given investment intensity.

    ``base_years_per_level`` is the unfunded pace; ``acceleration`` is
    the speed-up factor coordinated EU investment buys (the roadmap's
    whole argument is that this factor exceeds 1).
    """

    base_years_per_level: float = 2.0
    acceleration: float = 1.0

    def __post_init__(self) -> None:
        if self.base_years_per_level <= 0:
            raise ModelError("pace must be positive")
        if self.acceleration < 1.0:
            raise ModelError("acceleration cannot be below 1")

    def years_to_trl(self, current: int, target: int) -> float:
        """Years to move from TRL ``current`` to ``target``."""
        for value in (current, target):
            if not 1 <= value <= 9:
                raise ModelError("TRL must be 1-9")
        if target <= current:
            return 0.0
        steps = target - current
        # Later levels take longer (integration and demonstration cost).
        weighted = sum(
            1.0 + 0.15 * (current + i - 1) for i in range(1, steps + 1)
        )
        return weighted * self.base_years_per_level / self.acceleration

    def maturity_year(self, current: int, start_year: int = 2016) -> float:
        """Calendar year at which TRL 9 is reached."""
        return start_year + self.years_to_trl(current, 9)


def commodity_year_forecast(
    trl_2016: int,
    investment_acceleration: float = 1.0,
    adoption: Optional[BassModel] = None,
    commodity_fraction: float = 0.3,
    start_year: int = 2016,
) -> float:
    """Forecast the year a technology reaches commodity adoption.

    Pipeline: TRL ramp to 9 (market introduction), then Bass diffusion to
    ``commodity_fraction`` of the addressable market.
    """
    schedule = TrlSchedule(acceleration=investment_acceleration)
    intro = schedule.maturity_year(trl_2016, start_year)
    model = adoption or BassModel()
    return intro + model.years_to_fraction(commodity_fraction)


def adoption_curve(
    model, horizon_years: int, step_years: float = 1.0
) -> List[tuple]:
    """Sampled (year-offset, fraction) points for plotting/tables."""
    if horizon_years < 1:
        raise ModelError("horizon must be at least one year")
    points = []
    t = 0.0
    while t <= horizon_years + 1e-9:
        points.append((t, model.cumulative_fraction(t)))
        t += step_years
    return points

"""Roadmap assembly: the full pipeline from survey to funded portfolio.

This is the library's top-level "do what the project did" entry point:

1. generate (or accept) the stakeholder corpus,
2. verify the four Key Findings hold,
3. score the twelve recommendations,
4. forecast technology timelines,
5. optimize the funding portfolio under a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.adoption import BassModel, commodity_year_forecast
from repro.core.prioritize import Portfolio, optimize_portfolio
from repro.core.recommendations import ScoredRecommendation, score_all
from repro.core.technology import TECHNOLOGY_CATALOG
from repro.errors import ModelError
from repro.survey.analysis import Finding, key_findings
from repro.survey.corpus import generate_corpus
from repro.survey.stakeholder import Corpus


@dataclass(frozen=True)
class Milestone:
    """A forecast point on the roadmap timeline."""

    technology: str
    year: float
    label: str


@dataclass
class Roadmap:
    """The complete roadmap artifact."""

    corpus: Corpus
    findings: List[Finding]
    scored_recommendations: List[ScoredRecommendation]
    portfolio: Portfolio
    milestones: List[Milestone]

    @property
    def findings_hold(self) -> bool:
        """Whether every key finding is supported by the corpus."""
        return all(f.holds for f in self.findings)

    def milestone_for(self, technology: str) -> Milestone:
        """The forecast milestone of one technology."""
        for milestone in self.milestones:
            if milestone.technology == technology:
                return milestone
        raise ModelError(f"no milestone for {technology!r}")

    def top_recommendations(self, k: int = 5) -> List[ScoredRecommendation]:
        """The ``k`` highest-priority recommendations."""
        if k < 1:
            raise ModelError("k must be >= 1")
        return self.scored_recommendations[:k]


def forecast_milestones(
    investment_acceleration: float = 1.0,
    adoption: Optional[BassModel] = None,
) -> List[Milestone]:
    """Commodity-year forecasts for the whole technology catalog."""
    milestones = []
    for technology in sorted(TECHNOLOGY_CATALOG.values(), key=lambda t: t.name):
        year = commodity_year_forecast(
            technology.trl_2016,
            investment_acceleration=investment_acceleration,
            adoption=adoption,
        )
        milestones.append(
            Milestone(
                technology=technology.name,
                year=year,
                label=f"{technology.name} at commodity volume",
            )
        )
    return milestones


def build_roadmap(
    corpus: Optional[Corpus] = None,
    budget_meur: float = 200.0,
    investment_acceleration: float = 1.5,
) -> Roadmap:
    """Run the full roadmap pipeline; see module docstring."""
    corpus = corpus or generate_corpus()
    findings = key_findings(corpus)
    scored = score_all(corpus)
    portfolio = optimize_portfolio(scored, budget_meur)
    milestones = forecast_milestones(investment_acceleration)
    return Roadmap(
        corpus=corpus,
        findings=findings,
        scored_recommendations=scored,
        portfolio=portfolio,
        milestones=milestones,
    )

"""Scenario analysis: Monte-Carlo forecast uncertainty and the
funded-vs-unfunded Europe comparison.

The roadmap's pitch to the Commission is that coordinated investment
changes *when* Europe gets each technology. This module quantifies the
pitch: distributions over commodity years (the catalog's ``risk`` drives
TRL-pace variance) and the expected years-gained per technology under a
funding acceleration factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.technology import TECHNOLOGY_CATALOG, Technology
from repro.errors import ModelError
from repro.mc.scenarios import commodity_year_samples


@dataclass(frozen=True)
class ForecastDistribution:
    """Monte-Carlo summary of one technology's commodity year."""

    technology: str
    p10: float
    p50: float
    p90: float

    @property
    def spread_years(self) -> float:
        """The 80%-interval width -- the forecast's honesty band."""
        return self.p90 - self.p10


def monte_carlo_commodity_year(
    technology: Technology,
    investment_acceleration: float = 1.0,
    n_samples: int = 1_000,
    seed: int = 29,
    start_year: int = 2016,
) -> ForecastDistribution:
    """Sample commodity years with risk-scaled pace uncertainty.

    The TRL pace is lognormal around the base (sigma grows with the
    catalog's ``risk``); the Bass imitation coefficient is jittered
    likewise. Higher-risk technologies therefore show wider forecast
    bands -- neuromorphic's band should dwarf 10/40GbE's.

    All samples are drawn as two generator batches (every pace, then
    every imitation coefficient) and evaluated in one vectorized pass
    by :func:`repro.mc.commodity_year_samples`.
    """
    years = commodity_year_samples(
        technology.trl_2016,
        technology.risk,
        investment_acceleration=investment_acceleration,
        n_samples=n_samples,
        seed=seed,
        start_year=start_year,
        stream_name=technology.name,
    )
    return ForecastDistribution(
        technology=technology.name,
        p10=float(np.percentile(years, 10)),
        p50=float(np.percentile(years, 50)),
        p90=float(np.percentile(years, 90)),
    )


def forecast_uncertainty_table(
    names: Optional[List[str]] = None,
    investment_acceleration: float = 1.0,
    n_samples: int = 500,
    seed: int = 29,
) -> List[ForecastDistribution]:
    """Distributions for several catalog technologies, risk-ascending."""
    selected = [
        TECHNOLOGY_CATALOG[name]
        for name in (names or sorted(TECHNOLOGY_CATALOG))
    ]
    out = [
        monte_carlo_commodity_year(
            tech, investment_acceleration, n_samples, seed
        )
        for tech in selected
    ]
    return sorted(out, key=lambda d: d.p50)


@dataclass(frozen=True)
class InvestmentImpact:
    """Funded-vs-unfunded comparison for one technology."""

    technology: str
    unfunded_year: float
    funded_year: float

    @property
    def years_gained(self) -> float:
        """How much sooner funding delivers the technology."""
        return self.unfunded_year - self.funded_year


def investment_impact(
    acceleration: float = 1.8,
    names: Optional[List[str]] = None,
    n_samples: int = 500,
    seed: int = 29,
) -> List[InvestmentImpact]:
    """Median years-gained per technology from coordinated funding.

    Uses paired Monte-Carlo medians (same seed both arms, so the
    comparison isolates the acceleration factor).
    """
    if acceleration < 1.0:
        raise ModelError("acceleration cannot be below 1")
    impacts = []
    for name in names or sorted(TECHNOLOGY_CATALOG):
        tech = TECHNOLOGY_CATALOG[name]
        unfunded = monte_carlo_commodity_year(tech, 1.0, n_samples, seed)
        funded = monte_carlo_commodity_year(tech, acceleration, n_samples, seed)
        impacts.append(
            InvestmentImpact(name, unfunded.p50, funded.p50)
        )
    return sorted(impacts, key=lambda i: -i.years_gained)

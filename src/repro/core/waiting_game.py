"""The wait-for-commodity coordination game (Finding 2 / R1 / R4).

Finding 2 reports that European companies "prefer to wait until new
technologies became widely adopted inexpensive commodities". But
commodity pricing follows a learning curve: the price only falls when
someone buys. If every firm waits, cumulative volume never grows, the
price never drops, and adoption stalls -- a coordination failure.

This module simulates that game: firms with heterogeneous
willingness-to-pay face a Wright's-law price; each round, firms whose
threshold exceeds the current price adopt, adding volume and cutting the
price for the rest. EU-funded *seed deployments* (R1's "connect these
companies to end users", R4's pilot projects) inject initial volume --
and a small seed can flip a stalled market into a full cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.econ.cost import learning_curve_price
from repro.engine.randomness import RandomStream
from repro.errors import ModelError


@dataclass(frozen=True)
class WaitingGameConfig:
    """Market parameters for the adoption game.

    ``launch_price_usd``: price at the existing ``base_volume_units``
    (the volume already shipped to early/US/hyperscale buyers -- the
    learning curve is only steep relative to this base, so EU seed
    volume must be *material against it* to move prices).
    ``learning_rate``: price multiplier per volume doubling (0.8 = -20%).
    ``wtp_median_usd`` / ``wtp_sigma``: lognormal willingness-to-pay
    across the firm population (most firms only pay commodity prices --
    Finding 2's price sensitivity).
    ``units_per_adopter``: volume each adopting firm contributes.
    """

    n_firms: int = 200
    launch_price_usd: float = 50_000.0
    base_volume_units: float = 10_000.0
    learning_rate: float = 0.8
    wtp_median_usd: float = 15_000.0
    wtp_sigma: float = 0.35
    units_per_adopter: float = 4_000.0
    max_rounds: int = 40

    def __post_init__(self) -> None:
        if self.n_firms < 1:
            raise ModelError("need at least one firm")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ModelError("learning rate must be in (0, 1]")
        if min(self.launch_price_usd, self.wtp_median_usd,
               self.units_per_adopter, self.base_volume_units) <= 0:
            raise ModelError("prices and volumes must be positive")
        if self.max_rounds < 1:
            raise ModelError("need at least one round")

    def price_at(self, extra_units: float) -> float:
        """Wright's-law price after ``extra_units`` beyond the base."""
        if extra_units < 0:
            raise ModelError("extra volume cannot be negative")
        relative = (self.base_volume_units + extra_units) / self.base_volume_units
        return learning_curve_price(
            self.launch_price_usd, relative, self.learning_rate
        )


@dataclass
class WaitingGameResult:
    """Outcome of one simulated market."""

    adoption_by_round: List[int]  # cumulative adopters after each round
    price_by_round: List[float]
    seed_units: float
    n_firms: int

    @property
    def final_adoption_fraction(self) -> float:
        """Share of firms that adopted by the end."""
        return self.adoption_by_round[-1] / self.n_firms

    @property
    def stalled(self) -> bool:
        """Whether adoption froze before reaching half the market."""
        return self.adoption_by_round[-1] < 0.5 * self.n_firms

    @property
    def takeoff_round(self) -> Optional[int]:
        """First round where cumulative adoption passed 10% of firms."""
        threshold = 0.1 * self.n_firms
        for round_index, count in enumerate(self.adoption_by_round):
            if count >= threshold:
                return round_index
        return None


def simulate_waiting_game(
    config: WaitingGameConfig = WaitingGameConfig(),
    seed_units: float = 0.0,
    rng_seed: int = 71,
) -> WaitingGameResult:
    """Run the adoption cascade with ``seed_units`` of subsidized volume.

    Each round the price reflects cumulative volume (seed + adopters);
    every firm whose willingness-to-pay meets the price adopts. The game
    ends when a round adds no adopters or ``max_rounds`` elapse.
    """
    if seed_units < 0:
        raise ModelError("seed volume cannot be negative")
    rng = RandomStream(rng_seed, "wtp")
    thresholds = sorted(
        (
            rng.lognormal(config.wtp_median_usd, config.wtp_sigma)
            for _ in range(config.n_firms)
        ),
        reverse=True,
    )
    adopted = 0
    adoption_history: List[int] = []
    price_history: List[float] = []
    for _ in range(config.max_rounds):
        extra = seed_units + adopted * config.units_per_adopter
        price = config.price_at(extra)
        price_history.append(price)
        new_adopters = 0
        while adopted + new_adopters < config.n_firms and (
            thresholds[adopted + new_adopters] >= price
        ):
            new_adopters += 1
        adopted += new_adopters
        adoption_history.append(adopted)
        if new_adopters == 0:
            break
    result = WaitingGameResult(
        adoption_by_round=adoption_history,
        price_by_round=price_history,
        seed_units=seed_units,
        n_firms=config.n_firms,
    )
    return result


def minimum_seed_for_takeoff(
    config: WaitingGameConfig = WaitingGameConfig(),
    rng_seed: int = 71,
    max_seed_units: float = 1e6,
    tolerance: float = 0.02,
) -> Optional[float]:
    """Smallest seed volume that un-stalls the market.

    Returns ``None`` if the market cascades unaided (no coordination
    failure) or stays stalled even at ``max_seed_units``.
    """
    def stalled_at(seed_units: float) -> bool:
        return simulate_waiting_game(config, seed_units, rng_seed).stalled

    if not stalled_at(0.0):
        return None
    if stalled_at(max_seed_units):
        return None
    lo, hi = 1.0, max_seed_units
    if not stalled_at(lo):
        return lo
    while hi / lo > 1.0 + tolerance:
        mid = (lo * hi) ** 0.5
        if stalled_at(mid):
            lo = mid
        else:
            hi = mid
    return hi

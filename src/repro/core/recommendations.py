"""The twelve recommendations as first-class, evidence-scored objects.

§V.B's "High-level Actions Summary" lists twelve concrete
recommendations. Here each is data: which findings motivate it, which
technologies it touches, its investment cost and horizon -- plus a
scoring function that combines survey evidence (theme prevalence) with
technology-catalog judgement (EU strength, risk, timing) into the
priority score the portfolio optimizer consumes (E16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.technology import get_technology
from repro.errors import ModelError
from repro.survey.analysis import theme_fraction
from repro.survey.stakeholder import (
    Corpus,
    THEME_ACCELERATOR_USER,
    THEME_BOTTLENECK_AWARE,
    THEME_HW_SW_DISCONNECT,
    THEME_LOCK_IN_FEAR,
    THEME_NO_HW_ROADMAP,
    THEME_PRICE_SENSITIVE,
    THEME_ROI_SKEPTICISM,
    THEME_VALUE_FOCUS,
    THEME_WAIT_FOR_COMMODITY,
    THEME_WANTS_BENCHMARKS,
)


@dataclass(frozen=True)
class Recommendation:
    """One roadmap recommendation.

    ``evidence_themes``: interview themes whose prevalence argues for it.
    ``technologies``: catalog entries it advances.
    ``cost_meur``: indicative EC programme cost in millions of euro.
    ``horizon``: "near" (0-2y), "mid" (2-5y) or "long" (5y+).
    """

    rec_id: int
    title: str
    evidence_themes: Tuple[str, ...]
    technologies: Tuple[str, ...]
    cost_meur: float
    horizon: str

    def __post_init__(self) -> None:
        if self.horizon not in ("near", "mid", "long"):
            raise ModelError(f"R{self.rec_id}: bad horizon {self.horizon!r}")
        if self.cost_meur <= 0:
            raise ModelError(f"R{self.rec_id}: cost must be positive")
        for tech in self.technologies:
            get_technology(tech)  # validates names


#: §V.B verbatim titles (condensed), with evidence/technology links.
RECOMMENDATIONS: List[Recommendation] = [
    Recommendation(
        1,
        "Promote adoption of current and upcoming networking standards",
        (THEME_PRICE_SENSITIVE, THEME_WAIT_FOR_COMMODITY),
        ("10-40gbe",),
        20.0,
        "near",
    ),
    Recommendation(
        2,
        "Prepare for next-generation hardware; exploit HPC/Big Data convergence",
        (THEME_BOTTLENECK_AWARE, THEME_HW_SW_DISCONNECT),
        ("100gbe", "distributed-frameworks"),
        40.0,
        "mid",
    ),
    Recommendation(
        3,
        "Anticipate data-center designs for 400GbE networks and beyond",
        (THEME_BOTTLENECK_AWARE,),
        ("400gbe", "silicon-photonics", "disaggregation"),
        35.0,
        "long",
    ),
    Recommendation(
        4,
        "Reduce risk and cost of using accelerators",
        (THEME_ROI_SKEPTICISM, THEME_ACCELERATOR_USER, THEME_PRICE_SENSITIVE),
        ("fpga-accel", "gpgpu"),
        50.0,
        "near",
    ),
    Recommendation(
        5,
        "Encourage system co-design for new technologies",
        (THEME_HW_SW_DISCONNECT,),
        ("sip-chiplets", "nvm"),
        45.0,
        "mid",
    ),
    Recommendation(
        6,
        "Improve programmability of FPGAs",
        (THEME_ROI_SKEPTICISM, THEME_ACCELERATOR_USER),
        ("hls-tools", "fpga-accel"),
        30.0,
        "mid",
    ),
    Recommendation(
        7,
        "Pioneer markets for neuromorphic computing",
        (THEME_BOTTLENECK_AWARE,),
        ("neuromorphic",),
        25.0,
        "long",
    ),
    Recommendation(
        8,
        "Create a sustainable business environment incl. open training data",
        (THEME_VALUE_FOCUS, THEME_HW_SW_DISCONNECT),
        ("distributed-frameworks",),
        15.0,
        "near",
    ),
    Recommendation(
        9,
        "Establish standard benchmarks",
        (THEME_WANTS_BENCHMARKS, THEME_ROI_SKEPTICISM),
        ("standard-benchmarks",),
        10.0,
        "near",
    ),
    Recommendation(
        10,
        "Identify and build accelerated building blocks",
        (THEME_ACCELERATOR_USER, THEME_NO_HW_ROADMAP),
        ("accelerated-blocks", "fpga-accel"),
        35.0,
        "mid",
    ),
    Recommendation(
        11,
        "Investigate use of heterogeneous resources (dynamic scheduling)",
        (THEME_BOTTLENECK_AWARE, THEME_LOCK_IN_FEAR),
        ("hetero-scheduling",),
        25.0,
        "mid",
    ),
    Recommendation(
        12,
        "Continue to ask whether hardware optimizations solve industry problems",
        (THEME_VALUE_FOCUS,),
        ("standard-benchmarks",),
        5.0,
        "near",
    ),
]


@dataclass(frozen=True)
class ScoredRecommendation:
    """A recommendation with its computed priority."""

    recommendation: Recommendation
    evidence_score: float
    strategic_score: float
    urgency_score: float

    @property
    def priority(self) -> float:
        """Blended priority in [0, 1]."""
        return (
            0.45 * self.evidence_score
            + 0.35 * self.strategic_score
            + 0.20 * self.urgency_score
        )


def score_recommendation(
    recommendation: Recommendation, corpus: Corpus
) -> ScoredRecommendation:
    """Score one recommendation against a survey corpus.

    - evidence: mean prevalence of its themes in the interviews;
    - strategic: mean EU strength weighted against risk of its
      technologies (Europe should invest where it is strong and the
      risk is bearable);
    - urgency: nearer horizons score higher.
    """
    if not recommendation.evidence_themes:
        raise ModelError(f"R{recommendation.rec_id}: no evidence themes")
    evidence = sum(
        theme_fraction(corpus, theme)
        for theme in recommendation.evidence_themes
    ) / len(recommendation.evidence_themes)
    techs = [get_technology(name) for name in recommendation.technologies]
    strategic = sum(t.eu_strength * (1.0 - 0.5 * t.risk) for t in techs) / len(
        techs
    )
    urgency = {"near": 1.0, "mid": 0.6, "long": 0.3}[recommendation.horizon]
    return ScoredRecommendation(recommendation, evidence, strategic, urgency)


def score_all(corpus: Corpus) -> List[ScoredRecommendation]:
    """All twelve recommendations scored, priority-descending."""
    scored = [score_recommendation(rec, corpus) for rec in RECOMMENDATIONS]
    return sorted(
        scored, key=lambda s: (-s.priority, s.recommendation.rec_id)
    )

"""Operator-to-device offload policies (Recommendation 10/11 glue).

An :class:`OffloadPolicy` decides, per building block and record batch,
which of a server's devices runs the operator. Policies:

- ``cpu_only``: the Finding-1 baseline -- accelerators idle.
- ``greedy_time``: fastest device for the batch (includes launch
  overhead, so small batches stay on the CPU).
- ``greedy_energy``: lowest-energy device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.blocks import BlockRegistry, BuildingBlock
from repro.errors import ModelError, SchedulingError
from repro.node.device import ComputeDevice
from repro.node.server import Server


@dataclass(frozen=True)
class OffloadPolicy:
    """A named device-selection rule."""

    name: str

    VALID = ("cpu_only", "greedy_time", "greedy_energy")

    def __post_init__(self) -> None:
        if self.name not in self.VALID:
            raise ModelError(
                f"unknown policy {self.name!r}; choose from {self.VALID}"
            )

    def choose(
        self, block: BuildingBlock, server: Server, n_records: int
    ) -> ComputeDevice:
        """The device on ``server`` that should run ``block``."""
        if n_records < 1:
            raise SchedulingError("need at least one record")
        if self.name == "cpu_only":
            return server.cpu
        candidates = [d for d in server.devices if block.runs_on(d)]
        if not candidates:
            raise SchedulingError(
                f"no device on {server.name} can run {block.name}"
            )

        def time_of(device: ComputeDevice) -> float:
            return block.time_s(device, n_records)

        if self.name == "greedy_time":
            return min(candidates, key=lambda d: (time_of(d), d.name))
        return min(candidates, key=lambda d: (time_of(d) * d.tdp_w, d.name))


def cpu_only() -> OffloadPolicy:
    """The no-accelerator baseline policy."""
    return OffloadPolicy("cpu_only")


def greedy_time() -> OffloadPolicy:
    """Minimize wall-clock per operator batch."""
    return OffloadPolicy("greedy_time")


def greedy_energy() -> OffloadPolicy:
    """Minimize energy per operator batch."""
    return OffloadPolicy("greedy_energy")

"""Operator-to-device offload policies (Recommendation 10/11 glue).

An :class:`OffloadPolicy` decides, per building block and record batch,
which of a server's devices runs the operator. Policies:

- ``cpu_only``: the Finding-1 baseline -- accelerators idle.
- ``greedy_time``: fastest device for the batch (includes launch
  overhead, so small batches stay on the CPU).
- ``greedy_energy``: lowest-energy device.

Policies are observable: construct one with a
:class:`~repro.engine.Registry` and every placement decision is counted
per device and per block, which is how E11 trace runs attribute operator
work to silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.blocks import BuildingBlock
from repro.engine import Registry
from repro.errors import ModelError, SchedulingError
from repro.node.device import ComputeDevice
from repro.node.server import Server


@dataclass(frozen=True)
class OffloadPolicy:
    """A named device-selection rule."""

    name: str
    registry: Optional[Registry] = field(default=None, compare=False)

    VALID = ("cpu_only", "greedy_time", "greedy_energy")

    def __post_init__(self) -> None:
        if self.name not in self.VALID:
            raise ModelError(
                f"unknown policy {self.name!r}; choose from {self.VALID}"
            )

    def choose(
        self, block: BuildingBlock, server: Server, n_records: int
    ) -> ComputeDevice:
        """The device on ``server`` that should run ``block``."""
        if n_records < 1:
            raise SchedulingError("need at least one record")
        if self.name == "cpu_only":
            return self._chosen(block, server.cpu, n_records)
        candidates = [d for d in server.devices if block.runs_on(d)]
        if not candidates:
            raise SchedulingError(
                f"no device on {server.name} can run {block.name}"
            )

        def time_of(device: ComputeDevice) -> float:
            return block.time_s(device, n_records)

        if self.name == "greedy_time":
            choice = min(candidates, key=lambda d: (time_of(d), d.name))
        else:
            choice = min(
                candidates, key=lambda d: (time_of(d) * d.tdp_w, d.name)
            )
        return self._chosen(block, choice, n_records)

    def _chosen(
        self, block: BuildingBlock, device: ComputeDevice, n_records: int
    ) -> ComputeDevice:
        """Count the placement decision when a registry is attached."""
        if self.registry is not None:
            self.registry.counter(f"offload.{self.name}.decisions").inc()
            self.registry.counter(
                f"offload.{self.name}.device.{device.kind.value}"
            ).inc()
            self.registry.counter(
                f"offload.{self.name}.records.{block.name}"
            ).inc(n_records)
        return device


def cpu_only(registry: Optional[Registry] = None) -> OffloadPolicy:
    """The no-accelerator baseline policy."""
    return OffloadPolicy("cpu_only", registry=registry)


def greedy_time(registry: Optional[Registry] = None) -> OffloadPolicy:
    """Minimize wall-clock per operator batch."""
    return OffloadPolicy("greedy_time", registry=registry)


def greedy_energy(registry: Optional[Registry] = None) -> OffloadPolicy:
    """Minimize energy per operator batch."""
    return OffloadPolicy("greedy_energy", registry=registry)

"""Iterative execution with dataset caching (the Spark persist model).

§IV.C names Spark among MapReduce's successors; its defining advantage
over plain MapReduce is caching intermediate datasets across the
iterations of ML algorithms. This module models both modes:

- ``cache=True``: the preprocessing lineage runs once; each iteration
  pays only its own step (requires the intermediate to fit in memory);
- ``cache=False``: every iteration replays the full lineage (the
  MapReduce-era behaviour).

The cached/uncached gap grows linearly with iteration count -- the
crossover every iterative-analytics benchmark exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.errors import PlanError
from repro.frameworks.batch import BatchExecutor
from repro.frameworks.dataflow import Plan
from repro.frameworks.dataset import PartitionedDataset


@dataclass
class IterativeReport:
    """Cost accounting for one iterative run."""

    final_records: List
    base_time_s: float
    iteration_times_s: List[float]
    cached: bool

    @property
    def total_time_s(self) -> float:
        """End-to-end simulated time.

        Cached: base once plus the steps. Uncached: the base lineage
        replays inside every iteration.
        """
        if self.cached:
            return self.base_time_s + sum(self.iteration_times_s)
        return sum(
            self.base_time_s + step for step in self.iteration_times_s
        )

    @property
    def n_iterations(self) -> int:
        """Number of iterations executed."""
        return len(self.iteration_times_s)


def run_iterative(
    executor: BatchExecutor,
    base_plan: Plan,
    step_plan_factory: Callable[[int], Plan],
    dataset: PartitionedDataset,
    n_iterations: int,
    cache: bool = True,
) -> IterativeReport:
    """Run ``base_plan`` then ``n_iterations`` of derived step plans.

    Each step plan is applied to the *base result* (not chained through
    previous steps -- the k-means/PageRank pattern where iterations
    re-scan the same input with updated parameters).
    """
    if n_iterations < 1:
        raise PlanError("need at least one iteration")
    base_result = executor.run(base_plan, dataset)
    intermediate = PartitionedDataset.from_records(
        base_result.records,
        dataset.n_partitions,
        record_bytes=dataset.record_bytes,
    )
    iteration_times = []
    final_records: List = []
    for index in range(n_iterations):
        step_plan = step_plan_factory(index)
        step_result = executor.run(step_plan, intermediate)
        iteration_times.append(step_result.sim_time_s)
        final_records = step_result.records
    return IterativeReport(
        final_records=final_records,
        base_time_s=base_result.sim_time_s,
        iteration_times_s=iteration_times,
        cached=cache,
    )


def caching_speedup(
    executor: BatchExecutor,
    base_plan: Plan,
    step_plan_factory: Callable[[int], Plan],
    dataset: PartitionedDataset,
    n_iterations: int,
) -> dict:
    """Cached vs uncached total time for the same iterative job."""
    cached = run_iterative(
        executor, base_plan, step_plan_factory, dataset, n_iterations,
        cache=True,
    )
    uncached = run_iterative(
        executor, base_plan, step_plan_factory, dataset, n_iterations,
        cache=False,
    )
    return {
        "cached_s": cached.total_time_s,
        "uncached_s": uncached.total_time_s,
        "speedup": uncached.total_time_s / cached.total_time_s,
        "n_iterations": n_iterations,
    }

"""Logical dataflow plans (the MapReduce/Spark/Flink abstraction layer).

A :class:`Plan` is a chain of operators over a source dataset. Narrow
operators (map, filter, flat_map) run partition-local; wide operators
(reduce_by_key, group_by_key, sort_by, distinct) force a shuffle -- the
framework behaviour §IV.C describes.

Each operator can name the :mod:`building block <repro.analytics.blocks>`
it corresponds to (``block=``); the executor uses that to cost the
operator and, under an offload policy, to run it on an accelerator (R10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import PlanError

#: Operator kinds and their width.
NARROW_KINDS = ("map", "filter", "flat_map", "broadcast_join")
WIDE_KINDS = ("reduce_by_key", "group_by_key", "sort_by", "distinct")


@dataclass(frozen=True)
class Operator:
    """One step in a dataflow plan."""

    kind: str
    fn: Optional[Callable] = None
    key_fn: Optional[Callable] = None
    block: str = "filter-scan"  # cost-model building block
    label: str = ""
    side_table: Optional[tuple] = None  # broadcast_join's small relation

    def __post_init__(self) -> None:
        if self.kind not in NARROW_KINDS + WIDE_KINDS:
            raise PlanError(f"unknown operator kind: {self.kind!r}")
        if self.kind in ("map", "filter", "flat_map", "reduce_by_key") and (
            self.fn is None
        ):
            raise PlanError(f"{self.kind} requires fn")
        if self.kind in WIDE_KINDS and self.kind != "distinct" and (
            self.key_fn is None
        ):
            raise PlanError(f"{self.kind} requires key_fn")
        if self.kind == "broadcast_join":
            if self.key_fn is None or self.fn is None:
                raise PlanError("broadcast_join requires key_fn and fn")
            if self.side_table is None:
                raise PlanError("broadcast_join requires a side table")

    @property
    def is_wide(self) -> bool:
        """Whether the operator triggers a shuffle."""
        return self.kind in WIDE_KINDS


@dataclass
class Plan:
    """A chain of operators; built fluently, executed by an executor.

    >>> plan = (Plan.source()
    ...         .map(lambda x: x * 2)
    ...         .filter(lambda x: x > 2))
    >>> [op.kind for op in plan.operators]
    ['map', 'filter']
    """

    operators: List[Operator] = field(default_factory=list)

    @classmethod
    def source(cls) -> "Plan":
        """An empty plan over the (to-be-supplied) source dataset."""
        return cls()

    def _extend(self, operator: Operator) -> "Plan":
        return Plan(operators=self.operators + [operator])

    # -- narrow ------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], block: str = "filter-scan",
            label: str = "") -> "Plan":
        """Apply ``fn`` to every record."""
        return self._extend(Operator("map", fn=fn, block=block, label=label))

    def filter(self, fn: Callable[[Any], bool], block: str = "filter-scan",
               label: str = "") -> "Plan":
        """Keep records where ``fn`` is true."""
        return self._extend(Operator("filter", fn=fn, block=block, label=label))

    def flat_map(self, fn: Callable[[Any], list], block: str = "filter-scan",
                 label: str = "") -> "Plan":
        """Apply ``fn`` and flatten the resulting lists."""
        return self._extend(
            Operator("flat_map", fn=fn, block=block, label=label)
        )

    def broadcast_join(
        self,
        side_table,
        key_fn: Callable[[Any], Any],
        side_key_fn: Callable[[Any], Any],
        block: str = "hash-join",
        label: str = "",
    ) -> "Plan":
        """Map-side join against a small broadcast relation.

        Each record joins with the matching ``side_table`` rows (inner
        join semantics, emitting ``(record, side_row)`` pairs). Narrow:
        no shuffle -- the side table ships to every host once, which is
        why it must be small.
        """
        index: dict = {}
        for row in side_table:
            index.setdefault(side_key_fn(row), []).append(row)

        def join_record(record):
            return [(record, row) for row in index.get(key_fn(record), ())]

        return self._extend(
            Operator(
                "broadcast_join",
                fn=join_record,
                key_fn=key_fn,
                block=block,
                label=label,
                side_table=tuple(side_table),
            )
        )

    # -- wide ----------------------------------------------------------------

    def reduce_by_key(
        self,
        key_fn: Callable[[Any], Any],
        reduce_fn: Callable[[Any, Any], Any],
        block: str = "hash-aggregate",
        label: str = "",
    ) -> "Plan":
        """Shuffle by key, then fold each key's records with ``reduce_fn``.

        Emits ``(key, reduced_value)`` tuples.
        """
        return self._extend(
            Operator(
                "reduce_by_key", fn=reduce_fn, key_fn=key_fn, block=block,
                label=label,
            )
        )

    def group_by_key(
        self, key_fn: Callable[[Any], Any], block: str = "hash-aggregate",
        label: str = "",
    ) -> "Plan":
        """Shuffle by key; emits ``(key, [records])`` tuples."""
        return self._extend(
            Operator("group_by_key", key_fn=key_fn, block=block, label=label)
        )

    def sort_by(
        self, key_fn: Callable[[Any], Any], block: str = "sort", label: str = ""
    ) -> "Plan":
        """Global sort by key (range-partition shuffle + local sort)."""
        return self._extend(
            Operator("sort_by", key_fn=key_fn, block=block, label=label)
        )

    def distinct(self, block: str = "hash-aggregate", label: str = "") -> "Plan":
        """Global deduplication (hash shuffle + set)."""
        return self._extend(Operator("distinct", block=block, label=label))

    # -- introspection -------------------------------------------------------

    @property
    def n_stages(self) -> int:
        """Number of BSP stages (wide operators cut stage boundaries)."""
        return 1 + sum(1 for op in self.operators if op.is_wide)

    @property
    def n_shuffles(self) -> int:
        """Number of shuffles the plan performs."""
        return sum(1 for op in self.operators if op.is_wide)

    def validate(self) -> None:
        """Sanity-check the chain (non-empty)."""
        if not self.operators:
            raise PlanError("plan has no operators")

"""Shuffle cost model.

A wide operator moves (nearly) the whole intermediate dataset across the
fabric in an all-to-all pattern. The analytic model here charges:

- per-host egress/ingress serialization at the NIC rate, and
- the fabric core at its bisection bandwidth divided by the
  oversubscription factor,

taking the max (the binding constraint). This matches flow-level
simulation for balanced all-to-alls at a tiny fraction of the cost, and
the ablation bench (E11) checks the agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.network.topology import Fabric


@dataclass(frozen=True)
class ShuffleSpec:
    """One shuffle's inputs."""

    total_bytes: float
    n_hosts: int
    host_nic_gbps: float

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ModelError("shuffle volume cannot be negative")
        if self.n_hosts < 1:
            raise ModelError("need at least one host")
        if self.host_nic_gbps <= 0:
            raise ModelError("NIC rate must be positive")


def shuffle_time_s(
    spec: ShuffleSpec,
    bisection_gbps: float = None,
    locality_fraction: float = 0.0,
) -> float:
    """Duration of a balanced all-to-all shuffle.

    ``locality_fraction`` is the share of data that stays host-local
    (hash partitioning keeps 1/n locally on average); ``bisection_gbps``
    caps the cross-fabric aggregate when provided.
    """
    if not 0.0 <= locality_fraction < 1.0:
        raise ModelError("locality fraction must be in [0, 1)")
    if spec.n_hosts == 1:
        return 0.0  # everything is local
    moved = spec.total_bytes * (1.0 - locality_fraction) * (
        (spec.n_hosts - 1) / spec.n_hosts
    )
    per_host_bytes = moved / spec.n_hosts
    nic_rate = spec.host_nic_gbps * 1e9 / 8.0
    nic_time = per_host_bytes / nic_rate  # egress (ingress is symmetric)
    if bisection_gbps is None:
        return nic_time
    if bisection_gbps <= 0:
        raise ModelError("bisection bandwidth must be positive")
    core_rate = bisection_gbps * 1e9 / 8.0
    core_time = moved / (2.0 * core_rate)  # half the traffic crosses the cut
    return max(nic_time, core_time)


def shuffle_time_on_fabric(
    fabric: Fabric, total_bytes: float, host_nic_gbps: float
) -> float:
    """Shuffle time over all hosts of ``fabric`` using its real bisection."""
    n_hosts = len(fabric.hosts)
    spec = ShuffleSpec(total_bytes, n_hosts, host_nic_gbps)
    return shuffle_time_s(
        spec, bisection_gbps=fabric.bisection_bandwidth_gbps()
    )

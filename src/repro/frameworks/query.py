"""A declarative query layer that compiles to dataflow plans.

§IV.C.1 traces the shift from query languages (SQL) to distributed
frameworks; this module closes the loop the way Spark SQL did: a
:class:`Query` is declared against dict-shaped rows and *compiled* to a
:class:`~repro.frameworks.dataflow.Plan`, so the same optimizer-visible
structure (filter -> project -> join -> aggregate -> sort -> limit) runs
on the simulated cluster with the right building-block cost tags.

Compilation applies the two classic logical optimizations whose effect
the cost model can actually see: predicate pushdown (filters run before
joins/aggregates, shrinking shuffles) and projection pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytics.relational import AGGREGATES
from repro.errors import PlanError
from repro.frameworks.dataflow import Plan

Row = Dict[str, Any]


@dataclass(frozen=True)
class Predicate:
    """A WHERE clause term: column op literal."""

    column: str
    op: str
    value: Any

    _OPS: tuple = ("==", "!=", "<", "<=", ">", ">=", "in")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PlanError(
                f"unknown predicate op {self.op!r}; choose from {self._OPS}"
            )

    def matcher(self) -> Callable[[Row], bool]:
        """The predicate as a row function."""
        column, op, value = self.column, self.op, self.value

        def match(row: Row) -> bool:
            if column not in row:
                raise PlanError(f"row missing column {column!r}")
            cell = row[column]
            if op == "==":
                return cell == value
            if op == "!=":
                return cell != value
            if op == "<":
                return cell < value
            if op == "<=":
                return cell <= value
            if op == ">":
                return cell > value
            if op == ">=":
                return cell >= value
            return cell in value  # "in"

        return match


@dataclass(frozen=True)
class Aggregation:
    """One SELECT aggregate: fn(column) AS alias."""

    fn: str
    column: str
    alias: str

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATES:
            raise PlanError(
                f"unknown aggregate {self.fn!r}; choose from "
                f"{sorted(AGGREGATES)}"
            )
        if not self.alias:
            raise PlanError("aggregate needs an alias")


@dataclass(frozen=True)
class Query:
    """A declarative query over dict rows; build fluently, then compile.

    >>> q = (Query.table()
    ...      .where("region", "==", "EU")
    ...      .group_by("sector", Aggregation("sum", "amount", "total")))
    >>> plan = q.compile()
    >>> [op.kind for op in plan.operators]
    ['filter', 'map', 'reduce_by_key', 'map']
    """

    predicates: Tuple[Predicate, ...] = ()
    projection: Optional[Tuple[str, ...]] = None
    group_column: Optional[str] = None
    aggregations: Tuple[Aggregation, ...] = ()
    order_column: Optional[str] = None
    order_descending: bool = False
    limit_n: Optional[int] = None
    join_side: Optional[tuple] = None  # (rows, left_key, right_key)

    @classmethod
    def table(cls) -> "Query":
        """A query over the (to-be-supplied) input dataset."""
        return cls()

    # -- builders -----------------------------------------------------------

    def where(self, column: str, op: str, value: Any) -> "Query":
        """AND another predicate."""
        return replace(
            self, predicates=self.predicates + (Predicate(column, op, value),)
        )

    def select(self, *columns: str) -> "Query":
        """Project to ``columns`` (before any grouping)."""
        if not columns:
            raise PlanError("select needs at least one column")
        return replace(self, projection=tuple(columns))

    def join(self, rows: Sequence[Row], left_key: str,
             right_key: str) -> "Query":
        """Broadcast inner join against a small dimension table."""
        if self.join_side is not None:
            raise PlanError("only one join per query is supported")
        return replace(
            self, join_side=(tuple(rows), left_key, right_key)
        )

    def group_by(self, column: str, *aggregations: Aggregation) -> "Query":
        """GROUP BY one column with one or more aggregates."""
        if not aggregations:
            raise PlanError("group_by needs at least one aggregation")
        aliases = [a.alias for a in aggregations]
        if len(set(aliases)) != len(aliases):
            raise PlanError("duplicate aggregate aliases")
        return replace(
            self, group_column=column, aggregations=tuple(aggregations)
        )

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort the final rows."""
        return replace(
            self, order_column=column, order_descending=descending
        )

    def limit(self, n: int) -> "Query":
        """Keep the first ``n`` output rows."""
        if n < 1:
            raise PlanError("limit must be >= 1")
        return replace(self, limit_n=n)

    # -- compilation ----------------------------------------------------------

    def compile(self) -> Plan:
        """Lower the query to a dataflow plan.

        Operator order encodes predicate pushdown: WHERE before JOIN
        before GROUP BY; projection pruning runs as early as legal.

        A plan compiled from a LIMIT query carries run state (the
        remaining-row counter) and is therefore single-use: call
        ``compile()`` again for another execution.
        """
        plan = Plan.source()
        # 1. Predicate pushdown: filters first, fused left to right.
        for predicate in self.predicates:
            plan = plan.filter(
                predicate.matcher(), block="filter-scan",
                label=f"where-{predicate.column}",
            )
        # 2. Early projection (only when no join/group needs other columns).
        if self.projection and not self.group_column and not self.join_side:
            columns = self.projection

            def project(row: Row) -> Row:
                try:
                    return {c: row[c] for c in columns}
                except KeyError as exc:
                    raise PlanError(f"missing column: {exc}") from exc

            plan = plan.map(project, block="filter-scan", label="project")
        # 3. Broadcast join.
        if self.join_side:
            rows, left_key, right_key = self.join_side
            plan = plan.broadcast_join(
                list(rows),
                key_fn=lambda r: r[left_key],
                side_key_fn=lambda r: r[right_key],
                label=f"join-{left_key}",
            )
            # Merge the pair back into a flat row (right columns win ties
            # with a suffix, matching analytics.relational.hash_join).
            def merge(pair):
                left, right = pair
                merged = dict(left)
                for column, value in right.items():
                    if column == right_key:
                        continue
                    key = column + "_r" if column in left else column
                    merged[key] = value
                return merged

            plan = plan.map(merge, block="hash-join", label="merge-join")
        # 4. Grouped aggregation.
        if self.group_column:
            group_column = self.group_column
            aggregations = self.aggregations

            def to_kv(row: Row):
                if group_column not in row:
                    raise PlanError(f"row missing column {group_column!r}")
                return (row[group_column], row)

            plan = plan.map(to_kv, block="filter-scan", label="key-by")
            plan = plan.group_by_key(
                lambda kv: kv[0], label=f"group-{group_column}"
            )

            def aggregate(kv):
                key, pairs = kv
                rows = [row for _, row in pairs]
                out: Row = {group_column: key}
                for agg in aggregations:
                    values = [row[agg.column] for row in rows]
                    out[agg.alias] = AGGREGATES[agg.fn](values)
                return out

            plan = plan.map(aggregate, block="hash-aggregate",
                            label="aggregate")
        # 5. Ordering and limit.
        if self.order_column:
            column = self.order_column
            descending = self.order_descending

            def sort_key(row: Row):
                if column not in row:
                    raise PlanError(f"row missing sort column {column!r}")
                value = row[column]
                return _Reversed(value) if descending else value

            plan = plan.sort_by(sort_key, label=f"order-{column}")
        if self.limit_n is not None:
            remaining = {"left": self.limit_n}

            def take(row: Row) -> bool:
                if remaining["left"] <= 0:
                    return False
                remaining["left"] -= 1
                return True

            plan = plan.filter(take, block="filter-scan", label="limit")
        plan.validate()
        return plan


class _Reversed:
    """Total-order inverter for descending sorts of arbitrary comparables."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def run_query(executor, query: Query, dataset) -> List[Row]:
    """Compile and execute ``query``; returns the result rows."""
    result = executor.run(query.compile(), dataset)
    return result.records

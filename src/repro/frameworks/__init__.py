"""Mini Big Data frameworks: batch (MapReduce/Spark-style) and streaming
(Flink-style) executors over simulated clusters, with accelerator offload.

Results are computed with real Python; time and energy are charged via
the roofline cost model and the fabric shuffle model.
"""

from repro.frameworks.batch import BatchExecutor, JobResult, StageReport
from repro.frameworks.dataflow import (
    NARROW_KINDS,
    Operator,
    Plan,
    WIDE_KINDS,
)
from repro.frameworks.dataset import PartitionedDataset
from repro.frameworks.faults import (
    FaultModel,
    StageOutcome,
    bsp_stage_time,
    speculation_benefit,
    task_time_with_faults,
)
from repro.frameworks.iterative import (
    IterativeReport,
    caching_speedup,
    run_iterative,
)
from repro.frameworks.offload import (
    OffloadPolicy,
    cpu_only,
    greedy_energy,
    greedy_time,
)
from repro.frameworks.query import (
    Aggregation,
    Predicate,
    Query,
    run_query,
)
from repro.frameworks.shuffle import (
    ShuffleSpec,
    shuffle_time_on_fabric,
    shuffle_time_s,
)
from repro.frameworks.streaming import (
    SlidingWindow,
    StreamRecord,
    StreamingExecutor,
    StreamingJobReport,
    TumblingWindow,
    WindowResult,
    max_sustainable_rate_records_per_s,
)

__all__ = [
    "Aggregation",
    "BatchExecutor",
    "FaultModel",
    "IterativeReport",
    "JobResult",
    "NARROW_KINDS",
    "OffloadPolicy",
    "Operator",
    "PartitionedDataset",
    "Plan",
    "Predicate",
    "Query",
    "ShuffleSpec",
    "SlidingWindow",
    "StageOutcome",
    "StageReport",
    "StreamRecord",
    "StreamingExecutor",
    "StreamingJobReport",
    "TumblingWindow",
    "WIDE_KINDS",
    "WindowResult",
    "bsp_stage_time",
    "caching_speedup",
    "cpu_only",
    "greedy_energy",
    "greedy_time",
    "max_sustainable_rate_records_per_s",
    "run_iterative",
    "run_query",
    "shuffle_time_on_fabric",
    "shuffle_time_s",
    "speculation_benefit",
    "task_time_with_faults",
]

"""Streaming dataflow executor (the Flink-style half of §IV.C).

Processes timestamped records through event-time tumbling or sliding
windows with watermark-based lateness handling, and charges simulated
per-record processing cost the same way the batch executor does -- giving
the sustained-throughput numbers the convergence experiment (E14, R2)
reports for LHC/SKA-like science streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analytics.blocks import BlockRegistry, default_blocks
from repro.errors import PlanError
from repro.node.device import ComputeDevice


@dataclass(frozen=True)
class StreamRecord:
    """One event: event time, key, value."""

    event_time_s: float
    key: Any
    value: Any

    def __post_init__(self) -> None:
        if self.event_time_s < 0:
            raise PlanError("negative event time")


@dataclass(frozen=True)
class WindowResult:
    """The aggregate of one (key, window) pair."""

    key: Any
    window_start_s: float
    window_end_s: float
    value: Any
    n_records: int


@dataclass
class TumblingWindow:
    """Fixed, non-overlapping event-time windows."""

    width_s: float

    def __post_init__(self) -> None:
        if self.width_s <= 0:
            raise PlanError("window width must be positive")

    def assign(self, event_time_s: float) -> List[Tuple[float, float]]:
        """Window(s) an event belongs to."""
        start = (event_time_s // self.width_s) * self.width_s
        return [(start, start + self.width_s)]


@dataclass
class SlidingWindow:
    """Overlapping windows of ``width_s`` sliding every ``slide_s``."""

    width_s: float
    slide_s: float

    def __post_init__(self) -> None:
        if self.width_s <= 0 or self.slide_s <= 0:
            raise PlanError("window width and slide must be positive")
        if self.slide_s > self.width_s:
            raise PlanError("slide larger than width leaves gaps")

    def assign(self, event_time_s: float) -> List[Tuple[float, float]]:
        """All windows containing the event."""
        windows = []
        first = (
            (event_time_s - self.width_s) // self.slide_s + 1
        ) * self.slide_s
        start = max(0.0, first)
        while start <= event_time_s:
            windows.append((start, start + self.width_s))
            start += self.slide_s
        return windows


@dataclass
class StreamingJobReport:
    """Results plus cost accounting for one streaming run."""

    results: List[WindowResult]
    n_records_processed: int
    n_late_dropped: int
    sim_time_s: float
    energy_j: float

    @property
    def throughput_records_per_s(self) -> float:
        """Sustained simulated processing rate."""
        if self.sim_time_s <= 0:
            return float("inf")
        return self.n_records_processed / self.sim_time_s


class StreamingExecutor:
    """Windowed aggregation over a record stream on one device.

    ``aggregate_fn(values) -> value`` runs once per closed window;
    per-record ingest cost is charged via ``block`` on ``device``.
    """

    def __init__(
        self,
        device: ComputeDevice,
        window,
        aggregate_fn: Callable[[List[Any]], Any],
        allowed_lateness_s: float = 0.0,
        block: str = "hash-aggregate",
        blocks: Optional[BlockRegistry] = None,
    ) -> None:
        if allowed_lateness_s < 0:
            raise PlanError("lateness cannot be negative")
        self.device = device
        self.window = window
        self.aggregate_fn = aggregate_fn
        self.allowed_lateness_s = allowed_lateness_s
        self.block = (blocks or default_blocks()).get(block)

    def run(self, records: List[StreamRecord]) -> StreamingJobReport:
        """Process ``records`` (any arrival order); returns closed windows.

        The watermark advances to ``max(event_time seen) - lateness``;
        records older than the watermark are dropped as late. At end of
        stream every open window closes.
        """
        open_windows: Dict[Tuple[Any, float, float], List[Any]] = {}
        results: List[WindowResult] = []
        watermark = float("-inf")
        processed = 0
        dropped = 0

        for record in records:
            watermark = max(watermark, record.event_time_s - self.allowed_lateness_s)
            if record.event_time_s < watermark:
                dropped += 1
                continue
            processed += 1
            for start, end in self.window.assign(record.event_time_s):
                open_windows.setdefault((record.key, start, end), []).append(
                    record.value
                )

        for (key, start, end), values in sorted(
            open_windows.items(), key=lambda kv: (kv[0][1], repr(kv[0][0]))
        ):
            results.append(
                WindowResult(
                    key=key,
                    window_start_s=start,
                    window_end_s=end,
                    value=self.aggregate_fn(values),
                    n_records=len(values),
                )
            )

        if processed:
            sim_time = self.block.time_s(self.device, processed)
        else:
            sim_time = 0.0
        energy = sim_time * self.device.tdp_w
        return StreamingJobReport(
            results=results,
            n_records_processed=processed,
            n_late_dropped=dropped,
            sim_time_s=sim_time,
            energy_j=energy,
        )


def max_sustainable_rate_records_per_s(
    device: ComputeDevice,
    block_name: str = "hash-aggregate",
    blocks: Optional[BlockRegistry] = None,
    batch: int = 1_000_000,
) -> float:
    """The ingest rate at which the device saturates on ``block_name``."""
    block = (blocks or default_blocks()).get(block_name)
    return block.throughput_records_per_s(device, batch)

"""Straggler and failure injection for BSP stages.

Distributed frameworks exist because "shared-nothing clusters" fail and
straggle; a BSP stage takes as long as its slowest host. This module
models per-host slowdown/failure and the two standard mitigations --
task retry and speculative execution -- so experiments can quantify how
much tail the framework layer itself adds on top of the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engine.randomness import RandomStream
from repro.errors import ModelError


@dataclass(frozen=True)
class FaultModel:
    """Per-task stochastic behaviour on a cluster.

    ``straggler_probability``: chance a task runs ``straggler_slowdown``
    times longer (GC pause, flaky disk, noisy neighbour).
    ``failure_probability``: chance a task dies and must be retried from
    scratch.
    """

    straggler_probability: float = 0.05
    straggler_slowdown: float = 8.0
    failure_probability: float = 0.01
    max_retries: int = 3

    def __post_init__(self) -> None:
        for p in (self.straggler_probability, self.failure_probability):
            if not 0.0 <= p < 1.0:
                raise ModelError("probabilities must be in [0, 1)")
        if self.straggler_slowdown < 1.0:
            raise ModelError("slowdown must be >= 1")
        if self.max_retries < 0:
            raise ModelError("retries cannot be negative")


def task_time_with_faults(
    base_time_s: float, model: FaultModel, rng: RandomStream
) -> float:
    """One task's wall-clock under the fault model (with retries).

    A failed attempt costs its full (possibly straggling) duration before
    the retry starts; exceeding ``max_retries`` raises.
    """
    if base_time_s <= 0:
        raise ModelError("base time must be positive")
    total = 0.0
    for _attempt in range(model.max_retries + 1):
        duration = base_time_s
        if rng.uniform() < model.straggler_probability:
            duration *= model.straggler_slowdown
        total += duration
        if rng.uniform() >= model.failure_probability:
            return total
    raise ModelError("task exceeded retry budget")


@dataclass
class StageOutcome:
    """Result of simulating one BSP stage under faults."""

    task_times_s: List[float]
    stage_time_s: float
    speculative_copies: int


def bsp_stage_time(
    n_tasks: int,
    base_time_s: float,
    model: FaultModel,
    rng: RandomStream,
    speculative: bool = False,
    speculation_threshold: float = 2.0,
) -> StageOutcome:
    """Duration of a stage of ``n_tasks`` equal tasks under faults.

    With ``speculative`` execution, any task exceeding
    ``speculation_threshold`` times the median spawns a backup copy; the
    earlier of original and backup wins (the MapReduce mitigation). The
    model is analytic-per-task (tasks run fully parallel -- one wave).
    """
    if n_tasks < 1:
        raise ModelError("need at least one task")
    times = [
        task_time_with_faults(base_time_s, model, rng) for _ in range(n_tasks)
    ]
    copies = 0
    if speculative:
        median = sorted(times)[len(times) // 2]
        cutoff = speculation_threshold * median
        mitigated = []
        for t in times:
            if t > cutoff:
                # Backup launched at the cutoff point; it is fresh, so it
                # re-samples the fault model.
                backup = cutoff + task_time_with_faults(
                    base_time_s, model, rng
                )
                mitigated.append(min(t, backup))
                copies += 1
            else:
                mitigated.append(t)
        times = mitigated
    return StageOutcome(
        task_times_s=times,
        stage_time_s=max(times),
        speculative_copies=copies,
    )


def speculation_benefit(
    n_tasks: int,
    base_time_s: float,
    model: FaultModel,
    seed: int = 5,
    rounds: int = 30,
) -> Dict[str, float]:
    """Mean stage time with and without speculative execution."""
    if rounds < 1:
        raise ModelError("need at least one round")
    plain_total = 0.0
    spec_total = 0.0
    copies = 0
    for round_index in range(rounds):
        rng_plain = RandomStream(seed, f"plain{round_index}")
        rng_spec = RandomStream(seed, f"spec{round_index}")
        plain_total += bsp_stage_time(
            n_tasks, base_time_s, model, rng_plain
        ).stage_time_s
        outcome = bsp_stage_time(
            n_tasks, base_time_s, model, rng_spec, speculative=True
        )
        spec_total += outcome.stage_time_s
        copies += outcome.speculative_copies
    return {
        "plain_mean_s": plain_total / rounds,
        "speculative_mean_s": spec_total / rounds,
        "speedup": plain_total / spec_total,
        "mean_copies": copies / rounds,
    }

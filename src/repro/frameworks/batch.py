"""Batch dataflow executor: real results, simulated cost.

The executor runs a :class:`~repro.frameworks.dataflow.Plan` over a
:class:`~repro.frameworks.dataset.PartitionedDataset` on a simulated
:class:`~repro.cluster.machine.Cluster`. The *records* are computed with
plain Python (the results are real); the *time and energy* are charged by
the roofline cost of each operator's building block on the device the
offload policy selects, plus shuffle time from the fabric model -- a BSP
(bulk-synchronous) execution where each stage takes as long as its
slowest host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analytics.blocks import BlockRegistry, default_blocks
from repro.cluster.machine import Cluster
from repro.errors import PlanError
from repro.frameworks.dataflow import Operator, Plan
from repro.frameworks.dataset import PartitionedDataset
from repro.frameworks.offload import OffloadPolicy, cpu_only
from repro.frameworks.shuffle import ShuffleSpec, shuffle_time_s


@dataclass
class StageReport:
    """Timing of one BSP stage."""

    stage_index: int
    operator_labels: List[str] = field(default_factory=list)
    compute_time_s: float = 0.0
    shuffle_time_s: float = 0.0
    device_busy_s: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        """Stage wall-clock: compute then shuffle."""
        return self.compute_time_s + self.shuffle_time_s


@dataclass
class JobResult:
    """Outcome of one batch job."""

    records: List[Any]
    stages: List[StageReport]
    energy_j: float

    @property
    def sim_time_s(self) -> float:
        """End-to-end simulated wall-clock."""
        return sum(stage.total_time_s for stage in self.stages)

    @property
    def n_output_records(self) -> int:
        """Size of the final result."""
        return len(self.records)


class BatchExecutor:
    """Executes plans on a cluster under an offload policy."""

    def __init__(
        self,
        cluster: Cluster,
        blocks: Optional[BlockRegistry] = None,
        policy: Optional[OffloadPolicy] = None,
    ) -> None:
        if cluster.n_servers == 0:
            raise PlanError("cluster has no servers")
        self.cluster = cluster
        self.blocks = blocks or default_blocks()
        self.policy = policy or cpu_only()

    # -- cost charging -------------------------------------------------------

    def _host_of_partition(self, index: int) -> str:
        hosts = self.cluster.hosts
        return hosts[index % len(hosts)]

    def _charge_operator(
        self,
        operator: Operator,
        dataset: PartitionedDataset,
        stage: StageReport,
    ) -> float:
        """Add the operator's compute cost to ``stage``; returns energy."""
        block = self.blocks.get(operator.block)
        per_host_records: Dict[str, int] = {}
        for index, partition in enumerate(dataset.partitions):
            if not partition:
                continue
            host = self._host_of_partition(index)
            per_host_records[host] = per_host_records.get(host, 0) + len(partition)
        if not per_host_records:
            return 0.0
        slowest = 0.0
        energy = 0.0
        for host, n_records in per_host_records.items():
            server = self.cluster.server_at(host)
            device = self.policy.choose(block, server, n_records)
            elapsed = block.time_s(device, n_records)
            slowest = max(slowest, elapsed)
            energy += elapsed * device.tdp_w
            key = f"{host}:{device.name}"
            stage.device_busy_s[key] = stage.device_busy_s.get(key, 0.0) + elapsed
        stage.compute_time_s += slowest
        stage.operator_labels.append(operator.label or operator.kind)
        return energy

    def _charge_shuffle(
        self, dataset: PartitionedDataset, stage: StageReport
    ) -> None:
        n_hosts = len(self.cluster.hosts)
        nic_gbps = min(
            self.cluster.server_at(h).nic.rate_gbps for h in self.cluster.hosts
        )
        spec = ShuffleSpec(dataset.total_bytes, n_hosts, nic_gbps)
        bisection = (
            self.cluster.fabric.bisection_bandwidth_gbps()
            if n_hosts > 1
            else None
        )
        stage.shuffle_time_s += shuffle_time_s(spec, bisection_gbps=bisection)

    # -- functional application ---------------------------------------------

    @staticmethod
    def _apply_narrow(
        operator: Operator, dataset: PartitionedDataset
    ) -> PartitionedDataset:
        if operator.kind == "map":
            return dataset.map_partitions(
                lambda part: [operator.fn(r) for r in part]
            )
        if operator.kind == "filter":
            return dataset.map_partitions(
                lambda part: [r for r in part if operator.fn(r)]
            )
        if operator.kind in ("flat_map", "broadcast_join"):
            # broadcast_join's fn already emits the joined pair list.
            return dataset.map_partitions(
                lambda part: [x for r in part for x in operator.fn(r)]
            )
        raise PlanError(f"not a narrow operator: {operator.kind}")

    @staticmethod
    def _apply_wide(
        operator: Operator, dataset: PartitionedDataset
    ) -> PartitionedDataset:
        n = dataset.n_partitions
        if operator.kind == "reduce_by_key":
            shuffled = dataset.repartition_by_key(operator.key_fn, n)

            def reduce_partition(partition: List[Any]) -> List[Any]:
                acc: Dict[Any, Any] = {}
                for record in partition:
                    key = operator.key_fn(record)
                    acc[key] = (
                        operator.fn(acc[key], record) if key in acc else record
                    )
                return sorted(acc.items(), key=lambda kv: repr(kv[0]))

            return shuffled.map_partitions(reduce_partition)
        if operator.kind == "group_by_key":
            shuffled = dataset.repartition_by_key(operator.key_fn, n)

            def group_partition(partition: List[Any]) -> List[Any]:
                groups: Dict[Any, List[Any]] = {}
                for record in partition:
                    groups.setdefault(operator.key_fn(record), []).append(record)
                return sorted(groups.items(), key=lambda kv: repr(kv[0]))

            return shuffled.map_partitions(group_partition)
        if operator.kind == "sort_by":
            # Range-partitioned global sort: gather keys, sort, re-split.
            everything = sorted(dataset.collect(), key=operator.key_fn)
            size = max(1, -(-len(everything) // n))
            parts = [
                everything[i * size : (i + 1) * size] for i in range(n)
            ]
            parts = [p for p in parts if p] or [[]]
            return PartitionedDataset(parts, record_bytes=dataset.record_bytes)
        if operator.kind == "distinct":
            shuffled = dataset.repartition_by_key(lambda r: r, n)

            def dedupe(partition: List[Any]) -> List[Any]:
                seen = set()
                out = []
                for record in partition:
                    if record not in seen:
                        seen.add(record)
                        out.append(record)
                return out

            return shuffled.map_partitions(dedupe)
        raise PlanError(f"not a wide operator: {operator.kind}")

    # -- driver ----------------------------------------------------------------

    def run(self, plan: Plan, dataset: PartitionedDataset) -> JobResult:
        """Execute ``plan`` over ``dataset``; returns records + cost report."""
        plan.validate()
        stages: List[StageReport] = [StageReport(stage_index=0)]
        energy = 0.0
        current = dataset
        for operator in plan.operators:
            if operator.is_wide:
                # The shuffle write happens at the end of the open stage...
                self._charge_shuffle(current, stages[-1])
                stages.append(StageReport(stage_index=len(stages)))
                # ...and the wide operator's compute lands in the new stage.
                energy += self._charge_operator(operator, current, stages[-1])
                current = self._apply_wide(operator, current)
            else:
                energy += self._charge_operator(operator, current, stages[-1])
                current = self._apply_narrow(operator, current)
        return JobResult(records=current.collect(), stages=stages, energy_j=energy)

"""Partitioned datasets: the unit of distribution.

A :class:`PartitionedDataset` is a list of partitions (plain Python
lists). The batch executor assigns partitions to cluster hosts; the
"shared-nothing" model of §IV.C.3 -- "all of these frameworks specify in
a declarative way the data placement and unit of parallelization".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

from repro.errors import PlanError


@dataclass
class PartitionedDataset:
    """Records split across partitions."""

    partitions: List[List[Any]] = field(default_factory=list)
    record_bytes: float = 100.0  # average serialized record size

    def __post_init__(self) -> None:
        if not self.partitions:
            raise PlanError("dataset needs at least one partition")
        if self.record_bytes <= 0:
            raise PlanError("record size must be positive")

    @classmethod
    def from_records(
        cls,
        records: Sequence[Any],
        n_partitions: int,
        record_bytes: float = 100.0,
    ) -> "PartitionedDataset":
        """Round-robin split of ``records`` into ``n_partitions``."""
        if n_partitions < 1:
            raise PlanError(f"need at least one partition, got {n_partitions}")
        parts: List[List[Any]] = [[] for _ in range(n_partitions)]
        for index, record in enumerate(records):
            parts[index % n_partitions].append(record)
        return cls(partitions=parts, record_bytes=record_bytes)

    @property
    def n_partitions(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    @property
    def n_records(self) -> int:
        """Total record count."""
        return sum(len(p) for p in self.partitions)

    @property
    def total_bytes(self) -> float:
        """Estimated serialized size."""
        return self.n_records * self.record_bytes

    def collect(self) -> List[Any]:
        """All records, partition order."""
        out: List[Any] = []
        for partition in self.partitions:
            out.extend(partition)
        return out

    def map_partitions(
        self, fn: Callable[[List[Any]], List[Any]], record_bytes: float = None
    ) -> "PartitionedDataset":
        """A new dataset with ``fn`` applied to each partition."""
        return PartitionedDataset(
            partitions=[list(fn(p)) for p in self.partitions],
            record_bytes=record_bytes if record_bytes else self.record_bytes,
        )

    def repartition_by_key(
        self, key_fn: Callable[[Any], Any], n_partitions: int
    ) -> "PartitionedDataset":
        """Hash-partition records by ``key_fn`` (the shuffle data path)."""
        if n_partitions < 1:
            raise PlanError("need at least one partition")
        parts: List[List[Any]] = [[] for _ in range(n_partitions)]
        for partition in self.partitions:
            for record in partition:
                bucket = _stable_bucket(key_fn(record), n_partitions)
                parts[bucket].append(record)
        return PartitionedDataset(parts, record_bytes=self.record_bytes)


def _stable_bucket(key: Any, n: int) -> int:
    """Deterministic hash bucket (``hash()`` is salted for str)."""
    text = repr(key)
    value = 2166136261
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 16777619) % (2**32)
    return value % n

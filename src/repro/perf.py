"""Pinned performance microbenches for the simulation substrates.

``python -m repro perf`` runs every microbench twice per round -- once on
the production kernel and once on the frozen pre-fast-path reference
kernel (:mod:`repro._perfref` for the engine/network suites,
:mod:`repro._modelref` for the model suite) -- in interleaved rounds,
then reports the median wall time of each side and the speedup ratio. CI
gates on the *ratios*, not on absolute times, so results are robust to
machine differences.

Benches
-------
``event_churn``
    Steady-state callback chains: a rolling window of pending timeouts,
    each completion scheduling the next. Measures raw event throughput
    (allocation, heap traffic, dispatch).
``timeout_churn``
    A single process yielding tens of thousands of timeouts back to
    back. Measures the process-step / timeout round trip.
``resource_contention``
    Many processes cycling acquire/hold/release on a small
    :class:`~repro.engine.resources.Resource`. Measures the
    event-flush and FIFO grant path.
``e2_end_to_end``
    The E2 Catapult search-ranking workload end to end on both kernels.
    Measures a realistic mix, and doubles as a golden-output check: the
    latency samples must match the reference kernel exactly.
``flow_solver_500``
    500-flow all-to-all shuffle between two racks (the E6-E8 traffic
    shape) through :class:`~repro.network.flows.FlowSimulator`.
``flow_solver_scaling``
    A smaller random-pair flow set across the whole fabric.
``switch_failure_impact``
    Per-switch bisection-impact analysis of a host-heavy leaf-spine:
    the production contract-once/reuse-the-baseline-flow analysis vs
    the frozen copy-and-recompute-per-switch reference.
``incremental_flow_repair``
    A localized fault schedule (ToR-uplink flaps, aggregation-switch
    crashes) over a ~1k-switch fat-tree:
    :class:`~repro.network.flows.IncrementalMaxMinSolver` repairing
    only the affected flows per event vs the frozen
    reroute-everything + full-re-solve driver. Allocation snapshots
    after every event must match bit for bit.
``sharded_fabric_4w``
    The X14 fabric-transport workload (k=30 fat-tree, 1125 switches,
    100k requests) on the sharded conservative-time engine -- 4 worker
    processes, pod-aligned cut -- vs the single-process kernel. The
    checksum is the canonical trace digest plus delivery counts, so
    every perf run re-proves bit-for-bit engine equivalence before
    timing is trusted. Pinned 3x target; the floor is enforced only on
    machines with >= 4 cores (see ``parallel_workers``).
``sharded_window_protocol``
    The same workload with 4 shards *inline* in one process: isolates
    the conservative-window protocol overhead (barriers, boundary-event
    routing, trace merge) from parallel hardware.
``mc_commodity_year``
    Sampled commodity-year scenarios (the E1/E16 Monte-Carlo shape):
    one :func:`repro.mc.commodity_year_samples` batch vs the frozen
    per-sample scalar loop.
``roi_npv_sweep``
    NPV over a sampled accelerator-parameter grid:
    :func:`repro.mc.npv_batch` vs the per-sample cashflow/NPV loop.
``soc_sip_unit_costs``
    Monte-Carlo SoC/SiP unit costs under subsystem-area jitter on the
    EUROSERVER reference design.
``market_concentration``
    Lognormally jittered vendor shares plus the HHI of every sample.
``adoption_paths``
    A (q-sample x time) grid of Bass cumulative-adoption fractions.
``survey_theme_stats``
    Corpus fraction + per-role cross-tab for every survey theme in one
    batched pass over a replicated interview corpus.

Every bench verifies that both kernels produce the same simulation
results before any timing is reported (exactly for the engine benches,
to 1e-9 relative for the flow benches, whose vectorized solver may order
exact float ties differently). The model benches are bit-exact except
``soc_sip_unit_costs``, where numpy's SIMD ``pow`` differs from scalar
libm ``pow`` by 1 ULP in the yield term (see :mod:`repro.mc.soc_sip`).

Outputs ``BENCH_engine.json``, ``BENCH_network.json``,
``BENCH_models.json`` and ``BENCH_sharded.json``; with ``--check <dir>``
the run fails if any bench regresses more than 25% against the committed
baseline or drops below its pinned ``min_speedup`` floor. The headline
benches carry a ``target_speedup`` (3x event churn, 5x 500-flow solver,
10x for the sampled-scenario model benches, 3x the 4-worker sharded
engine) that the committed baseline demonstrates; the CI floor is the
target minus the regression tolerance, so a genuine regression trips
the gate but single-vCPU scheduler jitter does not. Parallel benches
record the core count they ran on and are ratio-gated only when the
machine can actually host their workers.

``--list`` prints every suite, bench id and pinned floor without
running anything, and every timed run appends one JSON line -- UTC
timestamp, git revision, all speedup ratios -- to
``benchmarks/BENCH_history.jsonl`` (override with ``--history-file``).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import _modelref, _perfref
from repro.errors import ModelError

#: CI fails when a bench's speedup falls more than this far (fractional)
#: below the committed baseline's speedup.
REGRESSION_TOLERANCE = 0.25

_BenchOutcome = Tuple[float, Any]  # (elapsed seconds, result checksum)


# ---------------------------------------------------------------------------
# Engine microbenches. Each takes the kernel classes to run on, so the
# same workload drives the production and the reference kernel.
# ---------------------------------------------------------------------------


def _bench_event_churn(sim_cls, n_events: int, window: int = 128) -> _BenchOutcome:
    sim = sim_cls()
    budget = n_events
    timeout = sim.timeout

    def make_chain(delay):
        def advance(evt):
            nonlocal budget
            budget -= 1
            if budget > 0:
                timeout(delay).add_callback(advance)

        return advance

    start = time.perf_counter()
    for i in range(window):
        timeout(1e-4 + i * 1e-6).add_callback(make_chain(1e-3 + i * 1e-6))
    sim.run()
    return time.perf_counter() - start, sim.now


def _bench_timeout_churn(sim_cls, n_timeouts: int) -> _BenchOutcome:
    sim = sim_cls()

    def ticker():
        for i in range(n_timeouts):
            yield sim.timeout(1e-3 + (i % 7) * 1e-6)

    sim.spawn(ticker())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.now


def _bench_resource_contention(
    sim_cls, resource_cls, n_procs: int, cycles: int
) -> _BenchOutcome:
    sim = sim_cls()
    pool = resource_cls(sim, capacity=8)

    def worker(k):
        for _ in range(cycles):
            yield pool.acquire()
            yield sim.timeout(1e-4 + (k % 11) * 1e-6)
            pool.release()

    for k in range(n_procs):
        sim.spawn(worker(k))
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.now


def _bench_e2_end_to_end(sim_cls, resource_cls, n_requests: int) -> _BenchOutcome:
    import repro.workloads.search as search

    originals = (search.Simulator, search.Resource)
    search.Simulator, search.Resource = sim_cls, resource_cls
    try:
        start = time.perf_counter()
        result = search.run_search_service(
            qps=4000.0, n_requests=n_requests, accelerated=True
        )
        elapsed = time.perf_counter() - start
    finally:
        search.Simulator, search.Resource = originals
    return elapsed, tuple(result.latencies_s)


# ---------------------------------------------------------------------------
# Flow-solver microbenches.
# ---------------------------------------------------------------------------


def _shuffle_flows(n_flows: int, seed: int = 7):
    """All-to-all shuffle between two racks: the E6-E8 traffic shape."""
    from repro.network.flows import Flow

    rng = random.Random(seed)
    return [
        Flow(
            i,
            f"host0-{rng.randrange(8)}",
            f"host1-{rng.randrange(8)}",
            (1 + rng.random() * 99) * 1e6,
            start_s=rng.random() * 0.05,
        )
        for i in range(n_flows)
    ]


def _random_flows(n_flows: int, seed: int = 11):
    from repro.network.flows import Flow

    rng = random.Random(seed)
    flows = []
    for i in range(n_flows):
        src = f"host{rng.randrange(4)}-{rng.randrange(8)}"
        dst = f"host{rng.randrange(4)}-{rng.randrange(8)}"
        while dst == src:
            dst = f"host{rng.randrange(4)}-{rng.randrange(8)}"
        flows.append(
            Flow(i, src, dst, (1 + rng.random() * 99) * 1e6,
                 start_s=rng.random() * 0.5)
        )
    return flows


def _bench_flow_solver(solver_cls, make_flows) -> _BenchOutcome:
    from repro.network.topology import leaf_spine

    fabric = leaf_spine(n_spines=4, n_leaves=4, hosts_per_leaf=8)
    flows = make_flows()
    solver = solver_cls(fabric)
    start = time.perf_counter()
    solver.run(flows)
    elapsed = time.perf_counter() - start
    return elapsed, tuple(f.finish_s for f in flows)


def _bench_switch_impact(impl, hosts_per_leaf: int) -> _BenchOutcome:
    from repro.network.topology import leaf_spine

    fabric = leaf_spine(
        n_spines=4, n_leaves=8, hosts_per_leaf=hosts_per_leaf
    )
    start = time.perf_counter()
    worst = impl(fabric)
    elapsed = time.perf_counter() - start
    return elapsed, tuple(value for _, value in sorted(worst.items()))


def _fault_schedule_workload(
    k: int, n_flows: int, n_events: int, seed: int
) -> Tuple[Any, List[Any], List[Tuple[str, Tuple]]]:
    """A fat-tree, a flow set and a localized fault schedule.

    Fault targets are ToR uplinks and aggregation switches that the
    flows actually cross (discovered by routing once on the pristine
    fabric), so every event reroutes someone but none can disconnect a
    host: a ToR keeps k/2 uplinks and the schedule downs at most a few
    elements concurrently. Deterministic in ``seed``; called once per
    bench side so candidate and reference mutate separate fabrics.
    """
    from repro.network.flows import Flow
    from repro.network.routing import ecmp_path_for_flow, path_links
    from repro.network.topology import ROLE_AGG, ROLE_TOR, fat_tree

    fabric = fat_tree(k)
    rng = random.Random(seed)
    hosts = fabric.hosts
    flows = []
    for i in range(n_flows):
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        flows.append(Flow(i, src, dst, (1 + rng.random() * 99) * 1e6))

    uplinks: List[Tuple[str, str]] = []
    aggs: List[str] = []
    seen_links: set = set()
    seen_aggs: set = set()
    for flow in flows:
        path = ecmp_path_for_flow(fabric, flow.src, flow.dst, flow.flow_id)
        for link in path_links(path):
            roles = {fabric.role(link[0]), fabric.role(link[1])}
            if roles == {ROLE_TOR, ROLE_AGG} and link not in seen_links:
                seen_links.add(link)
                uplinks.append(link)
        for node in path:
            if fabric.role(node) == ROLE_AGG and node not in seen_aggs:
                seen_aggs.add(node)
                aggs.append(node)

    schedule: List[Tuple[str, Tuple]] = []
    downed: List[Tuple[str, str]] = []
    for j in range(n_events):
        phase = j % 4
        if phase == 3 and downed:
            schedule.append(("restore_link", downed.pop(0)))
        elif phase == 2 and aggs:
            schedule.append(
                ("fail_node", (aggs.pop(rng.randrange(len(aggs))),))
            )
        else:
            remaining = [link for link in uplinks if link not in downed]
            link = remaining[rng.randrange(len(remaining))]
            downed.append(link)
            schedule.append(("fail_link", link))
    return fabric, flows, schedule


def _bench_incremental_repair(
    incremental: bool, k: int, n_flows: int, n_events: int, seed: int
) -> _BenchOutcome:
    fabric, flows, schedule = _fault_schedule_workload(
        k, n_flows, n_events, seed
    )
    if incremental:
        from repro.network.flows import IncrementalMaxMinSolver

        start = time.perf_counter()
        solver = IncrementalMaxMinSolver(fabric, flows)
        snapshots = [dict(solver.allocations)]
        for method, args in schedule:
            getattr(solver, method)(*args)
            snapshots.append(dict(solver.allocations))
        elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        snapshots = _perfref.reference_fault_schedule_rates(
            fabric, flows, schedule
        )
        elapsed = time.perf_counter() - start
    return elapsed, snapshots


# ---------------------------------------------------------------------------
# Model-layer microbenches: repro.mc batch kernels vs the frozen scalar
# references in repro._modelref. Workload setup (sampling inputs,
# building the corpus) happens before the timer so both sides time only
# the model evaluation.
# ---------------------------------------------------------------------------


def _bench_commodity_year(impl, n_samples: int, seed: int) -> _BenchOutcome:
    start = time.perf_counter()
    years = impl(4, 0.35, 1.5, n_samples, seed)
    return time.perf_counter() - start, years.tobytes()


def _bench_npv_sweep(sweep, n_samples: int, seed: int) -> _BenchOutcome:
    from repro.econ.sensitivity import default_accelerator_ranges
    from repro.mc import uniform_parameter_samples

    params = uniform_parameter_samples(
        default_accelerator_ranges(), n_samples, seed
    )
    start = time.perf_counter()
    npv = sweep(params, n_samples)
    return time.perf_counter() - start, npv.tobytes()


def _bench_sampled_unit_costs(impl, n_samples: int, seed: int) -> _BenchOutcome:
    from repro.econ.silicon import PROCESS_CATALOG
    from repro.econ.soc_sip import euroserver_reference_design

    design = euroserver_reference_design(
        PROCESS_CATALOG["16nm"], PROCESS_CATALOG["28nm"]
    )
    start = time.perf_counter()
    soc, sip = impl(design, 0.2, n_samples, seed)
    elapsed = time.perf_counter() - start
    return elapsed, tuple(map(float, soc)) + tuple(map(float, sip))


def _bench_market_concentration(
    sample_impl, hhi_impl, n_samples: int, seed: int
) -> _BenchOutcome:
    shares = [0.55, 0.12, 0.10, 0.08, 0.15]  # the datacenter-switch market
    start = time.perf_counter()
    sampled = sample_impl(shares, 0.3, n_samples, seed)
    hhi = hhi_impl(sampled)
    elapsed = time.perf_counter() - start
    return elapsed, sampled.tobytes() + hhi.tobytes()


def _bench_adoption_paths(impl, n_q: int, n_t: int, seed: int) -> _BenchOutcome:
    import numpy as np

    rng = np.random.default_rng(seed)
    q_values = rng.uniform(0.2, 0.8, size=n_q)
    t_grid = np.linspace(-2.0, 25.0, n_t)
    start = time.perf_counter()
    paths = impl(0.03, q_values, t_grid)
    return time.perf_counter() - start, paths.tobytes()


def _bench_theme_statistics(impl, replication: int) -> _BenchOutcome:
    from repro.survey import ALL_THEMES, generate_corpus

    corpus = generate_corpus()
    role_by_company = {c.company_id: c.role.value for c in corpus.companies}
    themes = [i.themes for i in corpus.interviews] * replication
    roles = [
        role_by_company[i.company_id] for i in corpus.interviews
    ] * replication
    start = time.perf_counter()
    stats = impl(themes, roles, list(ALL_THEMES))
    return time.perf_counter() - start, stats


# ---------------------------------------------------------------------------
# Sharded-engine benches. Candidate and reference are the *same*
# workload through two engines -- the sharded conservative-time
# coordinator vs the single-process kernel -- so the checksum (the
# canonical trace digest plus delivery counts) doubles as the
# bit-for-bit equivalence gate on every perf run.
# ---------------------------------------------------------------------------


def _bench_sharded_fabric(
    shards: int, inline: bool, workload
) -> _BenchOutcome:
    from repro.workloads.fabricsim import (
        simulate_fabric,
        simulate_fabric_sharded,
    )

    start = time.perf_counter()
    if shards <= 1:
        run = simulate_fabric(workload)
    else:
        run = simulate_fabric_sharded(workload, shards=shards, inline=inline)
    elapsed = time.perf_counter() - start
    checksum = (
        run.metrics["trace_sha256"],
        run.metrics["delivered"],
        run.metrics["dropped"],
        run.metrics["fault_events"],
    )
    return elapsed, checksum


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchSpec:
    """One pinned microbench: candidate and reference runners."""

    name: str
    suite: str
    description: str
    candidate: Callable[[], _BenchOutcome]
    reference: Callable[[], _BenchOutcome]
    exact: bool = True  # checksum comparison: exact vs 1e-9 relative
    #: Speedup the committed baseline must demonstrate. The pinned CI
    #: floor is ``target_speedup * (1 - REGRESSION_TOLERANCE)`` so that
    #: single-vCPU timing jitter cannot flake the gate while a real
    #: regression still trips it.
    target_speedup: Optional[float] = None
    #: Worker processes the candidate needs to hit its target (0 for a
    #: single-process bench). A parallel bench records the core count it
    #: ran on, and the baseline check only enforces ratio floors when
    #: the machine actually has that many cores -- a 4-worker 3x target
    #: is meaningless on a 1-core box.
    parallel_workers: int = 0


def _verify_checksums(spec: BenchSpec, candidate: Any, reference: Any) -> None:
    if spec.exact:
        if candidate != reference:
            raise ModelError(
                f"perf bench {spec.name!r}: candidate kernel diverged from "
                f"the reference kernel ({candidate!r} != {reference!r})"
            )
        return
    cand = candidate if isinstance(candidate, tuple) else (candidate,)
    ref = reference if isinstance(reference, tuple) else (reference,)
    if len(cand) != len(ref):
        raise ModelError(
            f"perf bench {spec.name!r}: result cardinality diverged"
        )
    for i, (a, b) in enumerate(zip(cand, ref)):
        scale = max(abs(a), abs(b), 1e-12)
        if abs(a - b) / scale > 1e-9:
            raise ModelError(
                f"perf bench {spec.name!r}: result {i} diverged beyond "
                f"1e-9 relative ({a!r} vs {b!r})"
            )


def _run_spec(spec: BenchSpec, rounds: int) -> Dict[str, Any]:
    # Warmup round, also used to verify both kernels agree on the
    # simulation results before any timing is trusted.
    _, cand_sum = spec.candidate()
    _, ref_sum = spec.reference()
    _verify_checksums(spec, cand_sum, ref_sum)

    candidate_times: List[float] = []
    reference_times: List[float] = []
    for _ in range(rounds):
        # Interleaved so slow machine-wide drift (thermal, noisy
        # neighbours) hits both sides equally.
        candidate_times.append(spec.candidate()[0])
        reference_times.append(spec.reference()[0])

    reference_median = statistics.median(reference_times)
    candidate_median = statistics.median(candidate_times)
    entry: Dict[str, Any] = {
        "description": spec.description,
        "rounds": rounds,
        "reference_median_s": round(reference_median, 6),
        "candidate_median_s": round(candidate_median, 6),
        "speedup": round(reference_median / candidate_median, 3),
    }
    if spec.target_speedup is not None:
        entry["target_speedup"] = spec.target_speedup
        entry["min_speedup"] = round(
            spec.target_speedup * (1.0 - REGRESSION_TOLERANCE), 3
        )
    if spec.parallel_workers:
        entry["parallel_workers"] = spec.parallel_workers
        entry["cores"] = _available_cores()
    return entry


def _available_cores() -> int:
    """CPU cores available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_specs(quick: bool = False, seed: int = 0) -> List[BenchSpec]:
    """The pinned bench set; ``quick`` shrinks workloads ~10x for tests.

    ``seed`` follows the runner convention: added to each flow bench's
    legacy base seed (7 / 11) and to each model bench's base seed, with
    0 reproducing historical runs.
    """
    from repro.engine.resources import Resource
    from repro.engine.sim import Simulator
    from repro.mc import (
        bass_adoption_paths,
        commodity_year_samples,
        hhi_batch,
        npv_batch,
        sampled_market_shares,
        sampled_unit_costs,
        theme_statistics,
    )
    from repro.network.failures import single_switch_failure_impact
    from repro.network.flows import FlowSimulator
    from repro.workloads.fabricsim import FabricWorkload

    scale = 0.1 if quick else 1.0
    n_churn = max(int(50_000 * scale), 500)
    n_timeouts = max(int(30_000 * scale), 300)
    n_procs = max(int(200 * scale), 20)
    cycles = 25
    n_requests = max(int(2_000 * scale), 100)
    n_shuffle = max(int(500 * scale), 50)
    n_random = max(int(150 * scale), 30)
    hosts_per_leaf = 4 if quick else 16
    n_mc_years = max(int(200_000 * scale), 2_000)
    n_mc_roi = max(int(40_000 * scale), 400)
    n_mc_costs = max(int(6_000 * scale), 60)
    n_mc_shares = max(int(60_000 * scale), 600)
    n_mc_q = max(int(500 * scale), 50)
    n_mc_t = max(int(300 * scale), 30)
    corpus_reps = max(int(100 * scale), 2)
    repair_k = 8 if quick else 30  # 1125 switches at k=30
    repair_flows = 10 if quick else 24
    repair_events = 6 if quick else 10
    sharded_workload = FabricWorkload(
        fabric="fat-tree",
        k=8 if quick else 30,  # 1125 switches, 6750 hosts at k=30
        n_requests=4_000 if quick else 100_000,
        duration_s=2e-3,
        seed=23 + seed,
    )
    sharded_shards = 2 if quick else 4
    sharded_workers = 2 if quick else 4

    return [
        BenchSpec(
            name="event_churn",
            suite="engine",
            description=(
                f"{n_churn} chained timeout completions over a rolling "
                "window of pending events"
            ),
            candidate=lambda: _bench_event_churn(Simulator, n_churn),
            reference=lambda: _bench_event_churn(_perfref.Simulator, n_churn),
            target_speedup=None if quick else 3.0,
        ),
        BenchSpec(
            name="timeout_churn",
            suite="engine",
            description=(
                f"one process yielding {n_timeouts} timeouts back to back"
            ),
            candidate=lambda: _bench_timeout_churn(Simulator, n_timeouts),
            reference=lambda: _bench_timeout_churn(
                _perfref.Simulator, n_timeouts
            ),
        ),
        BenchSpec(
            name="resource_contention",
            suite="engine",
            description=(
                f"{n_procs} processes x {cycles} acquire/hold/release "
                "cycles on an 8-way resource"
            ),
            candidate=lambda: _bench_resource_contention(
                Simulator, Resource, n_procs, cycles
            ),
            reference=lambda: _bench_resource_contention(
                _perfref.Simulator, _perfref.Resource, n_procs, cycles
            ),
        ),
        BenchSpec(
            name="e2_end_to_end",
            suite="engine",
            description=(
                f"E2 search-ranking service, {n_requests} accelerated "
                "requests at 4000 qps"
            ),
            candidate=lambda: _bench_e2_end_to_end(
                Simulator, Resource, n_requests
            ),
            reference=lambda: _bench_e2_end_to_end(
                _perfref.Simulator, _perfref.Resource, n_requests
            ),
        ),
        BenchSpec(
            name="flow_solver_500",
            suite="network",
            description=(
                f"{n_shuffle}-flow two-rack shuffle through FlowSimulator"
            ),
            candidate=lambda: _bench_flow_solver(
                FlowSimulator, lambda: _shuffle_flows(n_shuffle, seed=7 + seed)
            ),
            reference=lambda: _bench_flow_solver(
                _perfref.ReferenceFlowSimulator,
                lambda: _shuffle_flows(n_shuffle, seed=7 + seed),
            ),
            exact=False,
            target_speedup=None if quick else 5.0,
        ),
        BenchSpec(
            name="switch_failure_impact",
            suite="network",
            description=(
                f"per-switch bisection impact on a 4x8 leaf-spine with "
                f"{hosts_per_leaf} hosts per leaf"
            ),
            candidate=lambda: _bench_switch_impact(
                single_switch_failure_impact, hosts_per_leaf
            ),
            reference=lambda: _bench_switch_impact(
                _perfref.reference_single_switch_failure_impact,
                hosts_per_leaf,
            ),
            exact=False,
        ),
        BenchSpec(
            name="flow_solver_scaling",
            suite="network",
            description=(
                f"{n_random} random-pair flows across a 4x4 leaf-spine"
            ),
            candidate=lambda: _bench_flow_solver(
                FlowSimulator, lambda: _random_flows(n_random, seed=11 + seed)
            ),
            reference=lambda: _bench_flow_solver(
                _perfref.ReferenceFlowSimulator,
                lambda: _random_flows(n_random, seed=11 + seed),
            ),
            exact=False,
        ),
        BenchSpec(
            name="incremental_flow_repair",
            suite="network",
            description=(
                f"{repair_events}-event localized fault schedule over a "
                f"k={repair_k} fat-tree with {repair_flows} flows: "
                "incremental repair vs full reroute + re-solve per event"
            ),
            candidate=lambda: _bench_incremental_repair(
                True, repair_k, repair_flows, repair_events, 17 + seed
            ),
            reference=lambda: _bench_incremental_repair(
                False, repair_k, repair_flows, repair_events, 17 + seed
            ),
            exact=True,  # allocations must match bit for bit
            target_speedup=None if quick else 10.0,
        ),
        BenchSpec(
            name="sharded_fabric_4w",
            suite="sharded",
            description=(
                f"k={sharded_workload.k} fat-tree transport "
                f"({sharded_workload.n_requests} requests): "
                f"{sharded_shards} worker processes under conservative "
                "windows vs the single-process kernel"
            ),
            candidate=lambda: _bench_sharded_fabric(
                sharded_shards, False, sharded_workload
            ),
            reference=lambda: _bench_sharded_fabric(
                1, False, sharded_workload
            ),
            exact=True,  # merged trace digest must match bit for bit
            target_speedup=None if quick else 3.0,
            parallel_workers=sharded_workers,
        ),
        BenchSpec(
            name="sharded_window_protocol",
            suite="sharded",
            description=(
                f"same workload, {sharded_shards} shards inline in one "
                "process: conservative-window protocol overhead without "
                "parallel hardware"
            ),
            candidate=lambda: _bench_sharded_fabric(
                sharded_shards, True, sharded_workload
            ),
            reference=lambda: _bench_sharded_fabric(
                1, False, sharded_workload
            ),
            exact=True,
        ),
        BenchSpec(
            name="mc_commodity_year",
            suite="models",
            description=(
                f"{n_mc_years} sampled commodity-year scenarios "
                "(TRL 4, risk 0.35, 1.5x acceleration)"
            ),
            candidate=lambda: _bench_commodity_year(
                commodity_year_samples, n_mc_years, 29 + seed
            ),
            reference=lambda: _bench_commodity_year(
                _modelref.reference_commodity_year_samples,
                n_mc_years,
                29 + seed,
            ),
            target_speedup=None if quick else 10.0,
        ),
        BenchSpec(
            name="roi_npv_sweep",
            suite="models",
            description=(
                f"NPV over {n_mc_roi} sampled accelerator parameter "
                "vectors (the Finding-2 uncertainty set)"
            ),
            candidate=lambda: _bench_npv_sweep(
                lambda params, _n: npv_batch(params), n_mc_roi, seed
            ),
            reference=lambda: _bench_npv_sweep(
                lambda params, n: _modelref.reference_npv_sweep(
                    params, n, 3
                ),
                n_mc_roi,
                seed,
            ),
            target_speedup=None if quick else 10.0,
        ),
        BenchSpec(
            name="soc_sip_unit_costs",
            suite="models",
            description=(
                f"{n_mc_costs} Monte-Carlo SoC/SiP unit costs on the "
                "EUROSERVER design (sigma 0.2 area jitter)"
            ),
            candidate=lambda: _bench_sampled_unit_costs(
                sampled_unit_costs, n_mc_costs, seed
            ),
            reference=lambda: _bench_sampled_unit_costs(
                _modelref.reference_sampled_unit_costs, n_mc_costs, seed
            ),
            exact=False,  # 1-ULP SIMD-vs-libm pow; see repro.mc.soc_sip
        ),
        BenchSpec(
            name="market_concentration",
            suite="models",
            description=(
                f"{n_mc_shares} jittered share vectors + HHI for the "
                "datacenter-switch market"
            ),
            candidate=lambda: _bench_market_concentration(
                sampled_market_shares, hhi_batch, n_mc_shares, seed
            ),
            reference=lambda: _bench_market_concentration(
                _modelref.reference_sampled_market_shares,
                _modelref.reference_hhi,
                n_mc_shares,
                seed,
            ),
        ),
        BenchSpec(
            name="adoption_paths",
            suite="models",
            description=(
                f"{n_mc_q} x {n_mc_t} Bass cumulative-adoption grid "
                "(sampled q, p=0.03)"
            ),
            candidate=lambda: _bench_adoption_paths(
                bass_adoption_paths, n_mc_q, n_mc_t, 13 + seed
            ),
            reference=lambda: _bench_adoption_paths(
                _modelref.reference_adoption_paths, n_mc_q, n_mc_t, 13 + seed
            ),
        ),
        BenchSpec(
            name="survey_theme_stats",
            suite="models",
            description=(
                f"all-theme fraction + role cross-tab over a "
                f"{corpus_reps}x-replicated interview corpus"
            ),
            candidate=lambda: _bench_theme_statistics(
                theme_statistics, corpus_reps
            ),
            reference=lambda: _bench_theme_statistics(
                _modelref.reference_theme_statistics, corpus_reps
            ),
            target_speedup=None if quick else 5.0,
        ),
    ]


def run_suites(
    rounds: int = 3,
    quick: bool = False,
    seed: int = 0,
    suites: Optional[List[str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run the benches; returns ``{suite_name: suite_results}``.

    ``suites`` restricts the run to the named suite ids; ``None`` runs
    everything. Unknown suite ids raise :class:`ModelError` (so the CLI
    fails loudly instead of silently running nothing).
    """
    if rounds < 1:
        raise ModelError(f"rounds must be >= 1, got {rounds}")
    specs = build_specs(quick=quick, seed=seed)
    known = sorted({spec.suite for spec in specs})
    if suites is not None:
        unknown = sorted(set(suites) - set(known))
        if unknown:
            raise ModelError(
                f"unknown perf suite(s): {', '.join(unknown)}; "
                f"valid suites: {', '.join(known)}"
            )
        wanted = set(suites)
        specs = [spec for spec in specs if spec.suite in wanted]
    results: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        suite = results.setdefault(
            spec.suite,
            {"suite": spec.suite, "rounds": rounds, "quick": quick,
             "benches": {}},
        )
        suite["benches"][spec.name] = _run_spec(spec, rounds)
    return results


def write_results(
    suites: Dict[str, Dict[str, Any]], out_dir: Path
) -> List[Path]:
    """Write ``BENCH_<suite>.json`` files atomically; returns the paths.

    Routed through :func:`repro.core.atomicio.atomic_write_json` so an
    interrupted perf run cannot leave a truncated bench artifact for
    the baseline gate to trip over.
    """
    from repro.core.atomicio import atomic_write_json

    out_dir = Path(out_dir)
    paths = []
    for name, results in sorted(suites.items()):
        paths.append(atomic_write_json(out_dir / f"BENCH_{name}.json", results))
    return paths


def check_against_baseline(
    suites: Dict[str, Dict[str, Any]], baseline_dir: Path
) -> List[str]:
    """Regression check vs committed baselines; returns failure strings.

    A bench fails when its speedup drops more than
    ``REGRESSION_TOLERANCE`` below the baseline speedup, or below the
    baseline's pinned ``min_speedup`` floor.

    Parallel benches (``parallel_workers`` set) compare like with like:
    a run or baseline only counts as *parallel* when its recorded core
    count covers the workers it needs. When parallelism differs between
    baseline and current run (e.g. a 1-core dev box vs a 4-vCPU CI
    runner), the relative ratio is meaningless, so a parallel current
    run is held to the pinned ``min_speedup`` floor alone, and a serial
    current run is not ratio-gated at all (the checksum equivalence
    inside the bench still ran).
    """
    baseline_dir = Path(baseline_dir)
    failures: List[str] = []
    for name, results in sorted(suites.items()):
        path = baseline_dir / f"BENCH_{name}.json"
        if not path.exists():
            failures.append(f"{name}: no baseline at {path}")
            continue
        baseline = json.loads(path.read_text())
        for bench, entry in sorted(baseline.get("benches", {}).items()):
            current = results.get("benches", {}).get(bench)
            if current is None:
                failures.append(f"{bench}: missing from current run")
                continue
            min_speedup = entry.get("min_speedup")
            workers = entry.get("parallel_workers", 0)
            baseline_parallel = bool(
                workers and entry.get("cores", 0) >= workers
            )
            current_parallel = bool(
                workers and current.get("cores", 0) >= workers
            )
            if workers and baseline_parallel != current_parallel:
                if not current_parallel:
                    continue  # serial machine: ratio floor unenforceable
                floor = min_speedup
                if floor is None:
                    continue
            else:
                floor = entry["speedup"] * (1.0 - REGRESSION_TOLERANCE)
                if min_speedup is not None and (
                    not workers or current_parallel
                ):
                    floor = max(floor, min_speedup)
            if current["speedup"] < floor:
                failures.append(
                    f"{bench}: speedup {current['speedup']:.2f}x below "
                    f"floor {floor:.2f}x (baseline "
                    f"{entry['speedup']:.2f}x, tolerance "
                    f"{REGRESSION_TOLERANCE:.0%})"
                )
    return failures


def render_spec_listing(specs: Optional[List[BenchSpec]] = None) -> str:
    """The ``--list`` view: suites, bench ids, pinned targets/floors.

    Also printed alongside the unknown-suite error so a typo shows the
    valid ids and what each would have gated.
    """
    if specs is None:
        specs = build_specs()
    by_suite: Dict[str, List[BenchSpec]] = {}
    for spec in specs:
        by_suite.setdefault(spec.suite, []).append(spec)
    lines = ["perf suites and pinned benches:"]
    for suite in sorted(by_suite):
        lines.append(f"  {suite}")
        width = max(len(spec.name) for spec in by_suite[suite]) + 2
        for spec in by_suite[suite]:
            gates = []
            if spec.target_speedup is not None:
                floor = spec.target_speedup * (1.0 - REGRESSION_TOLERANCE)
                gates.append(
                    f"target {spec.target_speedup:.1f}x, "
                    f"floor {floor:.2f}x"
                )
            if spec.parallel_workers:
                gates.append(f"{spec.parallel_workers} workers")
            if not spec.exact:
                gates.append("checksum 1e-9 rel")
            suffix = f"[{'; '.join(gates)}]" if gates else ""
            lines.append(f"    {spec.name:<{width}}{suffix}".rstrip())
    return "\n".join(lines)


def _git_rev() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def default_history_path() -> Path:
    """``benchmarks/BENCH_history.jsonl`` next to the source checkout.

    Falls back to ``benchmarks/`` under the current directory when the
    package does not live in a source tree (installed wheel).
    """
    repo_root = Path(__file__).resolve().parents[2]
    benchmarks = repo_root / "benchmarks"
    if not benchmarks.is_dir():
        benchmarks = Path("benchmarks")
    return benchmarks / "BENCH_history.jsonl"


def append_history(
    suites: Dict[str, Dict[str, Any]], history_path: Path
) -> Path:
    """Append one timestamped speedup record per run (one JSON line).

    The history file is an append-only flight recorder: every
    ``python -m repro perf`` invocation logs when it ran, on what
    revision, and every bench's speedup ratio, so drift between the
    committed baselines is reconstructable after the fact.
    """
    from datetime import datetime, timezone

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_rev": _git_rev(),
        "quick": any(r.get("quick") for r in suites.values()),
        "rounds": {name: r["rounds"] for name, r in sorted(suites.items())},
        "speedups": {
            name: {
                bench: entry["speedup"]
                for bench, entry in sorted(results["benches"].items())
            }
            for name, results in sorted(suites.items())
        },
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return history_path


def render_results(suites: Dict[str, Dict[str, Any]]) -> str:
    """Human-readable summary table of all suites."""
    lines = []
    for name, results in sorted(suites.items()):
        lines.append(f"suite {name} (median of {results['rounds']} rounds"
                     f"{', quick' if results.get('quick') else ''})")
        width = max(len(b) for b in results["benches"]) + 2
        for bench, entry in results["benches"].items():
            floor = (f"  (target {entry['target_speedup']:.1f}x, "
                     f"floor {entry['min_speedup']:.2f}x)"
                     if "min_speedup" in entry else "")
            lines.append(
                f"  {bench:<{width}} reference {entry['reference_median_s']:>9.4f}s"
                f"  candidate {entry['candidate_median_s']:>9.4f}s"
                f"  speedup {entry['speedup']:>6.2f}x{floor}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI for ``python -m repro perf`` and ``benchmarks/perfsuite.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="pinned engine/flow-solver perf microbenches",
    )
    parser.add_argument("suites", nargs="*", metavar="SUITE",
                        help="suite ids to run (engine, models, network, "
                             "sharded); default: all suites")
    parser.add_argument("--list", action="store_true", dest="list_specs",
                        help="list suites, bench ids and pinned "
                             "targets/floors, then exit")
    parser.add_argument("--out-dir", default=".",
                        help="where to write BENCH_*.json (default: .)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per bench (default: 3)")
    parser.add_argument("--quick", action="store_true",
                        help="~10x smaller workloads (smoke/tests)")
    parser.add_argument("--check", metavar="BASELINE_DIR", default=None,
                        help="fail on >25%% regression vs baselines in DIR")
    parser.add_argument("--seed", type=int, default=0,
                        help="flow-workload seed offset (CLI convention "
                             "shared with `repro run`; default: 0)")
    parser.add_argument("--history-file", default=None, metavar="PATH",
                        help="append-only speedup log (default: "
                             "benchmarks/BENCH_history.jsonl; 'none' "
                             "disables)")
    args = parser.parse_args(argv)

    if args.list_specs:
        print(render_spec_listing())
        return 0

    try:
        suites = run_suites(
            rounds=args.rounds, quick=args.quick, seed=args.seed,
            suites=args.suites or None,
        )
    except ModelError as error:
        # Same helpful-failure pattern as `repro trace`: a misspelled
        # suite id must not exit 0 having silently run nothing -- and
        # the listing shows what the valid ids would have gated.
        print(f"error: {error}", file=sys.stderr)
        print(render_spec_listing(), file=sys.stderr)
        return 2
    print(render_results(suites))
    for path in write_results(suites, Path(args.out_dir)):
        print(f"wrote {path}")
    if args.history_file != "none":
        history = (
            Path(args.history_file) if args.history_file
            else default_history_path()
        )
        try:
            print(f"history appended to {append_history(suites, history)}")
        except OSError as error:  # pragma: no cover - read-only checkout
            print(f"warning: could not append history: {error}",
                  file=sys.stderr)
    if args.check is not None:
        failures = check_against_baseline(suites, Path(args.check))
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression check vs {args.check}: OK")
    from repro.service.schema import SCHEMA_VERSION

    print(json.dumps({
        "schema_version": SCHEMA_VERSION,
        "command": "perf",
        "suites": sorted(suites),
        "benches": sum(len(r["benches"]) for r in suites.values()),
        "quick": bool(args.quick),
        "rounds": args.rounds,
    }, sort_keys=True), flush=True)
    return 0

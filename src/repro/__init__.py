"""rethinkbig reproduction library.

Operationalizes the RETHINK big roadmap (DATE 2017): discrete-event and
analytical simulators for data-center networks and heterogeneous compute
nodes, a mini Big Data dataflow engine, economic (TCO/ROI/NRE) models, a
synthetic stakeholder-survey pipeline, and the roadmap/recommendation
engine that ties them together.

Public entry points live in the subpackages:

- :mod:`repro.engine` -- deterministic discrete-event simulation kernel.
- :mod:`repro.econ` -- TCO, ROI, NRE, silicon cost models.
- :mod:`repro.network` -- data-center fabric, SDN, NFV simulators.
- :mod:`repro.node` -- heterogeneous device and server models.
- :mod:`repro.cluster` -- converged and disaggregated clusters.
- :mod:`repro.frameworks` -- batch and streaming dataflow engines.
- :mod:`repro.scheduler` -- heterogeneous task scheduling.
- :mod:`repro.analytics` -- accelerated building blocks.
- :mod:`repro.workloads` -- data generators and the benchmark suite.
- :mod:`repro.survey` -- stakeholder interview corpus and analysis.
- :mod:`repro.core` -- technology catalog, adoption forecasts,
  recommendations and portfolio prioritization.
- :mod:`repro.ecosystem` -- actor/initiative graph and market analysis.
- :mod:`repro.reporting` -- tables and the experiment registry.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""rethinkbig reproduction library.

Operationalizes the RETHINK big roadmap (DATE 2017): discrete-event and
analytical simulators for data-center networks and heterogeneous compute
nodes, a mini Big Data dataflow engine, economic (TCO/ROI/NRE) models, a
synthetic stakeholder-survey pipeline, and the roadmap/recommendation
engine that ties them together.

The headline entry points are re-exported here, so
``import repro; repro.run_experiment("E2")`` works without spelunking
submodules:

- :func:`run_experiment` / :func:`run_grid` -- execute registered
  experiments (one inline, or a parallel cached sweep) to
  :class:`RunResult` records; from :mod:`repro.runner`.
- :class:`JobSpec` / :class:`SubmitRequest` / :class:`JobResult` and
  :func:`execute_job` -- the versioned job contract and the one
  execution path behind library, CLI and service submissions; from
  :mod:`repro.service` and :mod:`repro.runner`.
- :class:`ServiceClient` -- HTTP/WebSocket client for a running
  ``python -m repro serve`` instance; from :mod:`repro.client`.
- :data:`EXPERIMENTS` / :func:`get_experiment` -- the experiment
  registry; from :mod:`repro.reporting`.
- :func:`run_trace` -- one instrumented experiment run;
  from :mod:`repro.reporting`.
- :class:`Simulator` / :class:`Observability` -- the deterministic DES
  kernel and its metrics/span substrate; from :mod:`repro.engine`.
- :func:`partition_fabric` / :class:`ShardedSimulation` and
  :func:`simulate_fabric` / :func:`simulate_fabric_sharded` -- the
  sharded conservative-time engine and its reference fabric workload;
  from :mod:`repro.engine` and :mod:`repro.workloads`.
- :class:`FaultInjector` / :class:`FaultSpec` and :func:`retry` /
  :func:`hedge` / :func:`with_deadline` -- runtime fault injection and
  the tail-tolerance primitives; from :mod:`repro.engine`.
- :func:`build_roadmap` -- the full roadmap pipeline;
  from :mod:`repro.core`.
- :func:`generate_corpus` -- the calibrated 89-interview survey corpus;
  from :mod:`repro.survey`.

The full surface lives in the subpackages:

- :mod:`repro.engine` -- deterministic discrete-event simulation kernel.
- :mod:`repro.econ` -- TCO, ROI, NRE, silicon cost models.
- :mod:`repro.network` -- data-center fabric, SDN, NFV simulators.
- :mod:`repro.node` -- heterogeneous device and server models.
- :mod:`repro.cluster` -- converged and disaggregated clusters.
- :mod:`repro.frameworks` -- batch and streaming dataflow engines.
- :mod:`repro.scheduler` -- heterogeneous task scheduling.
- :mod:`repro.analytics` -- accelerated building blocks.
- :mod:`repro.workloads` -- data generators and the benchmark suite.
- :mod:`repro.survey` -- stakeholder interview corpus and analysis.
- :mod:`repro.core` -- technology catalog, adoption forecasts,
  recommendations and portfolio prioritization.
- :mod:`repro.mc` -- vectorized Monte-Carlo batch kernels for the
  analytical models (pinned against :mod:`repro._modelref`).
- :mod:`repro.ecosystem` -- actor/initiative graph and market analysis.
- :mod:`repro.reporting` -- tables, the experiment registry, trace runs.
- :mod:`repro.runner` -- the parallel experiment runner with caching.
- :mod:`repro.service` -- the async job service and its wire schema.
"""

__version__ = "2.0.0"

from repro import mc
from repro.client import ServiceClient
from repro.core import build_roadmap
from repro.engine import (
    FaultInjector,
    FaultSpec,
    Observability,
    RandomStream,
    RetryPolicy,
    ShardedSimulation,
    Simulator,
    hedge,
    partition_fabric,
    retry,
    with_deadline,
)
from repro.reporting import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    render_table,
    run_trace,
    traceable_experiments,
)
from repro.runner import (
    GridResult,
    RunResult,
    execute_job,
    run_experiment,
    run_grid,
    runnable_experiments,
)
from repro.service import JobResult, JobSpec, SubmitRequest
from repro.survey import generate_corpus
from repro.workloads import simulate_fabric, simulate_fabric_sharded

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "FaultInjector",
    "FaultSpec",
    "GridResult",
    "JobResult",
    "JobSpec",
    "Observability",
    "RandomStream",
    "RetryPolicy",
    "RunResult",
    "ServiceClient",
    "ShardedSimulation",
    "Simulator",
    "SubmitRequest",
    "__version__",
    "build_roadmap",
    "execute_job",
    "generate_corpus",
    "get_experiment",
    "hedge",
    "mc",
    "partition_fabric",
    "render_table",
    "retry",
    "run_experiment",
    "run_grid",
    "run_trace",
    "runnable_experiments",
    "simulate_fabric",
    "simulate_fabric_sharded",
    "traceable_experiments",
    "with_deadline",
]

"""The asyncio experiment service: admission, coalescing, streaming.

:class:`ExperimentService` owns a single-threaded asyncio event loop
that accepts HTTP requests, plus one worker thread pool on which
:func:`repro.runner.execute_job` grids actually run (the grid itself
fans out over fork pool workers, so the loop thread never blocks on
experiment compute). The moving parts:

- **Admission control** -- a bounded queue (``max_pending`` queued
  jobs, excess submissions are shed with a ``429 shed`` envelope), a
  per-client in-flight cap (``per_client``, exceeded submissions get
  ``429 client-cap``), and an execution semaphore (``max_active``
  concurrent grids).
- **Request coalescing** -- jobs are keyed by the content-addressed
  :meth:`~repro.service.schema.JobSpec.job_id`; a submission whose key
  matches a queued or running job attaches to it instead of running
  again, and the job records how many submissions it absorbed.
- **Result caching** -- grids execute with the runner's on-disk SHA-256
  result cache in front, so a repeat submission of a completed job
  re-resolves entirely from cache: ``recomputed == 0`` and zero pool
  spawns.
- **Event streaming** -- every job keeps an ordered event log (status
  transitions, runner heartbeats, execution spans); subscribers get the
  backlog plus live events over a WebSocket, and a subscriber
  disconnecting never touches the job or its pool workers.
- **Crash recovery** -- with a ``cache_dir`` configured, every accepted
  job is appended to a write-ahead service journal
  (``<cache_dir>/service-journal.jsonl``, fsync'd before the 202 goes
  out) and journaled again on completion. A restarted service replays
  the journal and re-admits every job that was accepted but never
  finished, in the wire-visible ``recovered`` state; shards those jobs
  completed before the crash resolve from the result cache and the
  grid journal, so recovery re-spawns zero pool workers for finished
  work. Recovered jobs count into ``service.jobs_recovered``.

Endpoints (all responses are ``schema_version``-stamped JSON):

========  ==========================  =====================================
method    path                        purpose
========  ==========================  =====================================
GET       ``/v1/meta``                service + schema version, experiments
GET       ``/v1/healthz``             liveness and accepting flag
GET       ``/v1/metrics``             metrics registry snapshot
GET       ``/v1/jobs``                all job envelopes (no documents)
GET       ``/v1/jobs/<id>``           one job envelope (+ result when done)
GET       ``/v1/jobs/<id>/events``    event backlog, or WebSocket upgrade
POST      ``/v1/jobs``                submit a grid (202 queued / 429 / 503)
POST      ``/v1/shutdown``            drain in-flight jobs, then stop
========  ==========================  =====================================
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.observability import Registry
from repro.errors import ReproError, ServiceError
from repro.runner.journal import JournalWriter, read_journal
from repro.service import wire
from repro.service.schema import (
    SCHEMA_VERSION,
    JobResult,
    SubmitRequest,
    decode_submit_request,
    error_envelope,
    job_envelope,
)


class Job:
    """One submitted grid: lifecycle state, event log, subscribers."""

    def __init__(self, job_id: str, request: SubmitRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.state = "queued"
        self.coalesced = 0
        self.result: Optional[JobResult] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.subscribers: List[asyncio.Queue] = []
        self.done_event = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.started = time.perf_counter()

    @property
    def active(self) -> bool:
        """Whether the job is still in flight (coalescable).

        ``recovered`` counts: a re-admitted job is awaiting execution
        exactly like a queued one, so repeat submissions must attach to
        it rather than duplicate the run.
        """
        return self.state in ("queued", "recovered", "running")

    def publish(self, event: Dict[str, Any]) -> None:
        """Append ``event`` to the log and fan it out to subscribers.

        Must be called on the event-loop thread; worker-thread callers
        marshal through ``loop.call_soon_threadsafe``.
        """
        event = {
            "job_id": self.job_id,
            "seq": len(self.events),
            **event,
        }
        self.events.append(event)
        for queue in self.subscribers:
            queue.put_nowait(event)

    def finish_streams(self) -> None:
        """Push the end-of-stream sentinel to every subscriber."""
        for queue in self.subscribers:
            queue.put_nowait(None)

    def envelope(self, with_result: bool = False) -> Dict[str, Any]:
        """The job's status envelope, optionally embedding the result."""
        result = self.result if with_result and self.result else None
        return job_envelope(
            self.job_id,
            self.state,
            coalesced=self.coalesced,
            stats=self.result.stats if self.result else None,
            result=result,
            error=self.error,
        )


class ExperimentService:
    """The service: one event loop, one grid-executor pool, a job table.

    ``jobs`` is the fork-pool width each grid executes with;
    ``max_active`` bounds how many grids execute concurrently;
    ``max_pending`` bounds the queued backlog; ``per_client`` bounds one
    client's queued+running jobs. ``cache_dir`` enables the on-disk
    result cache (strongly recommended: it is what makes repeat
    submissions free). All metrics land in ``registry`` under
    ``service.*`` and ``runner.*`` names.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        max_pending: int = 16,
        max_active: int = 1,
        per_client: int = 4,
        registry: Optional[Registry] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if per_client < 1:
            raise ValueError(f"per_client must be >= 1, got {per_client}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.max_pending = max_pending
        self.max_active = max_active
        self.per_client = per_client
        self.registry = registry if registry is not None else Registry()
        self.accepting = True
        self.job_table: Dict[str, Job] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._active_sem: Optional[asyncio.Semaphore] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopping: Optional[asyncio.Event] = None
        self._journal: Optional[JournalWriter] = None
        self._killed = False

    def journal_path(self) -> Optional[Path]:
        """Where the service's write-ahead job journal lives (or None)."""
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / "service-journal.jsonl"

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        With a ``cache_dir`` configured, first replays the service
        journal and re-admits every job that was accepted but never
        reached a terminal state (:meth:`recover_jobs`), so work
        survives a service crash or kill.
        """
        self._loop = asyncio.get_running_loop()
        self._active_sem = asyncio.Semaphore(self.max_active)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_active,
            thread_name_prefix="repro-service-grid",
        )
        self._stopping = asyncio.Event()
        target = self.journal_path()
        if target is not None:
            # Append mode always: the journal is the service's history
            # across restarts, and recovery depends on the previous
            # incarnation's records staying in place.
            self._journal = JournalWriter(target, mode="a")
            self.recover_jobs()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return sockname[0], sockname[1]

    def recover_jobs(self) -> int:
        """Re-admit journaled jobs that never finished; returns the count.

        Replays ``job-accepted`` / ``job-done`` records (last state
        wins per job id): a job accepted without a matching done record
        was in flight when the previous incarnation died, so it is
        re-created in the ``recovered`` state -- bypassing admission
        caps, which it already passed once -- and handed straight back
        to the executor. Shards it completed before the crash resolve
        from the result cache, so recovery never re-spawns pool workers
        for finished work. Undecodable requests are skipped (counted as
        ``service.recover_skipped``), and a corrupt journal interior
        surfaces as :class:`~repro.errors.JournalError`.
        """
        target = self.journal_path()
        if target is None:
            return 0
        replay = read_journal(target)
        pending: Dict[str, Dict[str, Any]] = {}
        for record in replay.records:
            job_id = str(record.get("job_id", ""))
            if record.get("kind") == "job-accepted":
                pending[job_id] = record
            elif record.get("kind") == "job-done":
                pending.pop(job_id, None)
        recovered = 0
        for job_id, record in pending.items():
            try:
                submit = SubmitRequest.from_dict(record.get("request"))
            except (ServiceError, ReproError, TypeError):
                self.registry.counter("service.recover_skipped").inc()
                continue
            job = Job(job_id, submit)
            job.state = "recovered"
            self.job_table[job_id] = job
            job.publish({
                "type": "status",
                "state": "recovered",
                "note": "re-admitted from the service journal",
            })
            assert self._loop is not None
            job.task = self._loop.create_task(self._run_job(job))
            self.registry.counter("service.jobs_recovered").inc()
            recovered += 1
        return recovered

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`; drain jobs before returning.

        After :meth:`request_kill` the drain is skipped -- the hard-stop
        path used to simulate a service crash in tests.
        """
        assert self._stopping is not None
        await self._stopping.wait()
        if not self._killed:
            await self.drain()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        assert self._executor is not None
        self._executor.shutdown(wait=not self._killed, cancel_futures=self._killed)
        if self._journal is not None:
            self._journal.close()

    def request_stop(self) -> None:
        """Stop accepting new jobs and begin graceful shutdown."""
        self.accepting = False
        if self._stopping is not None:
            self._stopping.set()

    def request_kill(self) -> None:
        """Hard-stop: abandon in-flight jobs without draining.

        The journal keeps their ``job-accepted`` records un-terminated,
        which is exactly what :meth:`recover_jobs` re-admits on the next
        start -- the in-process stand-in for SIGKILLing ``repro serve``.
        """
        self._killed = True
        self.request_stop()

    async def drain(self) -> None:
        """Wait for every in-flight job task to reach a terminal state."""
        tasks = [
            job.task for job in self.job_table.values()
            if job.task is not None and not job.task.done()
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await wire.read_http_request(reader)
            except ServiceError as exc:
                writer.write(self._error_response(exc))
                await writer.drain()
                return
            if request is None:
                return
            if (
                request.wants_websocket()
                and request.method == "GET"
                and request.path.startswith("/v1/jobs/")
                and request.path.endswith("/events")
            ):
                await self._serve_websocket(request, reader, writer)
                return
            writer.write(self._route(request))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _json_response(self, status: int, payload: Dict[str, Any]) -> bytes:
        return wire.http_response(
            status, json.dumps(payload, sort_keys=True) + "\n"
        )

    def _error_response(self, exc: ServiceError) -> bytes:
        self.registry.counter("service.errors").inc()
        return self._json_response(
            exc.status or 500, error_envelope(exc.code, str(exc))
        )

    def _route(self, request: wire.HttpRequest) -> bytes:
        try:
            return self._dispatch(request)
        except ServiceError as exc:
            return self._error_response(exc)

    def _dispatch(self, request: wire.HttpRequest) -> bytes:
        method, path = request.method, request.path.rstrip("/") or "/"
        if method == "GET" and path == "/v1/meta":
            return self._json_response(200, self._meta())
        if method == "GET" and path == "/v1/healthz":
            return self._json_response(200, {
                "schema_version": SCHEMA_VERSION,
                "status": "ok",
                "accepting": self.accepting,
            })
        if method == "GET" and path == "/v1/metrics":
            return self._json_response(200, {
                "schema_version": SCHEMA_VERSION,
                "metrics": self.registry.snapshot(),
            })
        if method == "GET" and path == "/v1/jobs":
            return self._json_response(200, {
                "schema_version": SCHEMA_VERSION,
                "jobs": [
                    self.job_table[job_id].envelope()
                    for job_id in sorted(self.job_table)
                ],
            })
        if method == "GET" and path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/events"):
                job = self._job_or_404(tail[: -len("/events")])
                return self._json_response(200, job_envelope(
                    job.job_id, job.state,
                    coalesced=job.coalesced,
                    events=job.events,
                ))
            job = self._job_or_404(tail)
            return self._json_response(200, job.envelope(with_result=True))
        if method == "POST" and path == "/v1/jobs":
            return self._submit(request)
        if method == "POST" and path == "/v1/shutdown":
            self.registry.counter("service.shutdowns").inc()
            response = self._json_response(200, {
                "schema_version": SCHEMA_VERSION,
                "status": "draining",
            })
            self.request_stop()
            return response
        raise ServiceError(
            f"no route for {method} {path}", code="not-found", status=404
        )

    def _meta(self) -> Dict[str, Any]:
        import repro
        from repro.runner.api import runnable_experiments

        return {
            "schema_version": SCHEMA_VERSION,
            "service": "repro.service",
            "version": repro.__version__,
            "experiments": runnable_experiments(),
            "limits": {
                "max_pending": self.max_pending,
                "max_active": self.max_active,
                "per_client": self.per_client,
                "jobs": self.jobs,
            },
        }

    def _job_or_404(self, job_id: str) -> Job:
        job = self.job_table.get(job_id)
        if job is None:
            raise ServiceError(
                f"no such job: {job_id!r}", code="not-found", status=404
            )
        return job

    # -- submission --------------------------------------------------------

    def _submit(self, request: wire.HttpRequest) -> bytes:
        if not self.accepting:
            raise ServiceError(
                "service is shutting down", code="shutting-down", status=503
            )
        submit = decode_submit_request(request.body)
        try:
            job_id = submit.job.job_id()
        except ReproError as exc:
            raise ServiceError(str(exc), code="bad-request", status=400)
        self.registry.counter("service.submitted").inc()

        existing = self.job_table.get(job_id)
        if existing is not None and existing.active:
            existing.coalesced += 1
            self.registry.counter("service.coalesced").inc()
            existing.publish({
                "type": "status",
                "state": existing.state,
                "note": f"coalesced submission from {submit.client_id}",
            })
            return self._json_response(202, existing.envelope())

        queued = sum(1 for j in self.job_table.values() if j.state == "queued")
        if queued >= self.max_pending:
            self.registry.counter("service.shed").inc()
            raise ServiceError(
                f"admission queue full ({queued} queued >= "
                f"{self.max_pending})",
                code="shed", status=429,
            )
        mine = sum(
            1 for j in self.job_table.values()
            if j.active and j.request.client_id == submit.client_id
        )
        if mine >= self.per_client:
            self.registry.counter("service.shed").inc()
            raise ServiceError(
                f"client {submit.client_id!r} has {mine} jobs in flight "
                f">= per-client cap {self.per_client}",
                code="client-cap", status=429,
            )

        job = Job(job_id, submit)
        self.job_table[job_id] = job
        if self._journal is not None:
            # Write-ahead: the acceptance is durable before the 202 is
            # even built, so a crash at any later instant leaves a
            # journal record recovery can re-admit.
            self._journal.append(
                "job-accepted", job_id=job_id, request=submit.to_dict()
            )
        job.publish({"type": "status", "state": "queued"})
        assert self._loop is not None
        job.task = self._loop.create_task(self._run_job(job))
        return self._json_response(202, job.envelope())

    async def _run_job(self, job: Job) -> None:
        assert self._active_sem is not None and self._loop is not None
        loop = self._loop

        def heartbeat(message: str) -> None:
            # Called on the grid-executor thread; marshal to the loop.
            # A killed loop must not take the grid down with it -- the
            # run's durable state lives in the cache and journals.
            try:
                loop.call_soon_threadsafe(
                    job.publish, {"type": "heartbeat", "message": message}
                )
            except RuntimeError:  # loop closed mid-run (hard stop)
                pass

        async with self._active_sem:
            job.state = "running"
            run_started = time.perf_counter() - job.started
            job.publish({"type": "status", "state": "running"})
            try:
                from repro.runner.api import execute_job

                result = await loop.run_in_executor(
                    self._executor,
                    functools.partial(
                        execute_job,
                        job.request,
                        jobs=self.jobs,
                        cache_dir=self.cache_dir,
                        registry=self.registry,
                        progress=heartbeat,
                    ),
                )
            except Exception as exc:  # any escape marks the job failed
                job.state = "failed"
                job.error = str(exc) or exc.__class__.__name__
                self.registry.counter("service.failed").inc()
            else:
                job.result = result
                job.state = "done" if result.ok else "failed"
                self.registry.counter(
                    "service.completed" if result.ok else "service.failed"
                ).inc()
            if self._journal is not None:
                self._journal.append(
                    "job-done", job_id=job.job_id, state=job.state
                )
            run_ended = time.perf_counter() - job.started
            job.publish({
                "type": "span",
                "name": "execute",
                "start_s": round(run_started, 6),
                "end_s": round(run_ended, 6),
            })
            job.publish({
                "type": "status",
                "state": job.state,
                "error": job.error,
            })
            job.finish_streams()
            job.done_event.set()

    # -- websocket event streaming -----------------------------------------

    async def _serve_websocket(
        self,
        request: wire.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        tail = request.path.rstrip("/")[len("/v1/jobs/"):]
        job_id = tail[: -len("/events")]
        job = self.job_table.get(job_id)
        key = request.headers.get("sec-websocket-key")
        if job is None or not key:
            code = "not-found" if key else "bad-request"
            status = 404 if key else 400
            writer.write(self._json_response(
                status, error_envelope(code, f"cannot stream {job_id!r}")
            ))
            await writer.drain()
            return
        writer.write(wire.websocket_handshake_response(key))
        await writer.drain()
        self.registry.counter("service.ws_subscribers").inc()

        queue: asyncio.Queue = asyncio.Queue()
        for event in job.events:  # backlog first, then live
            queue.put_nowait(event)
        if not job.active:
            queue.put_nowait(None)
        else:
            job.subscribers.append(queue)
        try:
            sender = asyncio.ensure_future(self._ws_send(queue, writer))
            receiver = asyncio.ensure_future(self._ws_receive(reader, writer))
            done, pending = await asyncio.wait(
                {sender, receiver}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
        finally:
            if queue in job.subscribers:
                job.subscribers.remove(queue)

    async def _ws_send(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            event = await queue.get()
            if event is None:
                writer.write(wire.encode_frame(b"", opcode=wire.OP_CLOSE))
                await writer.drain()
                return
            writer.write(wire.encode_frame(
                json.dumps(event, sort_keys=True)
            ))
            await writer.drain()

    async def _ws_receive(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            frame = await wire.read_frame(reader)
            if frame is None or frame[0] == wire.OP_CLOSE:
                return
            if frame[0] == wire.OP_PING:
                writer.write(wire.encode_frame(
                    frame[1], opcode=wire.OP_PONG
                ))
                await writer.drain()


class ServiceHandle:
    """A running service on a background thread, for tests and the CLI.

    The handle owns the thread: :meth:`stop` requests a graceful drain,
    waits for the loop to finish, and joins the thread.
    """

    def __init__(self, service: ExperimentService, thread: threading.Thread,
                 host: str, port: int) -> None:
        self.service = service
        self.thread = thread
        self.host = host
        self.port = port

    @property
    def base_url(self) -> str:
        """``http://host:port`` for a :class:`repro.client.ServiceClient`."""
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain in-flight jobs, stop the loop, join the thread."""
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_stop)
        self.thread.join(timeout=timeout_s)
        if self.thread.is_alive():
            raise ServiceError(
                f"service thread did not stop within {timeout_s}s",
                code="connection",
            )

    def kill(self, timeout_s: float = 30.0) -> None:
        """Hard-stop without draining, abandoning in-flight jobs.

        The in-process equivalent of SIGKILLing ``repro serve``: jobs
        the journal recorded as accepted but not done stay that way, so
        the next service started on the same ``cache_dir`` re-admits
        them. For tests of the recovery path.
        """
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.request_kill)
        self.thread.join(timeout=timeout_s)
        if self.thread.is_alive():
            raise ServiceError(
                f"service thread did not die within {timeout_s}s",
                code="connection",
            )


def serve_in_thread(**kwargs: Any) -> ServiceHandle:
    """Start an :class:`ExperimentService` on a daemon thread.

    Accepts the :class:`ExperimentService` constructor arguments;
    returns once the socket is bound, so the handle's ``base_url`` is
    immediately connectable.
    """
    service = ExperimentService(**kwargs)
    bound: Dict[str, Any] = {}
    ready = threading.Event()

    def main() -> None:
        async def body() -> None:
            try:
                bound["address"] = await service.start()
            except OSError as exc:
                bound["error"] = exc
                ready.set()
                return
            ready.set()
            await service.serve_until_stopped()

        asyncio.run(body())

    thread = threading.Thread(
        target=main, name="repro-service", daemon=True
    )
    thread.start()
    ready.wait(timeout=30.0)
    if "error" in bound:
        raise ServiceError(
            f"service failed to bind: {bound['error']}", code="connection"
        )
    if "address" not in bound:
        raise ServiceError("service failed to start", code="connection")
    host, port = bound["address"]
    return ServiceHandle(service, thread, host, port)

"""Minimal HTTP/1.1 and WebSocket (RFC 6455) framing, framework-free.

The experiment service deliberately runs on the stdlib alone, so this
module implements just the wire subset the service needs:

- request parsing and response formatting for plain HTTP/1.1 with
  ``Content-Length`` bodies (the service always answers
  ``Connection: close``, so chunked encoding and keep-alive never
  arise);
- the WebSocket opening handshake (``Sec-WebSocket-Accept`` key
  derivation) and single-frame ("FIN"-only) framing for text, close,
  ping and pong opcodes -- the event stream sends every JSON event as
  one unfragmented text frame, which every conforming peer accepts.

Both ends of the connection use this module: the asyncio server reads
with the ``async`` helpers, the blocking :class:`repro.client`
WebSocket reader uses the ``*_blocking`` variants over a socket file.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from asyncio import IncompleteReadError, LimitOverrunError, StreamReader
from typing import Any, BinaryIO, Dict, Optional, Tuple

from repro.errors import ServiceError

#: The fixed GUID every WebSocket handshake concatenates (RFC 6455 s4.2.2).
WEBSOCKET_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes the service speaks.
OP_TEXT, OP_CLOSE, OP_PING, OP_PONG = 0x1, 0x8, 0x9, 0xA

#: Largest request body / frame payload accepted (grids are small).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the status codes the service emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpRequest:
    """One parsed HTTP/1.1 request: method, path, lowercased headers, body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def wants_websocket(self) -> bool:
        """Whether the request asks to upgrade to a WebSocket."""
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )


async def read_http_request(reader: StreamReader) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; None when the peer hung up.

    Raises :class:`ServiceError` (``bad-request``/``payload-too-large``)
    for malformed or oversized requests.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, path, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ServiceError(
            "malformed request line", code="bad-request", status=400
        )
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
            code="payload-too-large", status=413,
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except IncompleteReadError:
            return None
    return HttpRequest(method.upper(), path, headers, body)


def http_response(
    status: int,
    body: "bytes | str" = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Format a complete ``Connection: close`` HTTP/1.1 response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def websocket_accept_key(client_key: str) -> str:
    """Derive ``Sec-WebSocket-Accept`` from the client's key (RFC 6455)."""
    digest = hashlib.sha1(
        (client_key + WEBSOCKET_GUID).encode("latin-1")
    ).digest()
    return base64.b64encode(digest).decode("latin-1")


def websocket_handshake_response(client_key: str) -> bytes:
    """The ``101 Switching Protocols`` response completing the upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_frame(
    payload: "bytes | str", opcode: int = OP_TEXT, mask: bool = False
) -> bytes:
    """One FIN-flagged WebSocket frame.

    Servers send unmasked (``mask=False``); clients must mask
    (``mask=True``). Masking uses a fixed-zero masking key, which the
    RFC permits the receiver to accept (the key's unpredictability only
    matters for proxies, irrelevant on loopback) and keeps the wire
    bytes deterministic for tests.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        head += b"\x00\x00\x00\x00"  # zero masking key: XOR is identity
    return bytes(head) + payload


def _decode_frame_parts(
    first_two: bytes, read_exact: Any
) -> Tuple[int, bytes]:
    """Shared tail of frame decoding once the 2-byte header is in hand."""
    opcode = first_two[0] & 0x0F
    masked = bool(first_two[1] & 0x80)
    length = first_two[1] & 0x7F
    if length == 126:
        length = struct.unpack(">H", read_exact(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", read_exact(8))[0]
    if length > MAX_BODY_BYTES:
        raise ServiceError(
            f"frame of {length} bytes exceeds {MAX_BODY_BYTES}",
            code="payload-too-large", status=413,
        )
    mask_key = read_exact(4) if masked else b""
    payload = read_exact(length) if length else b""
    if masked and any(mask_key):
        payload = bytes(
            b ^ mask_key[i % 4] for i, b in enumerate(payload)
        )
    return opcode, payload


async def read_frame(reader: StreamReader) -> Optional[Tuple[int, bytes]]:
    """Read one frame; ``(opcode, unmasked payload)`` or None on EOF."""
    opcode = 0
    masked = False
    try:
        first_two = await reader.readexactly(2)
        opcode = first_two[0] & 0x0F
        masked = bool(first_two[1] & 0x80)
        length = first_two[1] & 0x7F
        if length == 126:
            length = struct.unpack(">H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack(">Q", await reader.readexactly(8))[0]
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"frame of {length} bytes exceeds {MAX_BODY_BYTES}",
                code="payload-too-large", status=413,
            )
        mask_key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (IncompleteReadError, ConnectionError):
        return None
    if masked and any(mask_key):
        payload = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def read_frame_blocking(stream: BinaryIO) -> Optional[Tuple[int, bytes]]:
    """Blocking :func:`read_frame` over a socket file object."""
    try:
        first_two = _read_exact_blocking(stream, 2)
        if first_two is None:
            return None
        return _decode_frame_parts(
            first_two, lambda n: _must_read_blocking(stream, n)
        )
    except EOFError:
        return None


def _read_exact_blocking(stream: BinaryIO, n: int) -> Optional[bytes]:
    data = b""
    while len(data) < n:
        chunk = stream.read(n - len(data))
        if not chunk:
            return None
        data += chunk
    return data


def _must_read_blocking(stream: BinaryIO, n: int) -> bytes:
    data = _read_exact_blocking(stream, n)
    if data is None:
        raise EOFError("connection closed mid-frame")
    return data

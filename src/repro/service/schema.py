"""The versioned service API contract: typed requests and responses.

Every message that crosses the service boundary is one of the
dataclasses here, serialized as stable JSON (sorted keys) and stamped
with :data:`SCHEMA_VERSION`. The compatibility rule is semver-style on
``MAJOR.MINOR``:

- a peer speaking a different **major** version is rejected with an
  ``unsupported-version`` error envelope;
- **minor** skew is accepted -- minor bumps may only *add* optional
  fields, and decoders ignore unknown keys.

:class:`JobSpec` is the content-addressed unit of work: an
``(experiments x seeds x config-overrides)`` grid plus its execution
policy (quick sizes, per-run timeout, retry budget). Its
:meth:`JobSpec.job_id` is the SHA-256 of the canonicalized spec, which
is what the server coalesces on: two in-flight submissions with equal
job ids share one run. :class:`SubmitRequest` wraps a spec with client
identity and cache policy; :class:`JobResult` carries the canonical
merged results document (byte-identical to ``repro run``'s
``results.json``) plus execution stats.

Everything here is dependency-free on purpose (stdlib + lazy registry
lookups), so the contract can be imported by clients without paying for
the engine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError

#: The wire-format version: ``MAJOR.MINOR``. Peers must match MAJOR.
#: 1.1 added the ``recovered`` job state (crash-recovery re-admission).
SCHEMA_VERSION = "1.1"

#: Terminal and in-flight job states the service reports. ``recovered``
#: is the in-flight state of a job re-admitted from the service journal
#: after a restart, before its grid starts running again.
JOB_STATES = ("queued", "recovered", "running", "done", "failed")


def _require(condition: bool, message: str) -> None:
    """Raise a ``bad-request`` :class:`ServiceError` unless ``condition``."""
    if not condition:
        raise ServiceError(message, code="bad-request", status=400)


def check_schema_version(version: Any) -> str:
    """Validate a peer's ``schema_version`` against :data:`SCHEMA_VERSION`.

    Returns the version string when the major components match; raises
    an ``unsupported-version`` :class:`ServiceError` otherwise.
    """
    _require(isinstance(version, str) and version, "schema_version missing")
    major = version.split(".", 1)[0]
    ours = SCHEMA_VERSION.split(".", 1)[0]
    if major != ours:
        raise ServiceError(
            f"schema_version {version!r} is incompatible with "
            f"{SCHEMA_VERSION!r} (major must match)",
            code="unsupported-version",
            status=400,
        )
    return version


def stable_json(payload: Any) -> str:
    """The canonical wire encoding: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class JobSpec:
    """One content-addressed experiment grid: what to run, how hard to try.

    ``experiments`` are registry ids (``"all"`` is allowed and expands
    during canonicalization); ``seeds`` is the explicit grid-seed list;
    ``overrides`` is a tuple of config dicts, each crossed with every
    experiment and seed. ``quick`` layers the registered smoke-test
    problem sizes under the overrides. ``timeout_s`` / ``retries`` are
    the per-shard execution policy.
    """

    experiments: Tuple[str, ...]
    seeds: Tuple[int, ...] = (0,)
    overrides: Tuple[Dict[str, Any], ...] = ({},)
    quick: bool = False
    timeout_s: Optional[float] = 600.0
    retries: int = 1

    def __post_init__(self) -> None:
        _require(bool(self.experiments), "experiments must be non-empty")
        _require(
            all(isinstance(e, str) and e for e in self.experiments),
            "experiments must be non-empty strings",
        )
        _require(bool(self.seeds), "seeds must be non-empty")
        _require(
            all(isinstance(s, int) and not isinstance(s, bool)
                for s in self.seeds),
            "seeds must be integers",
        )
        _require(bool(self.overrides), "overrides must be non-empty")
        _require(
            all(isinstance(o, dict) for o in self.overrides),
            "overrides must be config dicts",
        )
        _require(self.retries >= 0, "retries must be >= 0")
        _require(
            self.timeout_s is None or self.timeout_s > 0,
            "timeout_s must be positive or null",
        )

    def canonical(self) -> "JobSpec":
        """The registry-resolved form job identity is computed over.

        Expands ``"all"``, upper-cases and de-duplicates experiment ids
        (registry order), so ``e2`` and ``E2`` coalesce to the same job.
        Raises :class:`~repro.errors.RegistryError` for unknown ids.
        """
        from repro.runner.api import resolve_experiments

        resolved = tuple(
            e.experiment_id for e in resolve_experiments(list(self.experiments))
        )
        if resolved == self.experiments:
            return self
        return JobSpec(
            experiments=resolved,
            seeds=self.seeds,
            overrides=self.overrides,
            quick=self.quick,
            timeout_s=self.timeout_s,
            retries=self.retries,
        )

    def job_id(self) -> str:
        """SHA-256 hex digest of the canonicalized spec (coalescing key)."""
        return hashlib.sha256(
            stable_json(self.canonical().to_dict()).encode("utf-8")
        ).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict wire form."""
        return {
            "experiments": list(self.experiments),
            "seeds": list(self.seeds),
            "overrides": [dict(o) for o in self.overrides],
            "quick": self.quick,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "JobSpec":
        """Decode and validate a wire-form spec (unknown keys ignored)."""
        _require(isinstance(record, dict), "job spec must be an object")
        experiments = record.get("experiments")
        _require(isinstance(experiments, (list, tuple)),
                 "experiments must be a list")
        seeds = record.get("seeds", [0])
        _require(isinstance(seeds, (list, tuple)), "seeds must be a list")
        overrides = record.get("overrides", [{}])
        _require(isinstance(overrides, (list, tuple)),
                 "overrides must be a list")
        timeout_s = record.get("timeout_s", 600.0)
        return cls(
            experiments=tuple(experiments),
            seeds=tuple(seeds),
            overrides=tuple(dict(o) for o in overrides) or ({},),
            quick=bool(record.get("quick", False)),
            timeout_s=None if timeout_s is None else float(timeout_s),
            retries=int(record.get("retries", 1)),
        )


@dataclass(frozen=True)
class SubmitRequest:
    """A job submission: the spec plus client identity and cache policy.

    ``client_id`` feeds the per-client admission cap; ``use_cache``
    false forces recompute (and stores nothing). ``schema_version`` is
    checked on decode (major must match).
    """

    job: JobSpec
    client_id: str = "anonymous"
    use_cache: bool = True
    schema_version: str = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict wire form."""
        return {
            "schema_version": self.schema_version,
            "client_id": self.client_id,
            "use_cache": self.use_cache,
            "job": self.job.to_dict(),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "SubmitRequest":
        """Decode and validate a wire-form request."""
        _require(isinstance(record, dict), "submit request must be an object")
        version = check_schema_version(record.get("schema_version"))
        client_id = record.get("client_id", "anonymous")
        _require(isinstance(client_id, str) and client_id,
                 "client_id must be a non-empty string")
        return cls(
            job=JobSpec.from_dict(record.get("job")),
            client_id=client_id,
            use_cache=bool(record.get("use_cache", True)),
            schema_version=version,
        )


def decode_submit_request(text: "str | bytes") -> SubmitRequest:
    """Parse a JSON request body into a validated :class:`SubmitRequest`."""
    if isinstance(text, bytes):
        text = text.decode("utf-8", errors="replace")
    try:
        record = json.loads(text)
    except ValueError as exc:
        raise ServiceError(
            f"request body is not valid JSON: {exc}",
            code="bad-request", status=400,
        ) from exc
    return SubmitRequest.from_dict(record)


@dataclass
class JobResult:
    """The terminal outcome of one job: results document plus stats.

    ``document`` is the canonical merged results dict -- exactly what
    :meth:`repro.runner.GridResult.write_json` serializes, so a client
    that writes it back out produces ``results.json`` byte-identical to
    a local ``repro run`` of the same grid. ``status`` is ``"ok"`` when
    every shard completed, ``"failed"`` otherwise (per-shard errors stay
    inside the document). ``stats`` carries runtime bookkeeping
    (``recomputed``, ``cache_hits``, ``pool_spawns``, ...).
    """

    job_id: str
    status: str
    document: Dict[str, Any]
    stats: Dict[str, Any] = field(default_factory=dict)
    schema_version: str = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.status in ("ok", "failed"),
                 f"job status must be ok|failed, got {self.status!r}")

    @property
    def ok(self) -> bool:
        """Whether every shard in the grid completed cleanly."""
        return self.status == "ok"

    def grid(self) -> "Any":
        """Rebuild the :class:`repro.runner.GridResult` from the document."""
        from repro.runner.results import GridResult

        grid = GridResult.from_dict(self.document)
        grid.stats = dict(self.stats)
        return grid

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict wire form."""
        return {
            "schema_version": self.schema_version,
            "job_id": self.job_id,
            "status": self.status,
            "stats": dict(self.stats),
            "document": self.document,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "JobResult":
        """Decode a wire-form result."""
        _require(isinstance(record, dict), "job result must be an object")
        check_schema_version(record.get("schema_version", SCHEMA_VERSION))
        return cls(
            job_id=str(record.get("job_id", "")),
            status=record.get("status", "ok"),
            document=dict(record.get("document", {})),
            stats=dict(record.get("stats", {})),
            schema_version=record.get("schema_version", SCHEMA_VERSION),
        )


def error_envelope(code: str, message: str) -> Dict[str, Any]:
    """The explicit error response shape every endpoint shares."""
    return {
        "schema_version": SCHEMA_VERSION,
        "error": {"code": code, "message": message},
    }


def envelope_error(payload: Dict[str, Any], status: int = 0) -> ServiceError:
    """Rebuild the :class:`ServiceError` a received envelope describes."""
    detail = payload.get("error") or {}
    return ServiceError(
        str(detail.get("message", "service error")),
        code=str(detail.get("code", "error")),
        status=status,
    )


def job_envelope(
    job_id: str,
    state: str,
    *,
    coalesced: int = 0,
    stats: Optional[Dict[str, Any]] = None,
    result: Optional[JobResult] = None,
    error: Optional[str] = None,
    events: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """The job-status response shape (``POST /v1/jobs``, ``GET /v1/jobs/<id>``)."""
    if state not in JOB_STATES:
        raise ServiceError(
            f"job state must be one of {JOB_STATES}, got {state!r}",
            code="bad-request", status=500,
        )
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "job_id": job_id,
        "state": state,
        "coalesced": coalesced,
    }
    if stats is not None:
        payload["stats"] = dict(stats)
    if result is not None:
        payload["result"] = result.to_dict()
    if error is not None:
        payload["error_detail"] = error
    if events is not None:
        payload["events"] = list(events)
    return payload

"""Experiment service layer: the async job API over the runner.

``repro.service`` turns the batch experiment runner into a long-lived
server: experiment grids are submitted as typed
:class:`~repro.service.schema.JobSpec` requests, executed on the
existing fork process pool with admission control (bounded queue,
per-client concurrency caps) and request coalescing (identical
content-addressed job keys share one in-flight run), and served
instantly from the SHA-256 result cache on repeat submission. Progress
heartbeats and job-lifecycle spans stream over WebSocket.

The public surface is *versioned*: every request and response carries
``schema_version`` (:data:`~repro.service.schema.SCHEMA_VERSION`), and
the dataclasses in :mod:`repro.service.schema` are the single contract
shared by the server here, :class:`repro.client.ServiceClient`, and the
``python -m repro serve`` / ``submit`` CLI verbs. The library entry
points :func:`repro.run_experiment` / :func:`repro.run_grid` route
through the same ``SubmitRequest -> JobResult`` path
(:func:`repro.runner.execute_job`), so one code path produces
byte-identical ``results.json`` regardless of how a grid was submitted.
"""

from repro.service.schema import (
    SCHEMA_VERSION,
    JobResult,
    JobSpec,
    SubmitRequest,
    decode_submit_request,
    error_envelope,
)
from repro.service.server import (
    ExperimentService,
    ServiceHandle,
    serve_in_thread,
)

__all__ = [
    "ExperimentService",
    "JobResult",
    "JobSpec",
    "SCHEMA_VERSION",
    "ServiceHandle",
    "SubmitRequest",
    "decode_submit_request",
    "error_envelope",
    "serve_in_thread",
]

"""Corpus serialization: JSON export/import.

Recommendation 8 asks Europe to share anonymized data from EC-funded
projects; practicing what the roadmap preaches, a corpus round-trips
through plain JSON so downstream users can publish and reload calibrated
survey datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ModelError
from repro.survey.stakeholder import (
    Company,
    CompanyRole,
    CompanySize,
    Corpus,
    Interview,
    Sector,
)

#: Format marker for forward compatibility.
SCHEMA_VERSION = 1


def corpus_to_dict(corpus: Corpus) -> dict:
    """A JSON-serializable representation of ``corpus``."""
    corpus.validate()
    return {
        "schema_version": SCHEMA_VERSION,
        "companies": [
            {
                "company_id": c.company_id,
                "sector": c.sector.value,
                "size": c.size.value,
                "role": c.role.value,
                "has_hardware_roadmap": c.has_hardware_roadmap,
                "data_volume_tb": c.data_volume_tb,
            }
            for c in corpus.companies
        ],
        "interviews": [
            {
                "interview_id": i.interview_id,
                "company_id": i.company_id,
                "themes": list(i.themes),
            }
            for i in corpus.interviews
        ],
    }


def corpus_from_dict(payload: dict) -> Corpus:
    """Rebuild a corpus from :func:`corpus_to_dict` output."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ModelError(f"unsupported corpus schema version: {version!r}")
    try:
        companies = [
            Company(
                company_id=c["company_id"],
                sector=Sector(c["sector"]),
                size=CompanySize(c["size"]),
                role=CompanyRole(c["role"]),
                has_hardware_roadmap=bool(c["has_hardware_roadmap"]),
                data_volume_tb=float(c["data_volume_tb"]),
            )
            for c in payload["companies"]
        ]
        interviews = [
            Interview(
                interview_id=i["interview_id"],
                company_id=i["company_id"],
                themes=tuple(i["themes"]),
            )
            for i in payload["interviews"]
        ]
    except (KeyError, ValueError) as exc:
        raise ModelError(f"malformed corpus payload: {exc}") from exc
    corpus = Corpus(companies=companies, interviews=interviews)
    corpus.validate()
    return corpus


def save_corpus(corpus: Corpus, path: Union[str, Path]) -> None:
    """Write a corpus to a JSON file."""
    Path(path).write_text(
        json.dumps(corpus_to_dict(corpus), indent=2, sort_keys=True)
    )


def load_corpus(path: Union[str, Path]) -> Corpus:
    """Read a corpus from a JSON file."""
    target = Path(path)
    if not target.exists():
        raise ModelError(f"no corpus file at {target}")
    return corpus_from_dict(json.loads(target.read_text()))

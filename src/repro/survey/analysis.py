"""Aggregate analysis of the interview corpus: the four Key Findings.

§V.A's findings become testable propositions over corpus statistics.
Each ``finding_*`` function returns a :class:`Finding` with the
supporting numbers and a boolean ``holds`` computed against the paper's
qualitative threshold ("majority", "almost all", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError
from repro.survey.stakeholder import (
    CompanyRole,
    Corpus,
    THEME_BOTTLENECK_AWARE,
    THEME_HW_SW_DISCONNECT,
    THEME_NO_HW_ROADMAP,
    THEME_ROI_SKEPTICISM,
    THEME_VALUE_FOCUS,
    THEME_WAIT_FOR_COMMODITY,
)


@dataclass(frozen=True)
class Finding:
    """One key finding with its supporting statistics."""

    finding_id: int
    statement: str
    statistics: Dict[str, float]
    holds: bool


def _interview_roles(corpus: Corpus) -> List[str]:
    """Each interview's company role, resolved through one id index."""
    role_by_company = {c.company_id: c.role.value for c in corpus.companies}
    return [role_by_company[i.company_id] for i in corpus.interviews]


def corpus_theme_statistics(
    corpus: Corpus, themes: List[str]
) -> Dict[str, Dict[str, float]]:
    """Corpus fraction plus per-role cross-tab for many themes at once.

    One batched pass (:func:`repro.mc.theme_statistics`) instead of a
    corpus rescan per theme; returns
    ``{theme: {"fraction": f, "fraction.<role>": f, ...}}`` with exactly
    the values :func:`theme_fraction` / :func:`cross_tab` produce.
    """
    if not corpus.interviews:
        raise ModelError("empty corpus")
    from repro.mc import theme_statistics

    return theme_statistics(
        [i.themes for i in corpus.interviews],
        _interview_roles(corpus),
        themes,
    )


def theme_fraction(corpus: Corpus, theme: str) -> float:
    """Fraction of interviews expressing ``theme``."""
    if not corpus.interviews:
        raise ModelError("empty corpus")
    hits = sum(1 for i in corpus.interviews if i.expresses(theme))
    return hits / len(corpus.interviews)


def sector_mix(corpus: Corpus) -> Dict[str, int]:
    """Company counts per sector."""
    mix: Dict[str, int] = {}
    for company in corpus.companies:
        mix[company.sector.value] = mix.get(company.sector.value, 0) + 1
    return mix


def cross_tab(corpus: Corpus, theme: str) -> Dict[str, float]:
    """Per-role fraction of interviews expressing ``theme``.

    Delegates to the batched statistics kernel (one role index instead
    of a per-interview linear company scan); roles appear in
    first-interview order, as the scalar scan produced.
    """
    if not corpus.interviews:
        raise ModelError("empty corpus")
    stats = corpus_theme_statistics(corpus, [theme])[theme]
    prefix = "fraction."
    return {
        key[len(prefix):]: value
        for key, value in stats.items()
        if key.startswith(prefix)
    }


def finding_1_value_focus(corpus: Corpus) -> Finding:
    """Industry focuses on value extraction, not processing bottlenecks."""
    value = theme_fraction(corpus, THEME_VALUE_FOCUS)
    bottleneck = theme_fraction(corpus, THEME_BOTTLENECK_AWARE)
    return Finding(
        finding_id=1,
        statement=(
            "Industry is focused on extracting value from data, not on "
            "processing bottlenecks or the underlying hardware"
        ),
        statistics={
            "value_focus_fraction": value,
            "bottleneck_aware_fraction": bottleneck,
        },
        holds=value > 0.5 and bottleneck < value,
    )


def finding_2_roi_skepticism(corpus: Corpus) -> Finding:
    """European companies are not convinced of novel-hardware ROI."""
    skepticism = theme_fraction(corpus, THEME_ROI_SKEPTICISM)
    commodity = theme_fraction(corpus, THEME_WAIT_FOR_COMMODITY)
    return Finding(
        finding_id=2,
        statement=(
            "European companies are not convinced of the return on "
            "investment of using novel hardware"
        ),
        statistics={
            "roi_skeptic_fraction": skepticism,
            "wait_for_commodity_fraction": commodity,
        },
        holds=skepticism > 0.5,
    )


def finding_3_disconnect(corpus: Corpus) -> Finding:
    """Hardware and software communities are disconnected in Europe.

    Evidence: almost no analytics vendor has a hardware roadmap, while
    most technology providers do.
    """
    analytics = [
        c for c in corpus.companies if c.role == CompanyRole.ANALYTICS_VENDOR
    ]
    providers = [
        c
        for c in corpus.companies
        if c.role == CompanyRole.TECHNOLOGY_PROVIDER
    ]
    if not analytics or not providers:
        raise ModelError("corpus lacks analytics vendors or providers")
    analytics_with = sum(c.has_hardware_roadmap for c in analytics) / len(
        analytics
    )
    providers_with = sum(c.has_hardware_roadmap for c in providers) / len(
        providers
    )
    disconnect = theme_fraction(corpus, THEME_HW_SW_DISCONNECT)
    return Finding(
        finding_id=3,
        statement=(
            "Europe has limited opportunities for hardware and software "
            "architects to work together"
        ),
        statistics={
            "analytics_with_hw_roadmap": analytics_with,
            "providers_with_hw_roadmap": providers_with,
            "disconnect_theme_fraction": disconnect,
        },
        holds=analytics_with < 0.15 and providers_with > 0.5,
    )


def finding_4_no_roadmap(corpus: Corpus) -> Finding:
    """Almost all analytics companies have no hardware roadmap."""
    no_roadmap = theme_fraction(corpus, THEME_NO_HW_ROADMAP)
    per_role = cross_tab(corpus, THEME_NO_HW_ROADMAP)
    return Finding(
        finding_id=4,
        statement=(
            "The dominance of non-European server vendors plus the absence "
            "of hardware roadmaps leaves Europe exposed"
        ),
        statistics={
            "no_roadmap_fraction": no_roadmap,
            **{f"no_roadmap_{k}": v for k, v in per_role.items()},
        },
        holds=per_role.get("analytics_vendor", 0.0) > 0.6,
    )


def key_findings(corpus: Corpus) -> List[Finding]:
    """All four findings, in paper order."""
    return [
        finding_1_value_focus(corpus),
        finding_2_roi_skepticism(corpus),
        finding_3_disconnect(corpus),
        finding_4_no_roadmap(corpus),
    ]


def headline_counts(corpus: Corpus) -> Dict[str, int]:
    """The abstract's numbers: interviews and distinct companies."""
    return {
        "n_interviews": corpus.n_interviews,
        "n_companies": corpus.n_companies,
    }

"""Stakeholder models for the interview corpus.

The roadmap's evidence base is "89 in-depth interviews with key
stakeholders from more than 70 distinct European companies ... from
telecommunications, hardware design and manufacturers as well as strong
representation from health, automotive, financial and analytics sectors".
This module defines the company and interview records that the corpus
generator instantiates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import ModelError


class Sector(enum.Enum):
    """Industry sectors the paper names."""

    TELECOM = "telecom"
    HARDWARE = "hardware"
    HEALTH = "health"
    AUTOMOTIVE = "automotive"
    FINANCIAL = "financial"
    ANALYTICS = "analytics"


class CompanySize(enum.Enum):
    """EU company size classes."""

    SME = "sme"
    LARGE = "large"


class CompanyRole(enum.Enum):
    """Position in the value chain (the Finding-3 fragmentation axis)."""

    TECHNOLOGY_PROVIDER = "technology_provider"
    ANALYTICS_VENDOR = "analytics_vendor"
    END_USER = "end_user"


#: Interview theme codes (the qualitative-coding vocabulary).
THEME_VALUE_FOCUS = "value-extraction-focus"
THEME_BOTTLENECK_AWARE = "bottleneck-aware"
THEME_NO_HW_ROADMAP = "no-hardware-roadmap"
THEME_ROI_SKEPTICISM = "roi-skepticism"
THEME_WAIT_FOR_COMMODITY = "wait-for-commodity"
THEME_PRICE_SENSITIVE = "price-sensitive"
THEME_LOCK_IN_FEAR = "vendor-lock-in-fear"
THEME_WANTS_BENCHMARKS = "wants-standard-benchmarks"
THEME_HW_SW_DISCONNECT = "hw-sw-disconnect"
THEME_ACCELERATOR_USER = "accelerator-user"

ALL_THEMES = (
    THEME_VALUE_FOCUS,
    THEME_BOTTLENECK_AWARE,
    THEME_NO_HW_ROADMAP,
    THEME_ROI_SKEPTICISM,
    THEME_WAIT_FOR_COMMODITY,
    THEME_PRICE_SENSITIVE,
    THEME_LOCK_IN_FEAR,
    THEME_WANTS_BENCHMARKS,
    THEME_HW_SW_DISCONNECT,
    THEME_ACCELERATOR_USER,
)


@dataclass(frozen=True)
class Company:
    """One interviewed organization."""

    company_id: str
    sector: Sector
    size: CompanySize
    role: CompanyRole
    has_hardware_roadmap: bool
    data_volume_tb: float

    def __post_init__(self) -> None:
        if self.data_volume_tb < 0:
            raise ModelError(f"{self.company_id}: negative data volume")


@dataclass(frozen=True)
class Interview:
    """One coded interview transcript."""

    interview_id: str
    company_id: str
    themes: tuple

    def __post_init__(self) -> None:
        if not self.themes:
            raise ModelError(f"{self.interview_id}: no coded themes")
        unknown = set(self.themes) - set(ALL_THEMES)
        if unknown:
            raise ModelError(
                f"{self.interview_id}: unknown themes {sorted(unknown)}"
            )

    def expresses(self, theme: str) -> bool:
        """Whether the interview was coded with ``theme``."""
        return theme in self.themes


@dataclass
class Corpus:
    """The full interview corpus."""

    companies: List[Company] = field(default_factory=list)
    interviews: List[Interview] = field(default_factory=list)

    def validate(self) -> None:
        """Referential integrity plus the paper's headline counts."""
        if not self.companies or not self.interviews:
            raise ModelError("corpus must contain companies and interviews")
        ids = {c.company_id for c in self.companies}
        if len(ids) != len(self.companies):
            raise ModelError("duplicate company ids")
        for interview in self.interviews:
            if interview.company_id not in ids:
                raise ModelError(
                    f"interview {interview.interview_id}: unknown company"
                )

    @property
    def n_companies(self) -> int:
        """Distinct companies interviewed."""
        return len(self.companies)

    @property
    def n_interviews(self) -> int:
        """Total interviews conducted."""
        return len(self.interviews)

    def company(self, company_id: str) -> Company:
        """Look up a company by id."""
        for candidate in self.companies:
            if candidate.company_id == company_id:
                return candidate
        raise ModelError(f"unknown company: {company_id!r}")

    def of_sector(self, sector: Sector) -> List[Company]:
        """All companies in ``sector``."""
        return [c for c in self.companies if c.sector == sector]

    def interviews_for(self, company_id: str) -> List[Interview]:
        """All interviews with one company."""
        return [i for i in self.interviews if i.company_id == company_id]

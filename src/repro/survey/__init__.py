"""Stakeholder survey substrate: calibrated synthetic corpus + analysis.

Reproduces §V.A: 89 interviews / 70 companies whose aggregate statistics
support the roadmap's four Key Findings.
"""

from repro.survey.analysis import (
    Finding,
    corpus_theme_statistics,
    cross_tab,
    finding_1_value_focus,
    finding_2_roi_skepticism,
    finding_3_disconnect,
    finding_4_no_roadmap,
    headline_counts,
    key_findings,
    sector_mix,
    theme_fraction,
)
from repro.survey.corpus import SECTOR_WEIGHTS, generate_corpus
from repro.survey.io import (
    corpus_from_dict,
    corpus_to_dict,
    load_corpus,
    save_corpus,
)
from repro.survey.stakeholder import (
    ALL_THEMES,
    Company,
    CompanyRole,
    CompanySize,
    Corpus,
    Interview,
    Sector,
    THEME_ACCELERATOR_USER,
    THEME_BOTTLENECK_AWARE,
    THEME_HW_SW_DISCONNECT,
    THEME_LOCK_IN_FEAR,
    THEME_NO_HW_ROADMAP,
    THEME_PRICE_SENSITIVE,
    THEME_ROI_SKEPTICISM,
    THEME_VALUE_FOCUS,
    THEME_WAIT_FOR_COMMODITY,
    THEME_WANTS_BENCHMARKS,
)

__all__ = [
    "ALL_THEMES",
    "Company",
    "CompanyRole",
    "CompanySize",
    "Corpus",
    "Finding",
    "Interview",
    "SECTOR_WEIGHTS",
    "Sector",
    "THEME_ACCELERATOR_USER",
    "THEME_BOTTLENECK_AWARE",
    "THEME_HW_SW_DISCONNECT",
    "THEME_LOCK_IN_FEAR",
    "THEME_NO_HW_ROADMAP",
    "THEME_PRICE_SENSITIVE",
    "THEME_ROI_SKEPTICISM",
    "THEME_VALUE_FOCUS",
    "THEME_WAIT_FOR_COMMODITY",
    "THEME_WANTS_BENCHMARKS",
    "corpus_from_dict",
    "corpus_theme_statistics",
    "corpus_to_dict",
    "cross_tab",
    "finding_1_value_focus",
    "finding_2_roi_skepticism",
    "finding_3_disconnect",
    "finding_4_no_roadmap",
    "generate_corpus",
    "headline_counts",
    "key_findings",
    "load_corpus",
    "save_corpus",
    "sector_mix",
    "theme_fraction",
]

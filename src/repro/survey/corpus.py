"""Synthetic interview-corpus generator, calibrated to the paper.

The paper reports aggregates, not transcripts; this generator produces a
corpus whose aggregates reproduce them:

- 89 interviews across 70 distinct companies (some interviewed twice);
- the named sector mix (telecom and hardware prominent, strong health /
  automotive / financial / analytics representation);
- Finding 1: most companies focus on extracting value, not bottlenecks;
- Finding 2: most are unconvinced of novel-hardware ROI (price
  sensitivity, wait-for-commodity);
- Finding 3: hardware/software disconnect -- "almost all analytics
  companies ... have no hardware roadmap";
- Finding 4: technology providers are the minority who do track hardware.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.randomness import RandomStream
from repro.errors import ModelError
from repro.survey.stakeholder import (
    Company,
    CompanyRole,
    CompanySize,
    Corpus,
    Interview,
    Sector,
    THEME_ACCELERATOR_USER,
    THEME_BOTTLENECK_AWARE,
    THEME_HW_SW_DISCONNECT,
    THEME_LOCK_IN_FEAR,
    THEME_NO_HW_ROADMAP,
    THEME_PRICE_SENSITIVE,
    THEME_ROI_SKEPTICISM,
    THEME_VALUE_FOCUS,
    THEME_WAIT_FOR_COMMODITY,
    THEME_WANTS_BENCHMARKS,
)

#: Sector weights reflecting the paper's description of the sample.
SECTOR_WEIGHTS: Dict[Sector, float] = {
    Sector.TELECOM: 0.20,
    Sector.HARDWARE: 0.17,
    Sector.ANALYTICS: 0.23,
    Sector.FINANCIAL: 0.15,
    Sector.HEALTH: 0.13,
    Sector.AUTOMOTIVE: 0.12,
}

#: Role mix per sector: hardware firms are technology providers; the
#: rest split between analytics vendors and end users.
_ROLE_BY_SECTOR: Dict[Sector, Dict[CompanyRole, float]] = {
    Sector.HARDWARE: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.9,
        CompanyRole.ANALYTICS_VENDOR: 0.05,
        CompanyRole.END_USER: 0.05,
    },
    Sector.TELECOM: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.35,
        CompanyRole.ANALYTICS_VENDOR: 0.15,
        CompanyRole.END_USER: 0.5,
    },
    Sector.ANALYTICS: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.05,
        CompanyRole.ANALYTICS_VENDOR: 0.8,
        CompanyRole.END_USER: 0.15,
    },
    Sector.FINANCIAL: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.05,
        CompanyRole.ANALYTICS_VENDOR: 0.2,
        CompanyRole.END_USER: 0.75,
    },
    Sector.HEALTH: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.05,
        CompanyRole.ANALYTICS_VENDOR: 0.25,
        CompanyRole.END_USER: 0.7,
    },
    Sector.AUTOMOTIVE: {
        CompanyRole.TECHNOLOGY_PROVIDER: 0.15,
        CompanyRole.ANALYTICS_VENDOR: 0.15,
        CompanyRole.END_USER: 0.7,
    },
}


def _hardware_roadmap_probability(role: CompanyRole, sector: Sector) -> float:
    """Probability a company tracks hardware (Finding 3 calibration)."""
    if role == CompanyRole.TECHNOLOGY_PROVIDER:
        return 0.85
    if role == CompanyRole.ANALYTICS_VENDOR:
        return 0.04  # "almost all analytics companies ... no hardware roadmap"
    if sector == Sector.FINANCIAL:
        return 0.25  # FPGAs "most prominent in financial and oil industries"
    return 0.10


def generate_corpus(
    n_interviews: int = 89,
    n_companies: int = 70,
    seed: int = 619788,  # the project's EC grant number
) -> Corpus:
    """Generate the calibrated corpus.

    Deterministic given ``seed``. Interview count must be at least the
    company count (every company is interviewed at least once; the
    surplus interviews revisit companies, as the real project did).
    """
    if n_companies < 1:
        raise ModelError("need at least one company")
    if n_interviews < n_companies:
        raise ModelError("need at least one interview per company")
    rng = RandomStream(seed, "corpus")
    sectors = list(SECTOR_WEIGHTS)
    weights = [SECTOR_WEIGHTS[s] for s in sectors]

    companies = []
    for index in range(n_companies):
        sector = rng.choice(sectors, p=weights)
        roles = list(_ROLE_BY_SECTOR[sector])
        role = rng.choice(roles, p=[_ROLE_BY_SECTOR[sector][r] for r in roles])
        size = CompanySize.SME if rng.uniform() < 0.6 else CompanySize.LARGE
        companies.append(
            Company(
                company_id=f"company{index:03d}",
                sector=sector,
                size=size,
                role=role,
                has_hardware_roadmap=(
                    rng.uniform() < _hardware_roadmap_probability(role, sector)
                ),
                data_volume_tb=rng.lognormal(50.0, 1.5),
            )
        )

    # Assign interviews: everyone once, the surplus to random companies.
    assignments = list(range(n_companies))
    for _ in range(n_interviews - n_companies):
        assignments.append(rng.integer(0, n_companies))
    assignments = rng.shuffle(assignments)

    interviews = []
    for index, company_index in enumerate(assignments):
        company = companies[company_index]
        interviews.append(
            Interview(
                interview_id=f"interview{index:03d}",
                company_id=company.company_id,
                themes=tuple(_draw_themes(company, rng)),
            )
        )
    corpus = Corpus(companies=companies, interviews=interviews)
    corpus.validate()
    return corpus


def _draw_themes(company: Company, rng: RandomStream) -> list:
    """Sample the themes one interview with ``company`` expresses."""
    themes = []

    def maybe(theme: str, probability: float) -> None:
        if rng.uniform() < probability:
            themes.append(theme)

    is_provider = company.role == CompanyRole.TECHNOLOGY_PROVIDER
    # Finding 1: value focus dominates; bottleneck awareness is rare and
    # concentrated in technology providers / data-heavy firms.
    maybe(THEME_VALUE_FOCUS, 0.25 if is_provider else 0.85)
    maybe(
        THEME_BOTTLENECK_AWARE,
        0.6 if is_provider else (0.25 if company.data_volume_tb > 500 else 0.08),
    )
    # Finding 2: ROI skepticism and commodity-waiting.
    maybe(THEME_ROI_SKEPTICISM, 0.3 if is_provider else 0.75)
    maybe(THEME_WAIT_FOR_COMMODITY, 0.25 if is_provider else 0.7)
    maybe(
        THEME_PRICE_SENSITIVE,
        0.75 if company.size == CompanySize.SME else 0.35,
    )
    # Finding 3: the disconnect, felt on both sides.
    maybe(THEME_HW_SW_DISCONNECT, 0.55 if is_provider else 0.45)
    if not company.has_hardware_roadmap:
        maybe(THEME_NO_HW_ROADMAP, 0.95)
    # Finding 4 / R4-R9 inputs.
    maybe(THEME_LOCK_IN_FEAR, 0.5 if is_provider else 0.3)
    maybe(THEME_WANTS_BENCHMARKS, 0.55)
    maybe(
        THEME_ACCELERATOR_USER,
        0.45
        if company.sector == Sector.FINANCIAL and is_provider is False
        else (0.35 if is_provider else 0.05),
    )
    if not themes:
        themes.append(THEME_VALUE_FOCUS)  # every interview says something
    return themes

"""Data-center networking substrate (§IV.A of the roadmap).

Topologies (fat-tree, leaf-spine, disaggregated), Ethernet link
generations, switch procurement models (branded / white-box / bare
metal), ECMP routing, flow-level max-min bandwidth sharing, packet-level
queueing, the SDN control plane and NFV service chains.
"""

from repro.network.failures import (
    DegradationPoint,
    DegradationProfile,
    hosts_connected,
    min_cut_links_between,
    progressive_link_failures,
    single_switch_failure_impact,
    without_links,
    without_switches,
)
from repro.network.flows import (
    Flow,
    FlowSimulator,
    IncrementalMaxMinSolver,
    invalidate_link_capacity_cache,
    max_min_fair_rates,
    transfer_time_s,
)
from repro.network.link import (
    ETHERNET_ROADMAP,
    Link,
    LinkGeneration,
    commodity_generation,
    cost_per_gbps_trend,
    generations_by_year,
)
from repro.network.loadbalance import (
    AssignmentComparison,
    assign_paths_ecmp,
    assign_paths_least_loaded,
    compare_assignment_policies,
    link_load_bytes,
    load_imbalance,
)
from repro.network.nfv import (
    FUNCTION_CATALOG,
    NetworkFunction,
    ServiceChain,
    VnfHost,
    standard_dmz_chain,
)
from repro.network.packet import (
    PacketNetwork,
    PacketRecord,
    poisson_traffic_latencies,
)
from repro.network.routing import (
    ecmp_path_for_flow,
    ecmp_paths,
    hop_count_matrix,
    path_bottleneck_gbps,
    path_links,
    shortest_path,
)
from repro.network.sdn import (
    FlowRule,
    FlowTable,
    LegacyManagement,
    SdnController,
    management_speedup,
)
from repro.network.switch import (
    NOS_CATALOG,
    NosLicense,
    SwitchClass,
    SwitchModel,
    bare_metal_switch,
    branded_switch,
    fleet_tco_usd,
    white_box_switch,
)
from repro.network.topology import (
    ROLE_AGG,
    ROLE_CORE,
    ROLE_HOST,
    ROLE_POOL,
    ROLE_TOR,
    Fabric,
    disaggregated_fabric,
    fat_tree,
    leaf_spine,
)

__all__ = [
    "AssignmentComparison",
    "DegradationPoint",
    "DegradationProfile",
    "ETHERNET_ROADMAP",
    "FUNCTION_CATALOG",
    "Fabric",
    "Flow",
    "FlowRule",
    "FlowSimulator",
    "FlowTable",
    "IncrementalMaxMinSolver",
    "LegacyManagement",
    "Link",
    "LinkGeneration",
    "NOS_CATALOG",
    "NetworkFunction",
    "NosLicense",
    "PacketNetwork",
    "PacketRecord",
    "ROLE_AGG",
    "ROLE_CORE",
    "ROLE_HOST",
    "ROLE_POOL",
    "ROLE_TOR",
    "SdnController",
    "ServiceChain",
    "SwitchClass",
    "SwitchModel",
    "VnfHost",
    "assign_paths_ecmp",
    "assign_paths_least_loaded",
    "bare_metal_switch",
    "branded_switch",
    "commodity_generation",
    "compare_assignment_policies",
    "cost_per_gbps_trend",
    "disaggregated_fabric",
    "ecmp_path_for_flow",
    "ecmp_paths",
    "fat_tree",
    "fleet_tco_usd",
    "generations_by_year",
    "hop_count_matrix",
    "hosts_connected",
    "invalidate_link_capacity_cache",
    "leaf_spine",
    "link_load_bytes",
    "load_imbalance",
    "management_speedup",
    "max_min_fair_rates",
    "min_cut_links_between",
    "path_bottleneck_gbps",
    "path_links",
    "poisson_traffic_latencies",
    "progressive_link_failures",
    "shortest_path",
    "single_switch_failure_impact",
    "standard_dmz_chain",
    "transfer_time_s",
    "white_box_switch",
    "without_links",
    "without_switches",
]

"""Network function virtualization (§IV.A.2).

NFV "allows for the implementation of security, firewalls, routing
schemes and other functions separately ... via software allowing for
increased control, flexibility and scalability". We model service chains
of network functions and compare two deployments:

- **hardware appliances**: fixed-function boxes, high throughput, weeks
  of procurement lead time, one function per box;
- **VNFs on commodity servers**: per-packet CPU cost, elastically
  scalable in minutes, consolidated onto shared servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ModelError


@dataclass(frozen=True)
class NetworkFunction:
    """One function in a service chain (firewall, NAT, IDS, LB...).

    ``cycles_per_packet`` is the software cost; ``appliance_gbps`` and
    ``appliance_usd`` describe the equivalent fixed-function box.
    """

    name: str
    cycles_per_packet: float
    appliance_gbps: float
    appliance_usd: float
    appliance_lead_time_days: float = 45.0

    def __post_init__(self) -> None:
        if self.cycles_per_packet <= 0 or self.appliance_gbps <= 0:
            raise ModelError(f"{self.name}: rates must be positive")


#: A representative 2016 middlebox menu.
FUNCTION_CATALOG: Dict[str, NetworkFunction] = {
    nf.name: nf
    for nf in (
        NetworkFunction("firewall", 2_200.0, 40.0, 30_000.0),
        NetworkFunction("nat", 1_200.0, 40.0, 18_000.0),
        NetworkFunction("ids", 9_000.0, 10.0, 55_000.0),
        NetworkFunction("load-balancer", 1_800.0, 40.0, 25_000.0),
        NetworkFunction("vpn-gateway", 6_000.0, 10.0, 40_000.0),
    )
}


@dataclass(frozen=True)
class VnfHost:
    """A commodity server running VNFs."""

    cores: int = 16
    cycles_per_core_per_s: float = 2.4e9
    price_usd: float = 6_000.0
    provisioning_time_minutes: float = 20.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ModelError("VNF host needs at least one core")

    @property
    def total_cycles_per_s(self) -> float:
        """Aggregate packet-processing budget of the host."""
        return self.cores * self.cycles_per_core_per_s


@dataclass
class ServiceChain:
    """An ordered chain of network functions traffic must traverse."""

    name: str
    functions: List[NetworkFunction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.functions:
            raise ModelError(f"chain {self.name}: needs at least one function")

    @property
    def cycles_per_packet(self) -> float:
        """Total software cost of one packet across the chain."""
        return sum(f.cycles_per_packet for f in self.functions)

    # -- VNF deployment ------------------------------------------------------

    def vnf_throughput_gbps(
        self, host: VnfHost, packet_bytes: float = 800.0
    ) -> float:
        """Line rate one host sustains running the whole chain."""
        if packet_bytes <= 0:
            raise ModelError("packet size must be positive")
        pps = host.total_cycles_per_s / self.cycles_per_packet
        return pps * packet_bytes * 8.0 / 1e9

    def vnf_hosts_needed(
        self, target_gbps: float, host: VnfHost, packet_bytes: float = 800.0
    ) -> int:
        """Hosts required to sustain ``target_gbps`` through the chain."""
        if target_gbps <= 0:
            raise ModelError("target rate must be positive")
        per_host = self.vnf_throughput_gbps(host, packet_bytes)
        return max(1, -(-int(target_gbps * 1e6) // int(per_host * 1e6)))

    def vnf_capex_usd(
        self, target_gbps: float, host: VnfHost, packet_bytes: float = 800.0
    ) -> float:
        """Hardware cost of the VNF deployment at ``target_gbps``."""
        return self.vnf_hosts_needed(target_gbps, host, packet_bytes) * host.price_usd

    def vnf_time_to_capacity_minutes(self, host: VnfHost) -> float:
        """Elastic scale-out time (provision VMs, start VNFs)."""
        return host.provisioning_time_minutes

    # -- appliance deployment -----------------------------------------------

    def appliance_capex_usd(self, target_gbps: float) -> float:
        """Cost of fixed-function boxes covering ``target_gbps`` per function."""
        if target_gbps <= 0:
            raise ModelError("target rate must be positive")
        total = 0.0
        for function in self.functions:
            boxes = max(
                1, -(-int(target_gbps * 1e6) // int(function.appliance_gbps * 1e6))
            )
            total += boxes * function.appliance_usd
        return total

    def appliance_time_to_capacity_minutes(self) -> float:
        """Procurement lead time (the slowest function dominates)."""
        return max(f.appliance_lead_time_days for f in self.functions) * 24 * 60


def standard_dmz_chain() -> ServiceChain:
    """Firewall -> IDS -> load balancer: the canonical ingress chain."""
    return ServiceChain(
        "dmz-ingress",
        [
            FUNCTION_CATALOG["firewall"],
            FUNCTION_CATALOG["ids"],
            FUNCTION_CATALOG["load-balancer"],
        ],
    )

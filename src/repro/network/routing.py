"""Routing over fabrics: shortest path and ECMP path sets."""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.network.topology import Fabric


def shortest_path(fabric: Fabric, src: str, dst: str) -> List[str]:
    """One hop-count shortest path from ``src`` to ``dst``.

    Routes over the fabric's *active* topology, so paths avoid links
    and nodes currently marked down by fault injection; with nothing
    failed this is the full graph.
    """
    _check_endpoints(fabric, src, dst)
    try:
        return nx.shortest_path(fabric.active_graph(), src, dst)
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise TopologyError(f"no path {src} -> {dst}") from exc


def ecmp_paths(fabric: Fabric, src: str, dst: str) -> List[List[str]]:
    """All equal-cost (hop-count) shortest paths, deterministically ordered.

    This is the path set an ECMP hash spreads flows across; fat-trees owe
    their bisection bandwidth to its size. Computed over the fabric's
    *active* topology, so a link failure reroutes flows across the
    surviving equal-cost paths.

    Path sets are memoized on the fabric, fingerprinted by the edge
    count plus :attr:`~repro.network.topology.Fabric.state_version`
    (the same protocol as the flow solver's capacity cache), so
    repeated routing between faults -- the chaos-run hot path -- costs
    one dict lookup instead of a shortest-path enumeration. Treat the
    returned paths as immutable; they are shared across callers.
    """
    _check_endpoints(fabric, src, dst)
    fingerprint = (fabric.graph.number_of_edges(), fabric.state_version)
    cache = getattr(fabric, "_repro_ecmp_cache", None)
    if cache is None or cache[0] != fingerprint:
        cache = (fingerprint, {})
        fabric._repro_ecmp_cache = cache
    table = cache[1]
    paths = table.get((src, dst))
    if paths is None:
        try:
            paths = sorted(
                nx.all_shortest_paths(fabric.active_graph(), src, dst)
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(f"no path {src} -> {dst}") from exc
        table[(src, dst)] = paths
    return paths


def ecmp_path_for_flow(
    fabric: Fabric, src: str, dst: str, flow_id: int
) -> List[str]:
    """Deterministic ECMP pick: hash the flow id over the path set."""
    paths = ecmp_paths(fabric, src, dst)
    return paths[flow_id % len(paths)]


def path_links(path: List[str]) -> List[Tuple[str, str]]:
    """Canonically-ordered (sorted endpoint) link keys along a path."""
    if len(path) < 2:
        raise TopologyError(f"path too short: {path}")
    return [tuple(sorted((a, b))) for a, b in zip(path, path[1:])]


def path_bottleneck_gbps(fabric: Fabric, path: List[str]) -> float:
    """The minimum link rate along a path."""
    return min(fabric.link_rate_gbps(a, b) for a, b in zip(path, path[1:]))


def hop_count_matrix(fabric: Fabric) -> Dict[Tuple[str, str], int]:
    """Hop counts between every pair of hosts."""
    hosts = fabric.hosts
    lengths = dict(nx.all_pairs_shortest_path_length(fabric.graph))
    return {
        (a, b): lengths[a][b]
        for a in hosts
        for b in hosts
        if a < b
    }


def _check_endpoints(fabric: Fabric, src: str, dst: str) -> None:
    for node in (src, dst):
        if node not in fabric.graph:
            raise TopologyError(f"unknown node: {node}")
    if src == dst:
        raise TopologyError(f"src equals dst: {src}")

"""Ethernet link generations and the bandwidth roadmap (§IV.A, R1/R3).

The roadmap frames the networking hardware lifecycle as "the quest for
increasing bandwidth": 10/40 GbE adoption today (R1), 100 GbE at the
hyperscalers, and "high-end (beyond 400 GbE) network appliances ...
available after 2020" (R3), with photonics-on-silicon integration as the
enabling technology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError


@dataclass(frozen=True)
class LinkGeneration:
    """One Ethernet speed grade.

    ``volume_year`` is when the generation reached/reaches commodity
    volume; ``usd_per_port`` and ``w_per_port`` are launch-era switch-side
    figures; ``photonic`` marks generations requiring integrated silicon
    photonics (the R3 watch-item).
    """

    name: str
    rate_gbps: float
    standard_year: int
    volume_year: int
    usd_per_port: float
    w_per_port: float
    photonic: bool = False

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ModelError(f"{self.name}: rate must be positive")
        if self.volume_year < self.standard_year:
            raise ModelError(
                f"{self.name}: volume cannot precede standardization"
            )

    @property
    def usd_per_gbps(self) -> float:
        """Launch-era cost efficiency of the generation."""
        return self.usd_per_port / self.rate_gbps

    @property
    def gbps_per_w(self) -> float:
        """Launch-era energy efficiency of the generation."""
        return self.rate_gbps / self.w_per_port


#: The Ethernet roadmap as seen from 2016 (IEEE 802.3 history + projections).
ETHERNET_ROADMAP: Dict[str, LinkGeneration] = {
    gen.name: gen
    for gen in (
        LinkGeneration("1GbE", 1.0, 1999, 2003, 10.0, 1.0),
        LinkGeneration("10GbE", 10.0, 2002, 2010, 100.0, 4.0),
        LinkGeneration("40GbE", 40.0, 2010, 2015, 300.0, 8.0),
        LinkGeneration("100GbE", 100.0, 2010, 2018, 700.0, 12.0),
        LinkGeneration("400GbE", 400.0, 2017, 2021, 2_400.0, 20.0, photonic=True),
        LinkGeneration("800GbE", 800.0, 2020, 2025, 4_800.0, 30.0, photonic=True),
    )
}


def generations_by_year() -> List[LinkGeneration]:
    """All generations ordered by volume year."""
    return sorted(ETHERNET_ROADMAP.values(), key=lambda g: g.volume_year)


def commodity_generation(year: int) -> LinkGeneration:
    """The fastest generation at commodity volume in ``year``."""
    available = [g for g in ETHERNET_ROADMAP.values() if g.volume_year <= year]
    if not available:
        raise ModelError(f"no commodity Ethernet generation by {year}")
    return max(available, key=lambda g: g.rate_gbps)


def cost_per_gbps_trend() -> List[tuple]:
    """(volume_year, usd_per_gbps) per generation -- strictly improving."""
    return [(g.volume_year, g.usd_per_gbps) for g in generations_by_year()]


@dataclass(frozen=True)
class Link:
    """A physical link instance in a topology."""

    src: str
    dst: str
    rate_gbps: float

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ModelError(f"link {self.src}->{self.dst}: bad rate")
        if self.src == self.dst:
            raise ModelError(f"self-loop on {self.src}")

    @property
    def capacity_bytes_per_s(self) -> float:
        """Payload capacity of the link."""
        return self.rate_gbps * 1e9 / 8.0

"""Switch procurement models: branded, white-box, bare-metal (§IV.A.1).

The paper distinguishes three ways to buy a switch:

- **branded**: integrated hardware + vendor NOS + vendor support
  (the Cisco/Juniper model);
- **white box**: commodity hardware preloaded with a third-party NOS;
- **bare metal**: commodity hardware, NOS procured separately
  (Big Switch Light OS, Cumulus Linux, Pica8 PicOS, or in-house a la
  Facebook).

The E6 experiment compares their five-year fleet TCO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.econ.cost import EnergyPrice, TcoBreakdown
from repro.engine import Registry
from repro.errors import ModelError


class SwitchClass(enum.Enum):
    """Procurement model for a switch."""

    BRANDED = "branded"
    WHITE_BOX = "white_box"
    BARE_METAL = "bare_metal"


@dataclass(frozen=True)
class NosLicense:
    """A network operating system license."""

    name: str
    usd_per_switch: float
    support_usd_per_switch_per_year: float

    def __post_init__(self) -> None:
        if min(self.usd_per_switch, self.support_usd_per_switch_per_year) < 0:
            raise ModelError(f"NOS {self.name}: negative pricing")


#: Representative third-party NOS price points (2016 list-price scale).
NOS_CATALOG: Dict[str, NosLicense] = {
    "cumulus-linux": NosLicense("cumulus-linux", 3_000.0, 600.0),
    "big-switch-light": NosLicense("big-switch-light", 3_500.0, 700.0),
    "pica8-picos": NosLicense("pica8-picos", 2_500.0, 500.0),
    "in-house": NosLicense("in-house", 0.0, 0.0),  # engineering paid separately
}


@dataclass(frozen=True)
class SwitchModel:
    """A purchasable switch configuration."""

    name: str
    switch_class: SwitchClass
    ports: int
    port_gbps: float
    hardware_usd: float
    power_w: float
    nos: NosLicense
    vendor_support_frac: float = 0.0  # yearly fraction of hardware price

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ModelError(f"{self.name}: needs at least one port")
        if self.port_gbps <= 0:
            raise ModelError(f"{self.name}: port rate must be positive")
        if self.switch_class == SwitchClass.BRANDED and self.nos.usd_per_switch:
            raise ModelError(
                f"{self.name}: branded switches bundle their NOS"
            )

    @property
    def capacity_gbps(self) -> float:
        """Aggregate port capacity."""
        return self.ports * self.port_gbps

    @property
    def acquisition_usd(self) -> float:
        """Hardware plus NOS license."""
        return self.hardware_usd + self.nos.usd_per_switch

    def tco(
        self,
        horizon_years: float,
        energy: EnergyPrice = EnergyPrice(),
        nos_engineering_usd_per_year: float = 0.0,
    ) -> TcoBreakdown:
        """Five-year-style TCO: hardware, NOS, support, energy.

        ``nos_engineering_usd_per_year`` captures the in-house NOS staff
        cost for Facebook-style bare metal.
        """
        if horizon_years <= 0:
            raise ModelError("horizon must be positive")
        tco = TcoBreakdown()
        tco.add("hardware", self.hardware_usd, "capex")
        tco.add("nos-license", self.nos.usd_per_switch, "capex")
        tco.add(
            "nos-support",
            self.nos.support_usd_per_switch_per_year * horizon_years,
            "opex",
        )
        tco.add(
            "vendor-support",
            self.hardware_usd * self.vendor_support_frac * horizon_years,
            "opex",
        )
        seconds = horizon_years * 365 * 86_400
        tco.add("energy", energy.cost_usd(self.power_w, seconds), "opex")
        if nos_engineering_usd_per_year:
            tco.add(
                "nos-engineering",
                nos_engineering_usd_per_year * horizon_years,
                "opex",
            )
        return tco


def branded_switch(ports: int = 32, port_gbps: float = 40.0) -> SwitchModel:
    """A branded ToR switch: premium hardware price, bundled NOS, ~18%/yr support."""
    return SwitchModel(
        name="branded-tor",
        switch_class=SwitchClass.BRANDED,
        ports=ports,
        port_gbps=port_gbps,
        hardware_usd=700.0 * ports * port_gbps / 40.0,
        power_w=4.5 * ports,
        nos=NosLicense("vendor-bundled", 0.0, 0.0),
        vendor_support_frac=0.18,
    )


def white_box_switch(
    ports: int = 32, port_gbps: float = 40.0, nos_name: str = "cumulus-linux"
) -> SwitchModel:
    """A white-box switch: commodity hardware with a preloaded 3rd-party NOS."""
    return SwitchModel(
        name=f"whitebox-{nos_name}",
        switch_class=SwitchClass.WHITE_BOX,
        ports=ports,
        port_gbps=port_gbps,
        hardware_usd=280.0 * ports * port_gbps / 40.0,
        power_w=4.0 * ports,
        nos=NOS_CATALOG[nos_name],
    )


def bare_metal_switch(ports: int = 32, port_gbps: float = 40.0) -> SwitchModel:
    """A bare-metal switch with an in-house NOS (the Facebook model)."""
    return SwitchModel(
        name="baremetal-inhouse",
        switch_class=SwitchClass.BARE_METAL,
        ports=ports,
        port_gbps=port_gbps,
        hardware_usd=250.0 * ports * port_gbps / 40.0,
        power_w=4.0 * ports,
        nos=NOS_CATALOG["in-house"],
    )


def fleet_tco_usd(
    switch: SwitchModel,
    fleet_size: int,
    horizon_years: float = 5.0,
    energy: EnergyPrice = EnergyPrice(),
    inhouse_nos_team_usd_per_year: float = 2_000_000.0,
    registry: Optional[Registry] = None,
) -> float:
    """Total fleet cost; in-house NOS engineering amortizes across the fleet.

    The crossover this produces is the paper's point: bare metal only
    pays off for operators with enough switches to amortize a NOS team
    -- hyperscalers, not SMEs. Passing a
    :class:`~repro.engine.Registry` publishes per-line-item cost
    counters and a per-switch-TCO histogram keyed by switch name.
    """
    if fleet_size < 1:
        raise ModelError("fleet must have at least one switch")
    per_switch_engineering = 0.0
    if switch.nos.name == "in-house":
        per_switch_engineering = inhouse_nos_team_usd_per_year / fleet_size
    breakdown = switch.tco(
        horizon_years,
        energy=energy,
        nos_engineering_usd_per_year=per_switch_engineering,
    )
    per_switch = breakdown.total_usd
    if registry is not None:
        registry.counter(f"switch.{switch.name}.fleet_evaluations").inc()
        for label, amount in breakdown.by_label().items():
            if amount > 0:
                registry.counter(
                    f"switch.{switch.name}.usd.{label}"
                ).inc(amount * fleet_size)
        registry.histogram(f"switch.{switch.name}.per_switch_tco_usd").observe(
            per_switch
        )
    return per_switch * fleet_size

"""Flow-level bandwidth allocation and transfer-time simulation.

The shuffle and disaggregation experiments need "how long does this set
of bulk transfers take", not per-packet detail. This module provides:

- :func:`max_min_fair_rates`: progressive-filling max-min fair allocation
  of concurrent flows over a fabric.
- :class:`FlowSimulator`: event-driven completion of a static flow set,
  re-solving rates as flows finish (the standard flow-level DC model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.network.routing import ecmp_path_for_flow, path_links
from repro.network.topology import Fabric


@dataclass
class Flow:
    """One bulk transfer.

    ``path`` is filled in by the simulator (ECMP) unless provided.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_s: float = 0.0
    path: Optional[List[str]] = None
    finish_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TopologyError(f"flow {self.flow_id}: size must be positive")
        if self.start_s < 0:
            raise TopologyError(f"flow {self.flow_id}: negative start")


def max_min_fair_rates(
    fabric: Fabric, flows: List[Flow]
) -> Dict[int, float]:
    """Max-min fair rates (bytes/s) via progressive filling.

    Each flow follows its (already-assigned) path; link capacity is the
    link rate in bytes/s. Classic algorithm: repeatedly find the most
    constrained link, freeze its flows at the fair share, remove, repeat.
    """
    active: Dict[int, Flow] = {}
    for flow in flows:
        if flow.path is None:
            raise TopologyError(f"flow {flow.flow_id}: path not assigned")
        active[flow.flow_id] = flow

    remaining_capacity: Dict[Tuple[str, str], float] = {}
    link_flows: Dict[Tuple[str, str], set] = {}
    for flow in active.values():
        for link in path_links(flow.path):
            if link not in remaining_capacity:
                a, b = link
                remaining_capacity[link] = fabric.link_rate_gbps(a, b) * 1e9 / 8.0
                link_flows[link] = set()
            link_flows[link].add(flow.flow_id)

    rates: Dict[int, float] = {}
    unfrozen = set(active)
    while unfrozen:
        # Fair share each link could give its unfrozen flows.
        best_link, best_share = None, float("inf")
        for link, members in link_flows.items():
            live = members & unfrozen
            if not live:
                continue
            share = remaining_capacity[link] / len(live)
            if share < best_share:
                best_link, best_share = link, share
        if best_link is None:
            # Flows whose links all vanished (shouldn't happen) get inf.
            for fid in unfrozen:
                rates[fid] = float("inf")
            break
        # Freeze the bottleneck link's flows at the fair share.
        for fid in sorted(link_flows[best_link] & unfrozen):
            rates[fid] = best_share
            unfrozen.discard(fid)
            for link in path_links(active[fid].path):
                remaining_capacity[link] -= best_share
                # Numerical guard.
                if remaining_capacity[link] < 0:
                    remaining_capacity[link] = 0.0
    return rates


@dataclass
class FlowSimulator:
    """Completes a flow set under repeatedly re-solved max-min sharing."""

    fabric: Fabric
    assign_paths: bool = True

    def run(self, flows: List[Flow]) -> List[Flow]:
        """Simulate all flows to completion; returns them with finish times.

        Events are flow arrivals and completions; between events, rates
        are constant at the max-min solution for the active set.
        """
        if not flows:
            return []
        for flow in flows:
            if self.assign_paths and flow.path is None:
                flow.path = ecmp_path_for_flow(
                    self.fabric, flow.src, flow.dst, flow.flow_id
                )
            elif flow.path is None:
                raise TopologyError(
                    f"flow {flow.flow_id}: no path and path assignment disabled"
                )

        pending = sorted(flows, key=lambda f: (f.start_s, f.flow_id))
        remaining: Dict[int, float] = {}
        active: Dict[int, Flow] = {}
        now = 0.0
        next_arrival = 0

        while pending[next_arrival:] or active:
            # Admit arrivals due now.
            while next_arrival < len(pending) and (
                not active or pending[next_arrival].start_s <= now
            ):
                flow = pending[next_arrival]
                if flow.start_s > now:
                    now = flow.start_s
                active[flow.flow_id] = flow
                remaining[flow.flow_id] = flow.size_bytes
                next_arrival += 1

            rates = max_min_fair_rates(self.fabric, list(active.values()))

            # Time to the next completion at current rates.
            time_to_finish = min(
                remaining[fid] / rates[fid] for fid in active
            )
            # Time to the next arrival, if any.
            horizon = time_to_finish
            if next_arrival < len(pending):
                horizon = min(
                    horizon, pending[next_arrival].start_s - now
                )
            horizon = max(horizon, 0.0)

            # Advance.
            for fid in list(active):
                remaining[fid] -= rates[fid] * horizon
            now += horizon

            # Retire finished flows (tolerance for float error).
            for fid in sorted(active):
                if remaining[fid] <= 1e-6:
                    active[fid].finish_s = now
                    del active[fid]
                    del remaining[fid]
        return flows


def transfer_time_s(
    fabric: Fabric, src: str, dst: str, size_bytes: float
) -> float:
    """Completion time of a single flow on an otherwise idle fabric."""
    flow = Flow(0, src, dst, size_bytes)
    FlowSimulator(fabric).run([flow])
    assert flow.finish_s is not None
    return flow.finish_s

"""Flow-level bandwidth allocation and transfer-time simulation.

The shuffle and disaggregation experiments need "how long does this set
of bulk transfers take", not per-packet detail. This module provides:

- :func:`max_min_fair_rates`: progressive-filling max-min fair allocation
  of concurrent flows over a fabric (reference implementation, pure
  Python, unchanged semantics).
- :class:`FlowSimulator`: event-driven completion of a static flow set,
  re-solving rates as flows finish (the standard flow-level DC model).
  The simulator uses a vectorized incremental solver: link capacities
  are cached per fabric, the link x flow incidence matrix is built once
  per run, and flows enter/leave via boolean masks, so each re-solve is
  a handful of numpy operations instead of a Python scan over every
  link and flow.
- :class:`IncrementalMaxMinSolver`: a persistent allocation over a
  *faultable* fabric. Where the naive approach reroutes every flow and
  re-solves the whole fabric each time a fault bumps
  :attr:`Fabric.state_version`, this solver repairs only the pairs
  whose ECMP path set the fault actually changed and re-solves only the
  connected component of flows sharing links with the rerouted ones --
  bit-for-bit equal to the full solve, because max-min components solve
  independently with identical arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.network.routing import ecmp_path_for_flow, ecmp_paths, path_links
from repro.network.topology import Fabric


def _fabric_link_capacities(fabric: Fabric) -> Dict[Tuple[str, str], float]:
    """Capacity in bytes/s per canonical *up* link key, cached on the fabric.

    The cache is stashed on the fabric instance and fingerprinted by the
    edge count plus the fabric's dynamic link-state version, so adding
    or removing links invalidates it, and so does failing or restoring
    one (``Fabric.fail_link`` both bumps the version and drops the
    cache). Links that are currently down carry no entry, so a flow
    whose pre-assigned path crosses one fails loudly instead of
    transferring over a dead link. Editing a link *rate* in place (same
    edge count, same state version) is invisible; call
    :func:`invalidate_link_capacity_cache` after such a mutation.
    """
    fingerprint = (fabric.graph.number_of_edges(), fabric.state_version)
    cache = getattr(fabric, "_repro_capacity_cache", None)
    if cache is not None and cache[0] == fingerprint:
        return cache[1]
    caps = {
        (a, b) if a <= b else (b, a): data["rate_gbps"] * 1e9 / 8.0
        for a, b, data in fabric.active_graph().edges(data=True)
    }
    fabric._repro_capacity_cache = (fingerprint, caps)
    return caps


def invalidate_link_capacity_cache(fabric: Fabric) -> None:
    """Drop capacity-derived caches after an in-place rate edit.

    An in-place ``rate_gbps`` edit changes neither the edge count nor
    the state version, so both the capacity table *and* the cached
    active-graph survivor copy (whose edge data was copied at build
    time) would silently keep the old rate. Both must go: rebuilding
    the capacity table from a stale ``active_graph()`` copy would
    reproduce exactly the stale-read window this call exists to close.
    """
    if hasattr(fabric, "_repro_capacity_cache"):
        del fabric._repro_capacity_cache
    if hasattr(fabric, "_active_cache"):
        del fabric._active_cache


@dataclass
class Flow:
    """One bulk transfer.

    ``path`` is filled in by the simulator (ECMP) unless provided.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_s: float = 0.0
    path: Optional[List[str]] = None
    finish_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TopologyError(f"flow {self.flow_id}: size must be positive")
        if self.start_s < 0:
            raise TopologyError(f"flow {self.flow_id}: negative start")


def max_min_fair_rates(
    fabric: Fabric, flows: List[Flow]
) -> Dict[int, float]:
    """Max-min fair rates (bytes/s) via progressive filling.

    Each flow follows its (already-assigned) path; link capacity is the
    link rate in bytes/s. Classic algorithm: repeatedly find the most
    constrained link, freeze its flows at the fair share, remove, repeat.
    """
    active: Dict[int, Flow] = {}
    for flow in flows:
        if flow.path is None:
            raise TopologyError(f"flow {flow.flow_id}: path not assigned")
        active[flow.flow_id] = flow

    remaining_capacity: Dict[Tuple[str, str], float] = {}
    link_flows: Dict[Tuple[str, str], set] = {}
    for flow in active.values():
        for link in path_links(flow.path):
            if link not in remaining_capacity:
                a, b = link
                remaining_capacity[link] = fabric.link_rate_gbps(a, b) * 1e9 / 8.0
                link_flows[link] = set()
            link_flows[link].add(flow.flow_id)

    rates: Dict[int, float] = {}
    unfrozen = set(active)
    while unfrozen:
        # Fair share each link could give its unfrozen flows.
        best_link, best_share = None, float("inf")
        for link, members in link_flows.items():
            live = members & unfrozen
            if not live:
                continue
            share = remaining_capacity[link] / len(live)
            if share < best_share:
                best_link, best_share = link, share
        if best_link is None:
            # Flows whose links all vanished (shouldn't happen) get inf.
            for fid in unfrozen:
                rates[fid] = float("inf")
            break
        # Freeze the bottleneck link's flows at the fair share.
        for fid in sorted(link_flows[best_link] & unfrozen):
            rates[fid] = best_share
            unfrozen.discard(fid)
            for link in path_links(active[fid].path):
                remaining_capacity[link] -= best_share
                # Numerical guard.
                if remaining_capacity[link] < 0:
                    remaining_capacity[link] = 0.0
    return rates


class IncrementalMaxMinSolver:
    """Max-min fair allocation repaired incrementally under fabric faults.

    Holds a static flow set routed (ECMP) over a live
    :class:`~repro.network.topology.Fabric` and keeps
    :attr:`allocations` -- ``{flow_id: rate_bytes_per_s}`` -- equal,
    bit for bit, to what a from-scratch reroute-everything +
    :func:`max_min_fair_rates` solve would produce after every fault.

    Mutate the fabric *through the solver* (:meth:`fail_link`,
    :meth:`restore_link`, :meth:`fail_node`, :meth:`restore_node`): the
    solver applies the fabric mutation, then repairs only the pairs
    whose ECMP path set actually changed and re-solves only the flows
    sharing links (transitively) with the rerouted ones. Equality with
    the full solve rests on two invariants:

    - a flow's ECMP path set changes only if the failed element lies on
      one of its equal-cost paths (failing: removal cannot create
      shortest paths) or the restored link offers a path no longer than
      the current shortest (restoring: any new shortest path must cross
      the new link);
    - progressive filling decomposes over connected components of the
      flow/link sharing graph: a component's freeze order, fair shares
      and capacity subtractions involve only its own links, so solving
      an affected component's flows alone (in input order) replays the
      full solve's arithmetic exactly.

    Full-solve fallbacks (counted in :attr:`full_solves`): construction,
    :meth:`restore_node` (which resurrects an unknown subset of links),
    and any externally bumped :attr:`Fabric.state_version` detected at
    the next mutation (the same staleness protocol the capacity cache
    uses). Everything else is an incremental repair (counted in
    :attr:`incremental_repairs`).

    Pass an observability metrics ``registry``
    (:attr:`~repro.engine.observability.Observability.registry`) to
    mirror both counters into ``flows.incremental.full_solves`` and
    ``flows.incremental.repairs``, so instrumented runs
    (``python -m repro trace``) report the repair/fallback split.
    """

    def __init__(
        self,
        fabric: Fabric,
        flows: List[Flow],
        registry: Optional[object] = None,
    ) -> None:
        self.fabric = fabric
        self.flows = list(flows)
        self._flows_by_id: Dict[int, Flow] = {}
        for flow in self.flows:
            if flow.flow_id in self._flows_by_id:
                raise TopologyError(f"duplicate flow id {flow.flow_id}")
            self._flows_by_id[flow.flow_id] = flow
        self.allocations: Dict[int, float] = {}
        self.full_solves = 0
        self.incremental_repairs = 0
        self._registry = registry
        self._full_solve()

    # -- fabric mutations ----------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        """Fail the ``a``--``b`` link and repair the affected flows."""
        self._ensure_synced()
        before = self.fabric.state_version
        self.fabric.fail_link(a, b)
        if self.fabric.state_version == before:  # idempotent re-fail
            return
        # Removal cannot create equal-cost paths, so only pairs with the
        # link on one of their cached ECMP paths can change.
        dirty = set(self._link_pairs.get(Fabric.link_key(a, b), ()))
        self._repair(dirty)

    def restore_link(self, a: str, b: str) -> None:
        """Restore the ``a``--``b`` link and repair the affected flows."""
        self._ensure_synced()
        before = self.fabric.state_version
        self.fabric.restore_link(a, b)
        if self.fabric.state_version == before:  # idempotent re-restore
            return
        if not self.fabric.link_is_up(a, b):
            # An endpoint is still down: the active topology is
            # unchanged, only the version moved.
            self._version = self.fabric.state_version
            self._count("repairs")
            return
        self._repair(self._pairs_reached_by(a, b))

    def fail_node(self, node: str) -> None:
        """Fail ``node`` (and implicitly its links); repair affected flows."""
        self._ensure_synced()
        before = self.fabric.state_version
        self.fabric.fail_node(node)
        if self.fabric.state_version == before:
            return
        dirty = set(self._node_pairs.get(node, ()))
        self._repair(dirty)

    def restore_node(self, node: str) -> None:
        """Restore ``node``; falls back to a full solve.

        A node restore resurrects every one of its links that is not
        independently failed, which can shorten paths between arbitrary
        pairs; the bounded-impact argument the link events use does not
        apply, so this is a (counted) full-solve fallback.
        """
        self._ensure_synced()
        before = self.fabric.state_version
        self.fabric.restore_node(node)
        if self.fabric.state_version == before:
            return
        self._full_solve()

    def refresh(self) -> None:
        """Resync after external fabric mutations (full solve if stale)."""
        self._ensure_synced()

    # -- internals -----------------------------------------------------------

    def _ensure_synced(self) -> None:
        if self._version != self.fabric.state_version:
            self._full_solve()

    def _count(self, kind: str) -> None:
        """Bump the local counter and (if attached) its registry mirror."""
        if kind == "full_solves":
            self.full_solves += 1
        else:
            self.incremental_repairs += 1
        if self._registry is not None:
            self._registry.counter(f"flows.incremental.{kind}").inc()

    def _full_solve(self) -> None:
        fabric = self.fabric
        self._pair_paths: Dict[Tuple[str, str], List[List[str]]] = {}
        self._pair_flows: Dict[Tuple[str, str], List[int]] = {}
        self._link_pairs: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        self._node_pairs: Dict[str, Set[Tuple[str, str]]] = {}
        self._link_flows: Dict[Tuple[str, str], Set[int]] = {}
        for flow in self.flows:
            pair = (flow.src, flow.dst)
            paths = self._pair_paths.get(pair)
            if paths is None:
                paths = ecmp_paths(fabric, flow.src, flow.dst)
                self._pair_paths[pair] = paths
                self._pair_flows[pair] = []
                self._register_pair(pair, paths)
            self._pair_flows[pair].append(flow.flow_id)
            flow.path = paths[flow.flow_id % len(paths)]
            for link in path_links(flow.path):
                self._link_flows.setdefault(link, set()).add(flow.flow_id)
        self.allocations = max_min_fair_rates(fabric, self.flows)
        self._version = fabric.state_version
        self._count("full_solves")

    def _register_pair(
        self, pair: Tuple[str, str], paths: List[List[str]]
    ) -> None:
        for path in paths:
            for link in path_links(path):
                self._link_pairs.setdefault(link, set()).add(pair)
            for node in path:
                self._node_pairs.setdefault(node, set()).add(pair)

    def _unregister_pair(
        self, pair: Tuple[str, str], paths: List[List[str]]
    ) -> None:
        for path in paths:
            for link in path_links(path):
                members = self._link_pairs.get(link)
                if members is not None:
                    members.discard(pair)
            for node in path:
                members = self._node_pairs.get(node)
                if members is not None:
                    members.discard(pair)

    def _pairs_reached_by(self, a: str, b: str) -> Set[Tuple[str, str]]:
        """Pairs whose ECMP set the restored ``a``--``b`` link changes.

        Any shortest path that is new since the restore must cross the
        restored link, so a pair is affected iff the best path *via*
        the link is no longer than its current shortest path. Two BFS
        sweeps answer that for every tracked pair at once.
        """
        graph = self.fabric.active_graph()
        dist_a = nx.single_source_shortest_path_length(graph, a)
        dist_b = nx.single_source_shortest_path_length(graph, b)
        inf = float("inf")
        dirty: Set[Tuple[str, str]] = set()
        for pair, paths in self._pair_paths.items():
            s, t = pair
            current = len(paths[0]) - 1
            via = 1 + min(
                dist_a.get(s, inf) + dist_b.get(t, inf),
                dist_b.get(s, inf) + dist_a.get(t, inf),
            )
            if via <= current:
                dirty.add(pair)
        return dirty

    def _repair(self, dirty_pairs: Set[Tuple[str, str]]) -> None:
        fabric = self.fabric
        link_flows = self._link_flows
        seeds: Set[Tuple[str, str]] = set()
        for pair in sorted(dirty_pairs):
            old_paths = self._pair_paths[pair]
            new_paths = ecmp_paths(fabric, pair[0], pair[1])
            if new_paths == old_paths:
                continue
            self._unregister_pair(pair, old_paths)
            self._register_pair(pair, new_paths)
            self._pair_paths[pair] = new_paths
            n_paths = len(new_paths)
            for fid in self._pair_flows[pair]:
                flow = self._flows_by_id[fid]
                new_path = new_paths[fid % n_paths]
                if new_path == flow.path:
                    continue
                old_links = path_links(flow.path)
                new_links = path_links(new_path)
                seeds.update(old_links)
                seeds.update(new_links)
                for link in old_links:
                    members = link_flows.get(link)
                    if members is not None:
                        members.discard(fid)
                for link in new_links:
                    link_flows.setdefault(link, set()).add(fid)
                flow.path = new_path
        if seeds:
            affected = self._affected_closure(seeds)
            subset = [f for f in self.flows if f.flow_id in affected]
            self.allocations.update(max_min_fair_rates(fabric, subset))
        self._count("repairs")
        self._version = fabric.state_version

    def _affected_closure(self, seeds: Set[Tuple[str, str]]) -> Set[int]:
        """Flows sharing links (transitively) with the seed link set.

        Seeds are the union of every rerouted flow's old and new path
        links, so both the component a flow left and the one it joined
        are re-solved; untouched components keep their rates, which the
        full solve would reproduce bit for bit anyway.
        """
        link_flows = self._link_flows
        flows_by_id = self._flows_by_id
        affected: Set[int] = set()
        visited = set(seeds)
        stack = list(seeds)
        while stack:
            link = stack.pop()
            for fid in link_flows.get(link, ()):
                if fid in affected:
                    continue
                affected.add(fid)
                for nxt in path_links(flows_by_id[fid].path):
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append(nxt)
        return affected


@dataclass
class FlowSimulator:
    """Completes a flow set under repeatedly re-solved max-min sharing."""

    fabric: Fabric
    assign_paths: bool = True

    def run(self, flows: List[Flow]) -> List[Flow]:
        """Simulate all flows to completion; returns them with finish times.

        Events are flow arrivals and completions; between events, rates
        are constant at the max-min solution for the active set. The
        incidence matrix over every flow's path is built once up front;
        per event only the active mask changes and the solve is fully
        vectorized.
        """
        if not flows:
            return []
        for flow in flows:
            if self.assign_paths and flow.path is None:
                flow.path = ecmp_path_for_flow(
                    self.fabric, flow.src, flow.dst, flow.flow_id
                )
            elif flow.path is None:
                raise TopologyError(
                    f"flow {flow.flow_id}: no path and path assignment disabled"
                )

        pending = sorted(flows, key=lambda f: (f.start_s, f.flow_id))
        n = len(pending)

        caps_by_link = _fabric_link_capacities(self.fabric)

        # Link universe across all paths, and per-flow link indices.
        link_index: Dict[Tuple[str, str], int] = {}
        per_flow_links: List[List[int]] = []
        for flow in pending:
            idxs = []
            for link in path_links(flow.path):
                pos = link_index.get(link)
                if pos is None:
                    if link not in caps_by_link:
                        raise TopologyError(f"no link {link[0]}--{link[1]}")
                    pos = link_index[link] = len(link_index)
                idxs.append(pos)
            per_flow_links.append(idxs)
        n_links = len(link_index)

        caps = np.empty(n_links, dtype=np.float64)
        for link, pos in link_index.items():
            caps[pos] = caps_by_link[link]

        # Dense flow x link incidence, built once. Flows enter and leave
        # the solve via the ``active`` mask; the matrix never changes.
        incidence = np.zeros((n, n_links), dtype=np.float64)
        for row, idxs in enumerate(per_flow_links):
            incidence[row, idxs] = 1.0
        on_link = incidence.astype(bool)

        active = np.zeros(n, dtype=bool)
        remaining = np.zeros(n, dtype=np.float64)
        rates = np.zeros(n, dtype=np.float64)

        now = 0.0
        next_arrival = 0
        n_active = 0

        while next_arrival < n or n_active:
            # Admit arrivals due now (jump the clock if the fabric idles).
            while next_arrival < n and (
                n_active == 0 or pending[next_arrival].start_s <= now
            ):
                flow = pending[next_arrival]
                if flow.start_s > now:
                    now = flow.start_s
                active[next_arrival] = True
                remaining[next_arrival] = flow.size_bytes
                next_arrival += 1
                n_active += 1

            _progressive_fill(active, incidence, on_link, caps, rates)

            act = np.nonzero(active)[0]
            act_rates = rates[act]
            starved = act[act_rates == 0.0]
            if starved.size:
                flow = pending[int(starved[0])]
                raise TopologyError(
                    f"flow {flow.flow_id}: max-min rate is zero "
                    f"({flow.src}->{flow.dst} crosses a zero-capacity "
                    "link), so the transfer would never finish"
                )

            # Time to the next completion at current rates; an infinite
            # rate (a path with no links) completes instantly.
            deliverable = remaining[act]
            time_to_finish = float(np.min(deliverable / act_rates))
            horizon = time_to_finish
            if next_arrival < n:
                horizon = min(horizon, pending[next_arrival].start_s - now)
            horizon = max(horizon, 0.0)

            # Advance.
            delta = act_rates * horizon
            infinite = np.isinf(act_rates)
            if infinite.any():
                delta = np.where(infinite, deliverable, delta)
            rem_act = deliverable - delta
            remaining[act] = rem_act
            now += horizon

            # Retire finished flows (tolerance for float error).
            finished = act[rem_act <= 1e-6]
            for pos in finished:
                pending[int(pos)].finish_s = now
            active[finished] = False
            n_active -= int(finished.size)
        return flows


def _progressive_fill(
    active: "np.ndarray",
    incidence: "np.ndarray",
    on_link: "np.ndarray",
    caps: "np.ndarray",
    rates: "np.ndarray",
) -> None:
    """Vectorized progressive filling over the ``active`` flow subset.

    Writes max-min fair rates (bytes/s) for active flows into ``rates``
    in place. Same algorithm as :func:`max_min_fair_rates`: repeatedly
    find the most constrained link, freeze its flows at the fair share,
    subtract, repeat. Exact float-tie bottleneck ordering may differ
    from the reference scan, but the max-min allocation is unique, so
    rates agree to rounding.
    """
    rates[:] = 0.0
    n_unfrozen = int(active.sum())
    if n_unfrozen == 0:
        return
    unfrozen = active.copy()
    cap = caps.astype(np.float64, copy=True)
    # Live (unfrozen) flow count per link; matmul once, then update
    # incrementally as flows freeze.
    nlive = unfrozen.astype(np.float64) @ incidence
    shares = np.empty_like(cap)
    inf = np.inf
    while True:
        shares.fill(inf)
        np.divide(cap, nlive, out=shares, where=nlive > 0.5)
        share = float(shares[int(shares.argmin())])
        if share == inf:
            # Flows whose paths cross no live link (shouldn't happen on a
            # connected fabric) are unconstrained.
            rates[unfrozen] = inf
            return
        # Freeze every link exactly tied at the bottleneck share in one
        # round: as one tied link's flows freeze at share s, a tied
        # peer's fair share stays (c - k*s)/(n - k) = s, so the batch is
        # equivalent to freezing them one at a time.
        members = unfrozen & on_link[:, shares == share].any(axis=1)
        rates[members] = share
        n_unfrozen -= int(members.sum())
        unfrozen ^= members
        counts = members.astype(np.float64) @ incidence
        cap -= share * counts
        np.maximum(cap, 0.0, out=cap)
        if n_unfrozen == 0:
            return
        nlive -= counts


def transfer_time_s(
    fabric: Fabric, src: str, dst: str, size_bytes: float
) -> float:
    """Completion time of a single flow on an otherwise idle fabric."""
    flow = Flow(0, src, dst, size_bytes)
    FlowSimulator(fabric).run([flow])
    if flow.finish_s is None:
        raise TopologyError(
            f"flow {flow.flow_id} ({src}->{dst}) has no finish time; "
            "the solver returned without completing it"
        )
    return flow.finish_s

"""Software-defined networking control plane (§IV.A.2).

Models the operational claim the paper quotes from Google: SDN is "a
software control plane that abstracts and manages complexity ... and can
make 10,000 switches look like one". Concretely, we compare the time and
error rate of rolling out a network-wide policy change:

- **legacy**: an admin team configures each switch over CLI, serially
  per admin, with a per-box misconfiguration probability that forces
  rework;
- **SDN**: a controller compiles the policy once and pushes flow rules
  to all switches in parallel over its control channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.randomness import RandomStream
from repro.errors import ModelError, TopologyError
from repro.network.topology import Fabric


@dataclass
class FlowRule:
    """One match-action entry in a switch's flow table."""

    match: str
    action: str
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.match or not self.action:
            raise ModelError("flow rule needs both match and action")


@dataclass
class FlowTable:
    """A switch's flow table with a capacity limit (TCAM size)."""

    capacity: int = 2000
    rules: List[FlowRule] = field(default_factory=list)

    def install(self, rule: FlowRule) -> None:
        """Add a rule; overflowing the TCAM is an error."""
        if len(self.rules) >= self.capacity:
            raise ModelError("flow table full")
        self.rules.append(rule)

    def lookup(self, packet_key: str) -> Optional[FlowRule]:
        """Highest-priority rule whose match equals the packet key."""
        candidates = [r for r in self.rules if r.match == packet_key]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.priority)

    def clear(self) -> None:
        """Drop all rules."""
        self.rules.clear()

    def __len__(self) -> int:
        return len(self.rules)


@dataclass
class SdnController:
    """A centralized controller managing every switch in a fabric.

    ``compile_s`` is the one-off policy compilation; ``rule_install_s``
    the per-rule install latency on a switch; ``parallelism`` the number
    of simultaneous control-channel sessions (hyperscale controllers push
    to thousands of switches at once).
    """

    fabric: Fabric
    compile_s: float = 2.0
    rule_install_s: float = 0.002
    parallelism: int = 1000
    tables: Dict[str, FlowTable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ModelError("parallelism must be >= 1")
        for switch in self.fabric.switches:
            self.tables[switch] = FlowTable()

    def table(self, switch: str) -> FlowTable:
        """The flow table of ``switch``."""
        if switch not in self.tables:
            raise TopologyError(f"unknown switch: {switch}")
        return self.tables[switch]

    def install_path(self, path: List[str], match: str) -> int:
        """Install forwarding rules for ``match`` along ``path``.

        Returns the number of rules installed (one per on-path switch).
        """
        installed = 0
        for previous, node, nxt in zip(path, path[1:], path[2:] + [None]):
            if node not in self.tables:
                continue  # hosts don't hold rules
            out = nxt if nxt is not None else path[-1]
            self.tables[node].install(
                FlowRule(match=match, action=f"fwd:{out}")
            )
            installed += 1
        return installed

    def policy_rollout_s(self, rules_per_switch: int) -> float:
        """Wall-clock time to push a policy to the whole fabric.

        Compile once, then install ``rules_per_switch`` on every switch,
        ``parallelism`` switches at a time.
        """
        if rules_per_switch < 1:
            raise ModelError("need at least one rule per switch")
        n_switches = len(self.fabric.switches)
        per_switch = rules_per_switch * self.rule_install_s
        waves = -(-n_switches // self.parallelism)  # ceil division
        return self.compile_s + waves * per_switch

    def reactive_flow_setup_s(self, path: List[str], rtt_to_controller_s: float = 0.001) -> float:
        """Latency of a reactive (first-packet) flow setup.

        The first packet punts to the controller, which installs rules on
        every on-path switch in parallel; subsequent packets fly.
        """
        on_path_switches = [n for n in path if n in self.tables]
        if not on_path_switches:
            raise TopologyError("path traverses no managed switch")
        return rtt_to_controller_s + self.rule_install_s


@dataclass
class LegacyManagement:
    """Per-box CLI management by a human team (the pre-SDN baseline)."""

    n_admins: int = 4
    config_time_per_switch_s: float = 600.0  # ten careful minutes per box
    error_probability: float = 0.03  # chance a box needs rework

    def __post_init__(self) -> None:
        if self.n_admins < 1:
            raise ModelError("need at least one admin")
        if not 0.0 <= self.error_probability < 1.0:
            raise ModelError("error probability must be in [0, 1)")

    def policy_rollout_s(
        self, n_switches: int, rng: Optional[RandomStream] = None
    ) -> float:
        """Time for the team to reconfigure ``n_switches`` boxes.

        Each misconfigured box is redone (possibly repeatedly). With no
        RNG, uses the expected rework count (deterministic mode).
        """
        if n_switches < 1:
            raise ModelError("need at least one switch")
        if rng is None:
            expected_visits = 1.0 / (1.0 - self.error_probability)
            total = n_switches * expected_visits * self.config_time_per_switch_s
            return total / self.n_admins
        visits = 0
        for _ in range(n_switches):
            visits += 1
            while rng.uniform() < self.error_probability:
                visits += 1
        return visits * self.config_time_per_switch_s / self.n_admins


def management_speedup(
    fabric: Fabric,
    rules_per_switch: int = 10,
    legacy: Optional[LegacyManagement] = None,
) -> float:
    """How much faster SDN rolls out a policy than legacy CLI management."""
    controller = SdnController(fabric)
    legacy = legacy or LegacyManagement()
    sdn_time = controller.policy_rollout_s(rules_per_switch)
    legacy_time = legacy.policy_rollout_s(len(fabric.switches))
    return legacy_time / sdn_time

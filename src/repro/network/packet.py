"""Packet-level queueing simulation on the DES kernel.

Where the flow-level model answers "how long do these bulk transfers
take", this module answers "what is the latency distribution of small
messages through a loaded path" -- the question behind tail-latency
claims. Each traversed link is an output queue: serialize at link rate
behind whatever is already queued, plus a fixed propagation/switching
delay per hop.

Used by the flow-vs-packet ablation bench and the Catapult experiment's
network leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import RandomStream, Resource, Simulator
from repro.errors import TopologyError
from repro.network.routing import ecmp_path_for_flow
from repro.network.topology import Fabric


@dataclass
class PacketRecord:
    """The measured life of one packet."""

    packet_id: int
    src: str
    dst: str
    size_bytes: float
    sent_s: float
    received_s: Optional[float] = None

    @property
    def latency_s(self) -> float:
        """End-to-end latency (raises if the packet has not arrived)."""
        if self.received_s is None:
            raise TopologyError(f"packet {self.packet_id} still in flight")
        return self.received_s - self.sent_s


class PacketNetwork:
    """Store-and-forward packet transport over a fabric.

    One :class:`~repro.engine.Resource` per directed link serializes
    packets; ``hop_delay_s`` models propagation plus switching latency.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        hop_delay_s: float = 0.5e-6,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.hop_delay_s = hop_delay_s
        self._ports: Dict[Tuple[str, str], Resource] = {}
        self.delivered: List[PacketRecord] = []

    def _port(self, a: str, b: str) -> Resource:
        key = (a, b)
        if key not in self._ports:
            self._ports[key] = Resource(self.sim, capacity=1)
        return self._ports[key]

    def send(
        self,
        packet_id: int,
        src: str,
        dst: str,
        size_bytes: float,
        path: Optional[List[str]] = None,
    ) -> PacketRecord:
        """Inject a packet; returns its (live) record."""
        record = PacketRecord(packet_id, src, dst, size_bytes, self.sim.now)
        chosen = path or ecmp_path_for_flow(self.fabric, src, dst, packet_id)
        self.sim.spawn(self._transit(record, chosen), name=f"pkt{packet_id}")
        return record

    def _transit(self, record: PacketRecord, path: List[str]):
        for a, b in zip(path, path[1:]):
            port = self._port(a, b)
            yield port.acquire()
            rate_bytes_per_s = self.fabric.link_rate_gbps(a, b) * 1e9 / 8.0
            yield self.sim.timeout(record.size_bytes / rate_bytes_per_s)
            port.release()
            yield self.sim.timeout(self.hop_delay_s)
        record.received_s = self.sim.now
        self.delivered.append(record)


def poisson_traffic_latencies(
    fabric: Fabric,
    src: str,
    dst: str,
    rate_pps: float,
    n_packets: int,
    packet_bytes: float = 1_500.0,
    seed: int = 7,
    hop_delay_s: float = 0.5e-6,
) -> List[float]:
    """Latency samples for a Poisson packet stream between two hosts."""
    if rate_pps <= 0 or n_packets < 1:
        raise TopologyError("need positive rate and at least one packet")
    sim = Simulator()
    net = PacketNetwork(sim, fabric, hop_delay_s=hop_delay_s)
    rng = RandomStream(seed, "arrivals")

    def source(sim):
        for pid in range(n_packets):
            net.send(pid, src, dst, packet_bytes)
            yield sim.timeout(rng.exponential(1.0 / rate_pps))

    sim.spawn(source(sim))
    sim.run()
    if len(net.delivered) != n_packets:
        raise TopologyError("not all packets were delivered")
    return [p.latency_s for p in net.delivered]

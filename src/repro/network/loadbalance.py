"""Load-balanced path assignment: ECMP hashing vs least-loaded selection.

ECMP hashes flows onto equal-cost paths obliviously; elephant flows
collide and hot links emerge while parallel paths idle -- the classic
datacenter pathology SDN-era schedulers (Hedera et al.) fixed by placing
large flows on the currently-least-loaded path. Both assigners share the
ECMP path set, so the comparison isolates the *selection* policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import Observability
from repro.errors import TopologyError
from repro.network.flows import Flow, FlowSimulator
from repro.network.routing import ecmp_paths, path_links
from repro.network.topology import Fabric


def assign_paths_ecmp(fabric: Fabric, flows: List[Flow]) -> None:
    """Hash-based oblivious assignment (the baseline)."""
    for flow in flows:
        paths = ecmp_paths(fabric, flow.src, flow.dst)
        flow.path = paths[flow.flow_id % len(paths)]


def assign_paths_least_loaded(fabric: Fabric, flows: List[Flow]) -> None:
    """Greedy congestion-aware assignment.

    Flows are placed largest-first; each takes the candidate path with
    the lexicographically smallest descending load vector -- i.e. the
    least-loaded bottleneck, with ties (such as shared access links)
    broken by the next-most-loaded link, so same-pair flows still spread
    across spines.
    """
    load: Dict[Tuple[str, str], float] = {}
    for flow in sorted(flows, key=lambda f: (-f.size_bytes, f.flow_id)):
        paths = ecmp_paths(fabric, flow.src, flow.dst)
        best_path, best_cost = None, None
        for path in paths:
            cost = tuple(
                sorted(
                    (load.get(link, 0.0) for link in path_links(path)),
                    reverse=True,
                )
            )
            if best_cost is None or cost < best_cost:
                best_path, best_cost = path, cost
        assert best_path is not None
        flow.path = best_path
        for link in path_links(best_path):
            load[link] = load.get(link, 0.0) + flow.size_bytes


def link_load_bytes(fabric: Fabric, flows: List[Flow]) -> Dict[Tuple[str, str], float]:
    """Bytes assigned per link for a path-assigned flow set."""
    load: Dict[Tuple[str, str], float] = {}
    for flow in flows:
        if flow.path is None:
            raise TopologyError(f"flow {flow.flow_id}: path not assigned")
        for link in path_links(flow.path):
            load[link] = load.get(link, 0.0) + flow.size_bytes
    return load


def load_imbalance(fabric: Fabric, flows: List[Flow]) -> float:
    """Max link load divided by mean link load (1.0 = perfectly even).

    Only counts links that carry at least one flow.
    """
    load = link_load_bytes(fabric, flows)
    if not load:
        raise TopologyError("no loaded links")
    values = list(load.values())
    return max(values) / (sum(values) / len(values))


@dataclass
class AssignmentComparison:
    """Completion-time and balance comparison of the two assigners."""

    ecmp_completion_s: float
    least_loaded_completion_s: float
    ecmp_imbalance: float
    least_loaded_imbalance: float

    @property
    def speedup(self) -> float:
        """How much faster the congestion-aware assignment finishes."""
        return self.ecmp_completion_s / self.least_loaded_completion_s


def _record_flows(
    observability: Optional[Observability],
    flows: List[Flow],
    imbalance: float,
    policy: str,
) -> None:
    """Publish per-flow spans and balance gauges for one assigner run."""
    if observability is None:
        return
    last_finish = 0.0
    for flow in flows:
        finish = flow.finish_s if flow.finish_s is not None else flow.start_s
        last_finish = max(last_finish, finish)
        observability.spans.record(
            f"flow.{policy}",
            flow.start_s,
            finish,
            tags={
                "subsystem": "network.loadbalance",
                "flow": str(flow.flow_id),
                "src": flow.src,
                "dst": flow.dst,
                "policy": policy,
            },
        )
        observability.registry.histogram(f"loadbalance.fct_s.{policy}").observe(
            max(finish - flow.start_s, 1e-12)
        )
    registry = observability.registry
    registry.counter(f"loadbalance.flows.{policy}").inc(len(flows))
    registry.gauge(f"loadbalance.imbalance.{policy}").set(
        last_finish, imbalance
    )


def compare_assignment_policies(
    fabric: Fabric,
    flow_specs: List[Tuple[str, str, float]],
    observability: Optional[Observability] = None,
) -> AssignmentComparison:
    """Run the same flow set under both assigners.

    ``flow_specs`` is a list of (src, dst, size_bytes). With an
    :class:`~repro.engine.Observability` attached, each run emits one
    span per flow plus flow-completion-time histograms and imbalance
    gauges, keyed by policy.
    """
    if not flow_specs:
        raise TopologyError("need at least one flow")

    def build() -> List[Flow]:
        return [
            Flow(fid, src, dst, size)
            for fid, (src, dst, size) in enumerate(flow_specs)
        ]

    ecmp_flows = build()
    assign_paths_ecmp(fabric, ecmp_flows)
    ecmp_imbalance = load_imbalance(fabric, ecmp_flows)
    FlowSimulator(fabric, assign_paths=False).run(ecmp_flows)
    _record_flows(observability, ecmp_flows, ecmp_imbalance, "ecmp")

    ll_flows = build()
    assign_paths_least_loaded(fabric, ll_flows)
    ll_imbalance = load_imbalance(fabric, ll_flows)
    FlowSimulator(fabric, assign_paths=False).run(ll_flows)
    _record_flows(observability, ll_flows, ll_imbalance, "least_loaded")

    return AssignmentComparison(
        ecmp_completion_s=max(f.finish_s for f in ecmp_flows),
        least_loaded_completion_s=max(f.finish_s for f in ll_flows),
        ecmp_imbalance=ecmp_imbalance,
        least_loaded_imbalance=ll_imbalance,
    )

"""Data-center fabric topologies.

Provides the two mainstream Clos fabrics (fat-tree and leaf-spine) and a
disaggregated variant where CPU, memory and storage pools attach directly
to the fabric (§IV.A.3 "deconstructing the data center"). Topologies are
networkx graphs wrapped with role metadata and capacity bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import networkx as nx

from repro.errors import TopologyError


#: Node roles used across the library.
ROLE_HOST = "host"
ROLE_TOR = "tor"  # top-of-rack / leaf
ROLE_AGG = "agg"  # aggregation / spine
ROLE_CORE = "core"
ROLE_POOL = "pool"  # disaggregated resource pool


@dataclass
class Fabric:
    """A capacitated data-center network.

    Wraps an undirected :class:`networkx.Graph`; each edge carries
    ``rate_gbps``; each node carries ``role``.

    Links and nodes also carry *dynamic* up/down state for runtime fault
    injection (:mod:`repro.engine.faults`): :meth:`fail_link` /
    :meth:`fail_node` mark elements down without structurally editing the
    graph, :meth:`active_graph` exposes the surviving topology for
    routing, and every state change bumps :attr:`state_version`, which
    invalidates the flow solver's capacity cache. A fabric with nothing
    failed behaves (and routes) exactly as before this state existed.
    """

    name: str
    graph: nx.Graph = field(default_factory=nx.Graph)
    _down_links: set = field(
        default_factory=set, init=False, repr=False, compare=False
    )
    _down_nodes: set = field(
        default_factory=set, init=False, repr=False, compare=False
    )
    _state_version: int = field(
        default=0, init=False, repr=False, compare=False
    )

    def add_node(self, node: str, role: str) -> None:
        """Add a node with a role."""
        if node in self.graph:
            raise TopologyError(f"duplicate node: {node}")
        self.graph.add_node(node, role=role)

    def add_link(self, a: str, b: str, rate_gbps: float) -> None:
        """Add a bidirectional link of ``rate_gbps``."""
        if rate_gbps <= 0:
            raise TopologyError(f"link {a}--{b}: rate must be positive")
        for endpoint in (a, b):
            if endpoint not in self.graph:
                raise TopologyError(f"unknown endpoint: {endpoint}")
        if self.graph.has_edge(a, b):
            raise TopologyError(f"duplicate link {a}--{b}")
        self.graph.add_edge(a, b, rate_gbps=rate_gbps)

    # -- dynamic link/node state (fault injection) -------------------------

    @staticmethod
    def link_key(a: str, b: str) -> Tuple[str, str]:
        """Canonical (sorted-endpoint) key for the link between two nodes."""
        return (a, b) if a <= b else (b, a)

    @property
    def state_version(self) -> int:
        """Monotonic counter bumped on every up/down state change.

        Caches keyed on the fabric (e.g. the flow solver's link-capacity
        table) include this in their fingerprint so a link failure
        invalidates them even though the edge count is unchanged.
        """
        return self._state_version

    def fail_link(self, a: str, b: str) -> None:
        """Mark the ``a``--``b`` link down (idempotent)."""
        if not self.graph.has_edge(a, b):
            raise TopologyError(f"no link {a}--{b} to fail")
        key = self.link_key(a, b)
        if key not in self._down_links:
            self._down_links.add(key)
            self._bump_state()

    def restore_link(self, a: str, b: str) -> None:
        """Bring the ``a``--``b`` link back up (idempotent)."""
        if not self.graph.has_edge(a, b):
            raise TopologyError(f"no link {a}--{b} to restore")
        key = self.link_key(a, b)
        if key in self._down_links:
            self._down_links.discard(key)
            self._bump_state()

    def fail_node(self, node: str) -> None:
        """Mark ``node`` (and implicitly its links) down (idempotent)."""
        if node not in self.graph:
            raise TopologyError(f"unknown node: {node}")
        if node not in self._down_nodes:
            self._down_nodes.add(node)
            self._bump_state()

    def restore_node(self, node: str) -> None:
        """Bring ``node`` back up (idempotent)."""
        if node not in self.graph:
            raise TopologyError(f"unknown node: {node}")
        if node in self._down_nodes:
            self._down_nodes.discard(node)
            self._bump_state()

    def link_is_up(self, a: str, b: str) -> bool:
        """Whether the link exists and neither it nor an endpoint is down."""
        if not self.graph.has_edge(a, b):
            raise TopologyError(f"no link {a}--{b}")
        return (
            self.link_key(a, b) not in self._down_links
            and a not in self._down_nodes
            and b not in self._down_nodes
        )

    def node_is_up(self, node: str) -> bool:
        """Whether ``node`` exists and is not currently failed."""
        if node not in self.graph:
            raise TopologyError(f"unknown node: {node}")
        return node not in self._down_nodes

    @property
    def failed_links(self) -> List[Tuple[str, str]]:
        """Sorted canonical keys of explicitly failed links."""
        return sorted(self._down_links)

    @property
    def failed_nodes(self) -> List[str]:
        """Sorted names of currently failed nodes."""
        return sorted(self._down_nodes)

    def active_graph(self) -> nx.Graph:
        """The surviving topology: up nodes and up links only.

        With nothing failed this returns the underlying graph itself
        (zero-copy, so healthy fabrics route exactly as before); with
        failures it returns a read-only :func:`networkx.restricted_view`
        hiding the down elements, cached per :attr:`state_version`.
        The view shares node and edge data with the underlying graph
        (no per-fault copy of a large fabric), so treat it as
        read-only and re-request it after any topology change.
        """
        if not self._down_links and not self._down_nodes:
            return self.graph
        cached = getattr(self, "_active_cache", None)
        if cached is not None and cached[0] == self._state_version:
            return cached[1]
        survivor = nx.restricted_view(
            self.graph, sorted(self._down_nodes), sorted(self._down_links)
        )
        self._active_cache = (self._state_version, survivor)
        return survivor

    def _bump_state(self) -> None:
        """Advance the state version and drop state-derived caches."""
        self._state_version += 1
        # The flow solver stashes its capacity table on the instance;
        # a state change must drop it even though the edge count is
        # unchanged (see repro.network.flows._fabric_link_capacities).
        if hasattr(self, "_repro_capacity_cache"):
            del self._repro_capacity_cache

    # -- queries -----------------------------------------------------------

    def role(self, node: str) -> str:
        """Role of ``node``."""
        try:
            return self.graph.nodes[node]["role"]
        except KeyError as exc:
            raise TopologyError(f"unknown node: {node}") from exc

    def nodes_with_role(self, role: str) -> List[str]:
        """Sorted nodes having ``role``."""
        return sorted(
            n for n, data in self.graph.nodes(data=True) if data["role"] == role
        )

    @property
    def hosts(self) -> List[str]:
        """All host nodes."""
        return self.nodes_with_role(ROLE_HOST)

    @property
    def switches(self) -> List[str]:
        """All non-host, non-pool nodes."""
        return sorted(
            n
            for n, data in self.graph.nodes(data=True)
            if data["role"] in (ROLE_TOR, ROLE_AGG, ROLE_CORE)
        )

    def link_rate_gbps(self, a: str, b: str) -> float:
        """Rate of the link between ``a`` and ``b``."""
        try:
            return self.graph.edges[a, b]["rate_gbps"]
        except KeyError as exc:
            raise TopologyError(f"no link {a}--{b}") from exc

    def degree(self, node: str) -> int:
        """Number of links at ``node``."""
        return self.graph.degree[node]

    def total_capacity_gbps(self) -> float:
        """Sum of link rates (one direction)."""
        return sum(d["rate_gbps"] for _, _, d in self.graph.edges(data=True))

    def validate(self) -> None:
        """Check connectivity; raises :class:`TopologyError` when broken."""
        if self.graph.number_of_nodes() == 0:
            raise TopologyError("empty fabric")
        if not nx.is_connected(self.graph):
            raise TopologyError("fabric is not connected")

    def bisection_bandwidth_gbps(self) -> float:
        """Worst-case host-partition cut bandwidth (approximated).

        Uses the standard structural estimate: the minimum cut separating
        one half of the hosts from the other. For the regular fabrics
        built here, the host-count-weighted global min-cut via
        Stoer-Wagner on the switch graph is exact enough for the
        design-comparison experiments.
        """
        hosts = self.hosts
        if len(hosts) < 2:
            raise TopologyError("need at least two hosts for bisection")
        half = set(hosts[: len(hosts) // 2])
        # Max-flow between two super-nodes contracted from the halves.
        flow_graph = nx.Graph()
        for a, b, data in self.graph.edges(data=True):
            a2 = "S" if a in half else ("T" if a in set(hosts) - half else a)
            b2 = "S" if b in half else ("T" if b in set(hosts) - half else b)
            if a2 == b2:
                continue
            rate = data["rate_gbps"]
            if flow_graph.has_edge(a2, b2):
                flow_graph.edges[a2, b2]["capacity"] += rate
            else:
                flow_graph.add_edge(a2, b2, capacity=rate)
        value, _ = nx.maximum_flow(flow_graph, "S", "T")
        return float(value)

    def oversubscription(self) -> float:
        """Host access bandwidth divided by bisection bandwidth.

        1.0 is full bisection; >1 means the fabric is oversubscribed.
        """
        access = sum(
            self.link_rate_gbps(h, next(iter(self.graph.neighbors(h))))
            for h in self.hosts
        )
        return access / (2.0 * self.bisection_bandwidth_gbps())


def leaf_spine(
    n_spines: int,
    n_leaves: int,
    hosts_per_leaf: int,
    host_gbps: float = 10.0,
    uplink_gbps: float = 40.0,
) -> Fabric:
    """A two-tier leaf-spine Clos fabric.

    Every leaf connects to every spine with one ``uplink_gbps`` link and
    to ``hosts_per_leaf`` hosts at ``host_gbps``.
    """
    if min(n_spines, n_leaves, hosts_per_leaf) < 1:
        raise TopologyError("leaf-spine dimensions must be >= 1")
    fabric = Fabric(name=f"leafspine-s{n_spines}-l{n_leaves}-h{hosts_per_leaf}")
    for s in range(n_spines):
        fabric.add_node(f"spine{s}", ROLE_AGG)
    for l in range(n_leaves):
        leaf = f"leaf{l}"
        fabric.add_node(leaf, ROLE_TOR)
        for s in range(n_spines):
            fabric.add_link(leaf, f"spine{s}", uplink_gbps)
        for h in range(hosts_per_leaf):
            host = f"host{l}-{h}"
            fabric.add_node(host, ROLE_HOST)
            fabric.add_link(host, leaf, host_gbps)
    fabric.validate()
    return fabric


def fat_tree(k: int, host_gbps: float = 10.0) -> Fabric:
    """The canonical k-ary fat-tree (k even): k pods, (k/2)^2 cores.

    All fabric links run at ``host_gbps`` -- the fat-tree achieves full
    bisection through path multiplicity rather than faster uplinks.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree requires even k >= 2, got {k}")
    half = k // 2
    fabric = Fabric(name=f"fattree-k{k}")
    # Core switches: (k/2)^2, indexed by (i, j).
    for i in range(half):
        for j in range(half):
            fabric.add_node(f"core{i}-{j}", ROLE_CORE)
    for pod in range(k):
        for a in range(half):
            agg = f"agg{pod}-{a}"
            fabric.add_node(agg, ROLE_AGG)
            # Each aggregation switch connects to k/2 cores (row a).
            for j in range(half):
                fabric.add_link(agg, f"core{a}-{j}", host_gbps)
        for t in range(half):
            tor = f"tor{pod}-{t}"
            fabric.add_node(tor, ROLE_TOR)
            for a in range(half):
                fabric.add_link(tor, f"agg{pod}-{a}", host_gbps)
            for h in range(half):
                host = f"host{pod}-{t}-{h}"
                fabric.add_node(host, ROLE_HOST)
                fabric.add_link(host, tor, host_gbps)
    fabric.validate()
    return fabric


def disaggregated_fabric(
    n_cpu_pools: int,
    n_mem_pools: int,
    n_storage_pools: int,
    n_spines: int = 4,
    pool_gbps: float = 100.0,
) -> Fabric:
    """A composable-infrastructure fabric (§IV.A.3).

    Resource pools (CPU, memory, storage) attach directly to a spine
    tier at ``pool_gbps`` -- the "high bandwidth available at all key
    interconnect nodes" premise of the disaggregation vision.
    """
    if min(n_cpu_pools, n_mem_pools, n_storage_pools, n_spines) < 1:
        raise TopologyError("pool and spine counts must be >= 1")
    fabric = Fabric(
        name=f"disagg-c{n_cpu_pools}-m{n_mem_pools}-s{n_storage_pools}"
    )
    for s in range(n_spines):
        fabric.add_node(f"spine{s}", ROLE_AGG)
    pools = (
        [f"cpu-pool{i}" for i in range(n_cpu_pools)]
        + [f"mem-pool{i}" for i in range(n_mem_pools)]
        + [f"storage-pool{i}" for i in range(n_storage_pools)]
    )
    for pool in pools:
        fabric.add_node(pool, ROLE_POOL)
        for s in range(n_spines):
            fabric.add_link(pool, f"spine{s}", pool_gbps)
    fabric.validate()
    return fabric

"""Fabric failure-resilience analysis.

The disaggregation argument of §IV.A.3 assumes the fabric is dependable
enough to put memory on the far side of it. This module quantifies that:
path diversity, tolerance to link/switch failures, and the bandwidth
degradation profile under progressive failures -- comparing fat-tree and
leaf-spine designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.engine.randomness import RandomStream
from repro.errors import TopologyError
from repro.network.topology import Fabric


def without_links(fabric: Fabric, links: List[Tuple[str, str]]) -> Fabric:
    """A copy of ``fabric`` with ``links`` removed."""
    degraded = Fabric(name=f"{fabric.name}-degraded", graph=fabric.graph.copy())
    for a, b in links:
        if not degraded.graph.has_edge(a, b):
            raise TopologyError(f"no link {a}--{b} to fail")
        degraded.graph.remove_edge(a, b)
    return degraded


def without_switches(fabric: Fabric, switches: List[str]) -> Fabric:
    """A copy of ``fabric`` with ``switches`` (and their links) removed."""
    degraded = Fabric(name=f"{fabric.name}-degraded", graph=fabric.graph.copy())
    for switch in switches:
        if switch not in degraded.graph:
            raise TopologyError(f"no node {switch} to fail")
        if degraded.role(switch) == "host":
            raise TopologyError(f"{switch} is a host, not a switch")
        degraded.graph.remove_node(switch)
    return degraded


def hosts_connected(fabric: Fabric) -> bool:
    """Whether every host can still reach every other host."""
    hosts = fabric.hosts
    if len(hosts) < 2:
        return True
    components = list(nx.connected_components(fabric.graph))
    for component in components:
        if hosts[0] in component:
            return all(h in component for h in hosts)
    return False


def min_cut_links_between(fabric: Fabric, src: str, dst: str) -> int:
    """Edge-disjoint path count between two hosts (failure tolerance).

    The fabric survives any ``k-1`` link failures on this pair's routes,
    where ``k`` is the returned value.
    """
    for node in (src, dst):
        if node not in fabric.graph:
            raise TopologyError(f"unknown node: {node}")
    return nx.edge_connectivity(fabric.graph, src, dst)


@dataclass
class DegradationPoint:
    """One step of a progressive-failure experiment."""

    failures: int
    connected: bool
    bisection_gbps: float
    bisection_fraction: float


class DegradationProfile(List[DegradationPoint]):
    """The points of a progressive-failure run, plus stop diagnostics.

    Behaves exactly like the ``List[DegradationPoint]`` it used to be;
    :attr:`exhausted` additionally records whether the run stopped early
    because the candidate link pool ran dry before the requested number
    of failures was reached (previously a silent truncation).
    """

    def __init__(self, points=(), exhausted: bool = False) -> None:
        super().__init__(points)
        self.exhausted = exhausted


def progressive_link_failures(
    fabric: Fabric,
    n_steps: int,
    links_per_step: int = 1,
    seed: int = 13,
    core_only: bool = True,
) -> DegradationProfile:
    """Fail random fabric links step by step; track bisection bandwidth.

    ``core_only`` restricts failures to switch-switch links (host access
    links failing just detaches that host, which is not the interesting
    regime).

    The profile can be shorter than ``n_steps + 1`` points for two
    reasons: the fabric partitioned (the final point has
    ``connected=False``), or the eligible link pool ran out before
    ``n_steps * links_per_step`` links could be failed -- small fabrics
    simply do not have that many core links. The latter case is flagged
    on the returned profile as ``exhausted=True`` (its final step may
    also have failed fewer than ``links_per_step`` links); callers that
    sweep step counts should check it rather than assume every requested
    step ran.
    """
    if n_steps < 1 or links_per_step < 1:
        raise TopologyError("steps and links per step must be >= 1")
    rng = RandomStream(seed, "failures")
    current = Fabric(name=fabric.name, graph=fabric.graph.copy())
    host_set = set(fabric.hosts)
    candidates = [
        tuple(sorted((a, b)))
        for a, b in current.graph.edges
        if not core_only or (a not in host_set and b not in host_set)
    ]
    candidates = rng.shuffle(sorted(candidates))
    baseline = fabric.bisection_bandwidth_gbps()
    points = [DegradationPoint(0, True, baseline, 1.0)]
    failed = 0
    exhausted = False
    for _ in range(n_steps):
        batch, candidates = candidates[:links_per_step], candidates[links_per_step:]
        if not batch:
            exhausted = True
            break
        if len(batch) < links_per_step:
            exhausted = True
        for a, b in batch:
            if current.graph.has_edge(a, b):
                current.graph.remove_edge(a, b)
        failed += len(batch)
        alive = hosts_connected(current)
        bisection = (
            current.bisection_bandwidth_gbps() if alive else 0.0
        )
        points.append(
            DegradationPoint(failed, alive, bisection, bisection / baseline)
        )
        if not alive:
            break
    return DegradationProfile(points, exhausted=exhausted)


def _contracted_bisection_graph(fabric: Fabric) -> nx.Graph:
    """The host-halves S/T contraction used for bisection max-flow.

    Same construction as ``Fabric.bisection_bandwidth_gbps``: one half of
    the hosts collapses into super-source ``S``, the other into
    super-sink ``T``; switches survive, so per-switch what-ifs can reuse
    this (much smaller) graph instead of re-contracting the full fabric.
    """
    hosts = fabric.hosts
    if len(hosts) < 2:
        raise TopologyError("need at least two hosts for bisection")
    half = set(hosts[: len(hosts) // 2])
    other = set(hosts) - half
    flow_graph = nx.Graph()
    for a, b, data in fabric.graph.edges(data=True):
        a2 = "S" if a in half else ("T" if a in other else a)
        b2 = "S" if b in half else ("T" if b in other else b)
        if a2 == b2:
            continue
        rate = data["rate_gbps"]
        if flow_graph.has_edge(a2, b2):
            flow_graph.edges[a2, b2]["capacity"] += rate
        else:
            flow_graph.add_edge(a2, b2, capacity=rate)
    return flow_graph


def single_switch_failure_impact(fabric: Fabric) -> Dict[str, float]:
    """Worst-case bisection fraction remaining after one switch failure.

    Returns per-role worst case: e.g. losing one spine of four should
    leave ~75% of bisection on a leaf-spine.

    Instead of rebuilding the fabric and recomputing bisection from
    scratch per switch, this contracts the host halves into S/T once,
    solves one baseline max flow, and then handles each switch with the
    cheapest sound check:

    - connectivity: a switch that is not an articulation point of the
      fabric graph cannot strand a host, so only articulation points pay
      for a component scan;
    - a switch carrying zero flow in the computed baseline max flow is
      skipped outright -- that same flow remains feasible without the
      switch, so the bisection value cannot drop (removing a node never
      raises it either);
    - everything else re-solves max flow on a
      :func:`networkx.restricted_view` of the small contracted graph (no
      copies of the full fabric).
    """
    hosts = fabric.hosts
    flow_graph = _contracted_bisection_graph(fabric)
    baseline, flow_dict = nx.maximum_flow(flow_graph, "S", "T")
    articulation = set(nx.articulation_points(fabric.graph))
    worst: Dict[str, float] = {}
    for switch in fabric.switches:
        role = fabric.role(switch)
        if switch in articulation:
            remaining = nx.restricted_view(fabric.graph, [switch], [])
            component = nx.node_connected_component(remaining, hosts[0])
            connected = all(h in component for h in hosts)
        else:
            connected = True
        if not connected:
            fraction = 0.0
        elif sum(flow_dict.get(switch, {}).values()) <= 1e-9:
            fraction = 1.0
        else:
            degraded, _ = nx.maximum_flow(
                nx.restricted_view(flow_graph, [switch], []), "S", "T"
            )
            fraction = degraded / baseline
        worst[role] = min(worst.get(role, 1.0), fraction)
    return worst

"""Fabric failure-resilience analysis.

The disaggregation argument of §IV.A.3 assumes the fabric is dependable
enough to put memory on the far side of it. This module quantifies that:
path diversity, tolerance to link/switch failures, and the bandwidth
degradation profile under progressive failures -- comparing fat-tree and
leaf-spine designs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.engine.randomness import RandomStream
from repro.errors import TopologyError
from repro.network.topology import Fabric


def without_links(fabric: Fabric, links: List[Tuple[str, str]]) -> Fabric:
    """A copy of ``fabric`` with ``links`` removed."""
    degraded = Fabric(name=f"{fabric.name}-degraded", graph=fabric.graph.copy())
    for a, b in links:
        if not degraded.graph.has_edge(a, b):
            raise TopologyError(f"no link {a}--{b} to fail")
        degraded.graph.remove_edge(a, b)
    return degraded


def without_switches(fabric: Fabric, switches: List[str]) -> Fabric:
    """A copy of ``fabric`` with ``switches`` (and their links) removed."""
    degraded = Fabric(name=f"{fabric.name}-degraded", graph=fabric.graph.copy())
    for switch in switches:
        if switch not in degraded.graph:
            raise TopologyError(f"no node {switch} to fail")
        if degraded.role(switch) == "host":
            raise TopologyError(f"{switch} is a host, not a switch")
        degraded.graph.remove_node(switch)
    return degraded


def hosts_connected(fabric: Fabric) -> bool:
    """Whether every host can still reach every other host."""
    hosts = fabric.hosts
    if len(hosts) < 2:
        return True
    components = list(nx.connected_components(fabric.graph))
    for component in components:
        if hosts[0] in component:
            return all(h in component for h in hosts)
    return False


def min_cut_links_between(fabric: Fabric, src: str, dst: str) -> int:
    """Edge-disjoint path count between two hosts (failure tolerance).

    The fabric survives any ``k-1`` link failures on this pair's routes,
    where ``k`` is the returned value.
    """
    for node in (src, dst):
        if node not in fabric.graph:
            raise TopologyError(f"unknown node: {node}")
    return nx.edge_connectivity(fabric.graph, src, dst)


@dataclass
class DegradationPoint:
    """One step of a progressive-failure experiment."""

    failures: int
    connected: bool
    bisection_gbps: float
    bisection_fraction: float


def progressive_link_failures(
    fabric: Fabric,
    n_steps: int,
    links_per_step: int = 1,
    seed: int = 13,
    core_only: bool = True,
) -> List[DegradationPoint]:
    """Fail random fabric links step by step; track bisection bandwidth.

    ``core_only`` restricts failures to switch-switch links (host access
    links failing just detaches that host, which is not the interesting
    regime).
    """
    if n_steps < 1 or links_per_step < 1:
        raise TopologyError("steps and links per step must be >= 1")
    rng = RandomStream(seed, "failures")
    current = Fabric(name=fabric.name, graph=fabric.graph.copy())
    host_set = set(fabric.hosts)
    candidates = [
        tuple(sorted((a, b)))
        for a, b in current.graph.edges
        if not core_only or (a not in host_set and b not in host_set)
    ]
    candidates = rng.shuffle(sorted(candidates))
    baseline = fabric.bisection_bandwidth_gbps()
    points = [DegradationPoint(0, True, baseline, 1.0)]
    failed = 0
    for _ in range(n_steps):
        batch, candidates = candidates[:links_per_step], candidates[links_per_step:]
        if not batch:
            break
        for a, b in batch:
            if current.graph.has_edge(a, b):
                current.graph.remove_edge(a, b)
        failed += len(batch)
        alive = hosts_connected(current)
        bisection = (
            current.bisection_bandwidth_gbps() if alive else 0.0
        )
        points.append(
            DegradationPoint(failed, alive, bisection, bisection / baseline)
        )
        if not alive:
            break
    return points


def single_switch_failure_impact(fabric: Fabric) -> Dict[str, float]:
    """Worst-case bisection fraction remaining after one switch failure.

    Returns per-role worst case: e.g. losing one spine of four should
    leave ~75% of bisection on a leaf-spine.
    """
    baseline = fabric.bisection_bandwidth_gbps()
    worst: Dict[str, float] = {}
    for switch in fabric.switches:
        role = fabric.role(switch)
        degraded = without_switches(fabric, [switch])
        if not hosts_connected(degraded):
            fraction = 0.0
        else:
            fraction = degraded.bisection_bandwidth_gbps() / baseline
        worst[role] = min(worst.get(role, 1.0), fraction)
    return worst

"""Vectorized commodity-year Monte-Carlo scenario kernel.

Batch twin of ``core/scenarios.py``'s per-sample loop: the risk-scaled
TRL pace and the Bass imitation coefficient are drawn as two batched
``RandomStream`` calls (all paces, then all coefficients), and the
TRL-ramp + Bass-inverse pipeline is evaluated for every sample in one
numpy pass. Bit-for-bit equal to
:func:`repro._modelref.reference_commodity_year_samples`.
"""

from __future__ import annotations

import numpy as np

from repro.engine.randomness import RandomStream
from repro.errors import ModelError

__all__ = ["commodity_year_samples", "trl_weighted_steps"]


def trl_weighted_steps(trl: int) -> float:
    """Investment-independent step weighting of the TRL ramp to 9.

    Mirrors ``TrlSchedule.years_to_trl``: later levels take longer, so
    step ``i`` (1-based, from ``trl``) weighs ``1 + 0.15 * (trl+i-1)``.
    The ramp duration is ``weighted * pace / acceleration``.
    """
    if not 1 <= trl <= 9:
        raise ModelError(f"TRL must be 1-9, got {trl}")
    if trl >= 9:
        return 0.0
    steps = 9 - trl
    return sum(1.0 + 0.15 * (trl + i - 1) for i in range(1, steps + 1))


def commodity_year_samples(
    trl_2016: int,
    risk: float,
    investment_acceleration: float = 1.0,
    n_samples: int = 1_000,
    seed: int = 29,
    start_year: int = 2016,
    stream_name: str = "mc.scenarios",
) -> np.ndarray:
    """Sample ``n_samples`` commodity years in one batch evaluation.

    Draw order: all lognormal TRL paces, then all normal Bass imitation
    coefficients -- two generator calls total, against the scalar loop's
    two-per-sample interleaving. ``stream_name`` only labels the stream
    (it does not perturb the seed), so callers may pass the technology
    name for trace readability.
    """
    if n_samples < 10:
        raise ModelError("need at least 10 samples")
    if investment_acceleration < 1.0:
        raise ModelError("acceleration cannot be below 1")
    rng = RandomStream(seed, stream_name)
    sigma = 0.05 + 0.5 * risk
    pace = rng.numpy.lognormal(np.log(2.0), sigma, size=n_samples)
    q_raw = rng.numpy.normal(0.4, 0.1 * (1 + risk), size=n_samples)
    weighted = trl_weighted_steps(trl_2016)
    intro = start_year + weighted * pace / investment_acceleration
    q = np.maximum(0.05, q_raw)
    p = 0.02
    numerator = 1.0 - 0.3
    denominator = 1.0 + (q / p) * 0.3
    return intro + -np.log(numerator / denominator) / (p + q)

"""Batched parameter sampling for the Monte-Carlo model engine.

One :class:`~repro.engine.randomness.RandomStream`-seeded generator
draws *all* samples of a parameter in a single vectorized call, instead
of one scalar draw per model evaluation. Batched ``numpy.random``
draws are stream-equivalent to repeated scalar draws of the same
distribution, so the frozen scalar references in :mod:`repro._modelref`
reproduce these samples bit for bit.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.engine.randomness import RandomStream
from repro.errors import ModelError

__all__ = ["uniform_parameter_samples"]


def uniform_parameter_samples(
    ranges: Sequence,
    n_samples: int,
    seed: int,
    name: str = "mc.params",
) -> Dict[str, np.ndarray]:
    """Sample ``n_samples`` uniform vectors over a list of ranges.

    ``ranges`` is a sequence of objects with ``parameter`` / ``low`` /
    ``high`` attributes (e.g. :class:`repro.econ.SensitivityRange`).
    Parameters are drawn in the order given -- one batched uniform draw
    per parameter from a single seeded stream -- so the sample set is
    deterministic in (``ranges`` order, ``n_samples``, ``seed``).
    """
    if n_samples < 1:
        raise ModelError(f"need at least one sample, got {n_samples}")
    if not ranges:
        raise ModelError("need at least one parameter range")
    rng = RandomStream(seed, name)
    out: Dict[str, np.ndarray] = {}
    for bounds in ranges:
        if bounds.parameter in out:
            raise ModelError(
                f"duplicate parameter range: {bounds.parameter!r}"
            )
        out[bounds.parameter] = rng.numpy.uniform(
            bounds.low, bounds.high, size=n_samples
        )
    return out

"""Vectorized traffic-scenario engine: million-user arrival traces.

The roadmap argues that big-data systems must be provisioned against
*realistic* traffic -- diurnal cycles, flash crowds, heavy-tailed
sessions, correlated bursts, skewed client populations -- not uniform
open-loop load. This module is the scenario library behind that: a
declarative :class:`ScenarioSpec` (same idiom as
:class:`~repro.engine.faults.FaultSpec`) composes those components, and
every generator produces a full trace as a handful of numpy batch draws
instead of one Python-level draw per user.

Generation algorithms, all vectorized:

- **Inhomogeneous Poisson arrivals by thinning**
  (:func:`arrival_times`): candidate arrivals are drawn as one
  homogeneous batch at the scenario's peak rate (one Poisson count, one
  uniform batch, one sort) and each candidate is accepted with
  probability ``rate(t) / peak_rate`` using one more uniform batch. The
  deterministic modulation (diurnal curve, flash crowds) is evaluated
  with array transcendentals; the Markov-modulated burst state is a
  tiny scalar loop over state switches (tens of draws) followed by one
  ``searchsorted`` over all candidates.
- **Inter-arrival cumsum** (:func:`poisson_inter_arrivals`): the
  constant-rate fast path used by the service exhibit -- one
  exponential batch, stream-equivalent to the scalar per-request draws
  it replaced.
- **Heavy-tailed sessions** (:func:`session_lengths`): one lognormal or
  Pareto batch.
- **Zipf client skew** (:func:`client_ids`): one uniform batch against
  a precomputed rank CDF.

Determinism contract (the PR-5 pattern): every kernel draws its
variates in a documented batch order from a single seeded
``numpy.random.Generator`` and keeps the scalar model's floating-point
operation order, so batch traces are bit-for-bit equal to the frozen
scalar references in :mod:`repro._modelref`
(``reference_arrival_times`` and friends), verified by the ``traffic``
perf suite and the equivalence tests. Thinning preserves this under
composition: adding a component only changes the *deterministic* rate
function and the peak-rate bound, never the draw order, so composed
scenarios stay reproducible (see DESIGN.md, "Scenario composition
invariants").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = [
    "FlashCrowd",
    "ScenarioSpec",
    "arrival_times",
    "client_ids",
    "peak_rate",
    "poisson_inter_arrivals",
    "rate_curve",
    "scenario_trace",
    "session_lengths",
]

_TWO_PI = 2.0 * np.pi

#: Session-length tail families understood by :func:`session_lengths`.
_SESSION_TAILS = ("lognormal", "pareto")


@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd episode: linear ramp, plateau, exponential decay.

    The episode multiplies the base rate by ``1`` outside its window and
    by up to ``peak_multiplier`` inside it: the excess rate ramps
    linearly from 0 to ``peak_multiplier - 1`` over ``ramp_s`` seconds
    starting at ``start_s``, holds for ``hold_s`` seconds, then decays
    exponentially with time constant ``decay_s``. Overlapping episodes
    compose additively in their excess (a second crowd during the first
    adds load; it does not multiply it).
    """

    start_s: float
    ramp_s: float
    peak_multiplier: float
    decay_s: float
    hold_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ModelError(f"flash crowd start_s must be >= 0, got {self.start_s}")
        if self.ramp_s <= 0:
            raise ModelError(f"flash crowd ramp_s must be positive, got {self.ramp_s}")
        if self.peak_multiplier < 1:
            raise ModelError(
                f"flash crowd peak_multiplier must be >= 1, got {self.peak_multiplier}"
            )
        if self.decay_s <= 0:
            raise ModelError(f"flash crowd decay_s must be positive, got {self.decay_s}")
        if self.hold_s < 0:
            raise ModelError(f"flash crowd hold_s must be >= 0, got {self.hold_s}")


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one traffic scenario.

    Composable components, each off by default so the default spec is a
    plain constant-rate Poisson process:

    - ``diurnal_amplitude`` / ``diurnal_period_s``: sinusoidal rate
      modulation ``1 + a * sin(2*pi*t/T)`` (``0 <= a < 1``).
    - ``flash_crowds``: a tuple of :class:`FlashCrowd` episodes whose
      excess rates add on top of the diurnal curve.
    - ``burst_multiplier`` / ``burst_mean_s`` / ``calm_mean_s``: a
      two-state Markov-modulated Poisson process (MMPP) -- the rate is
      multiplied by ``burst_multiplier`` during exponentially
      distributed burst intervals, giving correlated arrival bursts.
    - ``session_tail`` + its parameters: the heavy-tailed session
      length family (``"lognormal"`` or ``"pareto"``).
    - ``n_clients`` / ``client_skew``: Zipf skew over client ids, the
      regional/hot-client population model.

    Validation mirrors :class:`~repro.engine.faults.FaultSpec`: a bad
    field raises :class:`~repro.errors.ModelError` at construction.
    """

    base_rate_hz: float
    horizon_s: float
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86_400.0
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    burst_multiplier: float = 1.0
    burst_mean_s: float = 0.0
    calm_mean_s: float = 0.0
    session_tail: str = "lognormal"
    session_median_s: float = 1.0
    session_sigma: float = 0.8
    session_shape: float = 1.5
    session_scale_s: float = 0.5
    n_clients: int = 1
    client_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_hz <= 0:
            raise ModelError(f"base_rate_hz must be positive, got {self.base_rate_hz}")
        if self.horizon_s <= 0:
            raise ModelError(f"horizon_s must be positive, got {self.horizon_s}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ModelError(
                "diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.diurnal_period_s <= 0:
            raise ModelError(
                f"diurnal_period_s must be positive, got {self.diurnal_period_s}"
            )
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))
        for crowd in self.flash_crowds:
            if not isinstance(crowd, FlashCrowd):
                raise ModelError(f"flash_crowds entries must be FlashCrowd, got {crowd!r}")
        if self.burst_multiplier < 1:
            raise ModelError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if self.burst_multiplier > 1 and (
            self.burst_mean_s <= 0 or self.calm_mean_s <= 0
        ):
            raise ModelError(
                "bursty scenarios need positive burst_mean_s and calm_mean_s"
            )
        if self.session_tail not in _SESSION_TAILS:
            raise ModelError(
                f"unknown session_tail {self.session_tail!r}; expected one of "
                f"{_SESSION_TAILS}"
            )
        if self.session_median_s <= 0 or self.session_sigma <= 0:
            raise ModelError("lognormal session parameters must be positive")
        if self.session_shape <= 0 or self.session_scale_s <= 0:
            raise ModelError("pareto session parameters must be positive")
        if self.n_clients < 1:
            raise ModelError(f"need at least one client, got {self.n_clients}")
        if self.client_skew < 0:
            raise ModelError(f"client_skew must be >= 0, got {self.client_skew}")

    @property
    def bursty(self) -> bool:
        """Whether the MMPP burst component is active."""
        return self.burst_multiplier > 1.0


def peak_rate(spec: ScenarioSpec) -> float:
    """Upper bound on the instantaneous rate, used as the thinning bound.

    The product of each component's individual maximum: the diurnal
    crest, the sum of all flash-crowd excesses (they compose
    additively), and the burst-state multiplier. Always >= ``rate(t)``
    for every ``t``, which is the thinning correctness condition.
    """
    bound = spec.base_rate_hz * (1.0 + spec.diurnal_amplitude)
    boost = 0.0
    for crowd in spec.flash_crowds:
        boost = boost + (crowd.peak_multiplier - 1.0)
    bound = bound * (1.0 + boost)
    if spec.bursty:
        bound = bound * spec.burst_multiplier
    return bound


def rate_curve(spec: ScenarioSpec, times_s: np.ndarray) -> np.ndarray:
    """The deterministic rate ``lambda(t)`` at each time, in Hz.

    Covers the diurnal curve and the flash crowds -- the components that
    are pure functions of time. The MMPP burst factor is *not* included
    (it is sampled, not deterministic); :func:`arrival_times` applies it
    on top from the sampled state track.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    rate = spec.base_rate_hz * _diurnal_factor(spec, times_s)
    rate = rate * _flash_factor(spec, times_s)
    return rate


def _diurnal_factor(spec: ScenarioSpec, times_s: np.ndarray) -> np.ndarray:
    """Sinusoidal modulation ``1 + a*sin(2*pi*t/T)`` (array of 1s if off)."""
    if spec.diurnal_amplitude == 0.0:
        return np.ones_like(times_s)
    return 1.0 + spec.diurnal_amplitude * np.sin(
        _TWO_PI * (times_s / spec.diurnal_period_s)
    )


def _flash_factor(spec: ScenarioSpec, times_s: np.ndarray) -> np.ndarray:
    """Additive flash-crowd excess on top of 1 (array of 1s if none)."""
    factor = np.ones_like(times_s)
    for crowd in spec.flash_crowds:
        rel = times_s - crowd.start_s
        shape = np.clip(rel / crowd.ramp_s, 0.0, 1.0)
        tail_rel = rel - (crowd.ramp_s + crowd.hold_s)
        shape = np.where(
            tail_rel > 0.0,
            np.exp(-np.maximum(tail_rel, 0.0) / crowd.decay_s),
            shape,
        )
        factor = factor + (crowd.peak_multiplier - 1.0) * shape
    return factor


def _burst_edges(spec: ScenarioSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample the MMPP state-switch times covering the horizon.

    A tiny scalar loop (one exponential holding time per state switch,
    typically tens of draws): interval 0 starts calm at ``t=0`` and the
    state alternates at each edge, so a time with an odd
    ``searchsorted`` index is in a burst. Both the batch kernel and the
    frozen scalar reference run this exact loop, so the stream stays
    aligned.
    """
    edges = []
    t_edge = 0.0
    in_burst = False
    while t_edge < spec.horizon_s:
        mean = spec.burst_mean_s if in_burst else spec.calm_mean_s
        t_edge += float(rng.exponential(mean))
        edges.append(t_edge)
        in_burst = not in_burst
    return np.asarray(edges, dtype=np.float64)


def arrival_times(spec: ScenarioSpec, seed: int) -> np.ndarray:
    """All arrival times in ``[0, horizon_s)``, ascending, via thinning.

    Batch draw order (the frozen scalar reference
    :func:`repro._modelref.reference_arrival_times` draws identically):

    1. one Poisson count ``m`` at ``peak_rate * horizon`` (candidates);
    2. ``m`` uniforms scaled to the horizon, then one sort;
    3. the MMPP state-switch loop (scalar, only if bursty);
    4. ``m`` acceptance uniforms.

    A candidate at ``t`` is kept when ``u * peak_rate < rate(t)``. The
    number of *accepted* arrivals is random; callers that need the count
    take ``len()`` of the result.
    """
    lam_max = peak_rate(spec)
    rng = np.random.default_rng(int(seed))
    m = int(rng.poisson(lam_max * spec.horizon_s))
    if m == 0:
        return np.empty(0, dtype=np.float64)
    candidates = np.sort(rng.random(size=m) * spec.horizon_s)
    rate = spec.base_rate_hz * _diurnal_factor(spec, candidates)
    rate = rate * _flash_factor(spec, candidates)
    if spec.bursty:
        edges = _burst_edges(spec, rng)
        interval = np.searchsorted(edges, candidates, side="right")
        rate = rate * np.where((interval & 1) == 1, spec.burst_multiplier, 1.0)
    accept = rng.random(size=m) * lam_max < rate
    return candidates[accept].copy()


def session_lengths(spec: ScenarioSpec, n: int, seed: int) -> np.ndarray:
    """``n`` heavy-tailed session lengths (seconds) as one batch draw.

    ``"lognormal"`` is parameterized by median and log-space sigma
    (matching :meth:`~repro.engine.randomness.RandomStream.lognormal`);
    ``"pareto"`` by shape and scale with minimum value ``scale``
    (matching :meth:`~repro.engine.randomness.RandomStream.pareto`).
    """
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(int(seed))
    if spec.session_tail == "lognormal":
        return rng.lognormal(np.log(spec.session_median_s), spec.session_sigma, size=n)
    return spec.session_scale_s * (1.0 + rng.pareto(spec.session_shape, size=n))


def client_ids(spec: ScenarioSpec, n: int, seed: int) -> np.ndarray:
    """``n`` Zipf-skewed client ids in ``0..n_clients-1`` as one batch.

    One uniform batch inverted through the precomputed rank CDF
    (``searchsorted``), so the skew parameterization matches
    :meth:`~repro.engine.randomness.RandomStream.zipf_indices` while the
    draw stays a single vectorized pass.
    """
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(int(seed))
    ranks = np.arange(1, spec.n_clients + 1, dtype=np.float64)
    weights = ranks**-spec.client_skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(size=n), side="right").astype(np.int64)


def poisson_inter_arrivals(rate_hz: float, n: int, stream) -> list:
    """``n`` constant-rate Poisson inter-arrival gaps as one batch draw.

    The scenario library's degenerate (all components off) case, and the
    fast path the service exhibit feeds its open-loop source from.
    ``stream`` is a :class:`~repro.engine.randomness.RandomStream`; the
    batch draw is stream-equivalent to ``n`` sequential
    ``stream.exponential(1/rate_hz)`` calls, so rerouted callers keep
    byte-identical traces. Returns plain Python floats (``tolist``) so
    downstream virtual times stay JSON-native.
    """
    if rate_hz <= 0:
        raise ModelError(f"rate_hz must be positive, got {rate_hz}")
    if n < 0:
        raise ModelError(f"n must be >= 0, got {n}")
    return stream.numpy.exponential(1.0 / rate_hz, size=int(n)).tolist()


def _component_seed(seed: int, name: str) -> int:
    """Stable per-component child seed (FNV-1a over the component name).

    Mirrors :meth:`~repro.engine.randomness.RandomStream.fork`'s
    intent -- order-independent, collision-resistant sub-streams -- with
    arithmetic simple enough to restate in a frozen reference.
    """
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (2**63)
    return (int(seed) * 1099511628211 + value) % (2**63)


def scenario_trace(spec: ScenarioSpec, seed: int) -> Dict[str, np.ndarray]:
    """One full trace: arrival times, client ids, session lengths.

    Each component draws from an independent sub-seed
    (:func:`_component_seed` over the component name), so enabling or
    reconfiguring one component never perturbs another's draws -- the
    composition invariant the equivalence tests pin per component.
    """
    times = arrival_times(spec, _component_seed(seed, "traffic.arrivals"))
    n = len(times)
    return {
        "times_s": times,
        "client_ids": client_ids(spec, n, _component_seed(seed, "traffic.clients")),
        "session_lengths_s": session_lengths(
            spec, n, _component_seed(seed, "traffic.sessions")
        ),
    }

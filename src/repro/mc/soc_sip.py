"""Vectorized SoC-vs-SiP cost kernels.

Batch twins of the E5 economics: the volume sweep computes the
volume-independent unit costs and NRE totals *once* and amortizes over
the whole volume grid in one pass (the scalar
``ChipDesign.cost_per_unit_at_volume`` loop re-derived them at every
point), and the Monte-Carlo unit-cost sampler evaluates the die-cost
model for all area-jittered samples at once.

Equivalence contract: the volume curve is bit-for-bit against both the
frozen reference and the live ``cost_per_unit_at_volume``. The sampled
unit costs agree with
:func:`repro._modelref.reference_sampled_unit_costs` to 1 ulp (relative
~1e-15): numpy's vectorized ``**`` uses a SIMD pow whose last bit can
differ from the scalar libm pow in the negative-binomial yield term.
The equivalence tests pin this at 1e-12 relative.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.econ.silicon import WAFER_DIAMETER_MM
from repro.engine.randomness import RandomStream
from repro.errors import ModelError

__all__ = ["cost_per_unit_curve", "die_cost_batch", "sampled_unit_costs"]


def die_cost_batch(
    die_area_mm2: np.ndarray,
    wafer_cost_usd: float,
    defect_density_per_cm2: float,
    alpha: float = 3.0,
) -> np.ndarray:
    """Cost of one good die for a whole vector of die areas.

    Negative-binomial yield on gross dies per wafer, with the scalar
    model's truncation (``max(0, int(count))``) applied elementwise.
    """
    area = np.asarray(die_area_mm2, dtype=float)
    if np.any(area <= 0):
        raise ModelError("die area must be positive in every sample")
    radius = WAFER_DIAMETER_MM / 2.0
    wafer_area = math.pi * radius**2
    edge_loss = math.pi * WAFER_DIAMETER_MM / np.sqrt(2.0 * area)
    count = wafer_area / area - edge_loss
    gross = np.maximum(0, count.astype(np.int64))
    defects = defect_density_per_cm2 * area / 100.0
    good_fraction = (1.0 + defects / alpha) ** -alpha
    good = gross * good_fraction
    if np.any(good < 1e-9):
        raise ModelError("yield is effectively zero for some die sizes")
    return wafer_cost_usd / good


def _unit_costs_and_nre(design) -> Tuple[float, float, float, float]:
    """(soc_unit, sip_unit, soc_nre, sip_nre), each computed once."""
    soc_unit = design.soc_unit_cost_usd()
    sip_unit = design.sip_unit_cost_usd()
    return (
        soc_unit,
        sip_unit,
        design.soc_nre().total_nre_usd(),
        design.sip_nre().total_nre_usd(),
    )


def cost_per_unit_curve(
    design, volumes: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """All-in per-unit (SoC, SiP) costs across a lifetime-volume grid.

    Returns two arrays aligned with ``volumes``. Equivalent to calling
    ``design.cost_per_unit_at_volume`` per point, but the die-cost and
    NRE aggregation runs once for the whole grid.
    """
    volumes = np.asarray(volumes, dtype=float)
    if volumes.size == 0:
        raise ModelError("need at least one volume point")
    if np.any(volumes <= 0):
        raise ModelError("volume must be positive at every grid point")
    soc_unit, sip_unit, soc_nre, sip_nre = _unit_costs_and_nre(design)
    return soc_unit + soc_nre / volumes, sip_unit + sip_nre / volumes


def sampled_unit_costs(
    design, area_sigma: float, n_samples: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo (SoC, SiP) unit costs under subsystem-area jitter.

    Draws one lognormal jitter matrix ``(n_samples, n_subsystems)``
    (row-major, stream-equivalent to the scalar loop's successive
    draws), then evaluates every sample's SoC die cost and SiP
    die+packaging cost in vectorized passes with left-to-right
    subsystem folds.
    """
    if n_samples < 1:
        raise ModelError(f"need at least one sample, got {n_samples}")
    if area_sigma < 0:
        raise ModelError(f"area sigma must be non-negative, got {area_sigma}")
    rng = RandomStream(seed, "mc.soc_sip")
    subsystems = design.subsystems
    n_subsystems = len(subsystems)
    jitter = rng.numpy.lognormal(
        0.0, area_sigma, size=(n_samples, n_subsystems)
    )
    leading = design.leading_node
    total_area = np.zeros(n_samples)
    die_total = np.zeros(n_samples)
    for j, subsystem in enumerate(subsystems):
        area_28 = subsystem.area_at_28nm_mm2 * jitter[:, j]
        total_area = total_area + area_28 / leading.density_vs_28nm
        node = leading if subsystem.needs_leading_edge else design.commodity_node
        die_total = die_total + die_cost_batch(
            area_28 / node.density_vs_28nm,
            node.wafer_cost_usd,
            node.defect_density_per_cm2,
        )
    soc = die_cost_batch(
        total_area, leading.wafer_cost_usd, leading.defect_density_per_cm2
    )
    packaged = die_total + (
        design.packaging.base_usd
        + design.packaging.per_chiplet_usd * n_subsystems
    )
    sip = packaged / design.packaging.assembly_yield**n_subsystems
    return soc, sip

"""Vectorized Monte-Carlo batch-evaluation engine for the model layer.

The roadmap's quantitative claims are settled by Monte-Carlo sweeps over
the analytical models (accelerator ROI, SoC-vs-SiP economics,
commodity-year forecasts, market concentration, survey statistics).
This package evaluates N sampled parameter vectors per call with numpy
batch kernels instead of one scalar model call per sample.

Determinism contract: every kernel draws its variates in a documented
batch order from a single seeded stream and preserves the scalar
model's floating-point operation order, so batch results are bit-for-
bit equal to the frozen scalar references in :mod:`repro._modelref`
(verified by the ``models`` perf suite and the equivalence tests).

Modules: :mod:`~repro.mc.sampling` (parameter sampling),
:mod:`~repro.mc.roi` (ROI cashflow kernels), :mod:`~repro.mc.scenarios`
(commodity-year forecasts), :mod:`~repro.mc.soc_sip` (silicon cost
curves), :mod:`~repro.mc.market` (HHI / Bass adoption paths),
:mod:`~repro.mc.survey` (corpus statistics), and
:mod:`~repro.mc.traffic` (million-user traffic-scenario traces:
declarative :class:`~repro.mc.traffic.ScenarioSpec` composition,
inhomogeneous-Poisson thinning, heavy-tailed sessions, Zipf client
skew).
"""

from repro.mc.market import bass_adoption_paths, hhi_batch, sampled_market_shares
from repro.mc.roi import (
    decision_flip_batch,
    investment_params,
    npv_batch,
    npv_utilization_sweep,
    payback_batch,
    roi_batch,
    roi_monte_carlo,
    tornado_outputs_batch,
    worthwhile_batch,
)
from repro.mc.sampling import uniform_parameter_samples
from repro.mc.scenarios import commodity_year_samples, trl_weighted_steps
from repro.mc.soc_sip import cost_per_unit_curve, die_cost_batch, sampled_unit_costs
from repro.mc.survey import theme_matrix, theme_statistics
from repro.mc.traffic import (
    FlashCrowd,
    ScenarioSpec,
    arrival_times,
    client_ids,
    peak_rate,
    poisson_inter_arrivals,
    rate_curve,
    scenario_trace,
    session_lengths,
)

__all__ = [
    "FlashCrowd",
    "ScenarioSpec",
    "arrival_times",
    "bass_adoption_paths",
    "client_ids",
    "commodity_year_samples",
    "cost_per_unit_curve",
    "decision_flip_batch",
    "die_cost_batch",
    "hhi_batch",
    "investment_params",
    "npv_batch",
    "npv_utilization_sweep",
    "payback_batch",
    "peak_rate",
    "poisson_inter_arrivals",
    "rate_curve",
    "roi_batch",
    "roi_monte_carlo",
    "sampled_market_shares",
    "sampled_unit_costs",
    "scenario_trace",
    "session_lengths",
    "theme_matrix",
    "theme_statistics",
    "tornado_outputs_batch",
    "trl_weighted_steps",
    "uniform_parameter_samples",
    "worthwhile_batch",
]

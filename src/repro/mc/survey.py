"""Batched interview-corpus statistics.

The scalar analysis layer rescans the corpus once per theme (and, for
cross-tabs, re-resolves each interview's company by linear search).
This kernel interns each interview's coded-theme tuple into a small
set of unique membership *patterns*, answers every theme fraction and
per-role cross-tab from one ``bincount`` over ``(role, pattern)`` pairs
plus one tiny integer matmul, and only then expands to per-theme
output. All fractions stay ratios of exact integer counts, so results
equal the scalar per-theme scans bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = ["theme_matrix", "theme_statistics"]


def _intern_patterns(
    interview_themes: Sequence[Sequence[str]], themes: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Dedup coded-theme tuples into ``(patterns, inverse)``.

    ``patterns`` is a boolean ``(n_patterns, n_themes)`` membership
    matrix of the distinct coded tuples; ``inverse`` maps each
    interview to its pattern row. Replicated corpora (the common case:
    many interviews share the exact same theme coding) collapse to a
    handful of rows, so downstream work is sized by distinct patterns,
    not interviews.
    """
    if not themes:
        raise ModelError("need at least one theme")
    columns = {theme: j for j, theme in enumerate(themes)}
    if len(columns) != len(themes):
        raise ModelError("duplicate themes")
    n = len(interview_themes)
    inverse = np.empty(n, dtype=np.intp)
    pattern_index: Dict[Tuple[str, ...], int] = {}
    rows: List[np.ndarray] = []
    get_index = pattern_index.get
    get_column = columns.get
    for i, coded in enumerate(interview_themes):
        key = tuple(coded)
        k = get_index(key)
        if k is None:
            k = len(rows)
            pattern_index[key] = k
            row = np.zeros(len(themes), dtype=bool)
            for theme in key:
                j = get_column(theme)
                if j is not None:
                    row[j] = True
            rows.append(row)
        inverse[i] = k
    if rows:
        patterns = np.vstack(rows)
    else:
        patterns = np.zeros((0, len(themes)), dtype=bool)
    return patterns, inverse


def theme_matrix(
    interview_themes: Sequence[Sequence[str]], themes: Sequence[str]
) -> np.ndarray:
    """Boolean ``(n_interviews, n_themes)`` membership matrix."""
    patterns, inverse = _intern_patterns(interview_themes, themes)
    return patterns[inverse]


def theme_statistics(
    interview_themes: Sequence[Sequence[str]],
    roles: Sequence[str],
    themes: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Corpus fraction and per-role cross-tab for every theme at once.

    Returns ``{theme: {"fraction": f, "fraction.<role>": f, ...}}`` with
    roles in first-appearance order. All fractions are ratios of exact
    integer counts, so they equal the scalar per-theme scans bit for
    bit.
    """
    n = len(interview_themes)
    if n == 0:
        raise ModelError("empty corpus")
    if len(roles) != n:
        raise ModelError("one role per interview required")
    patterns, inverse = _intern_patterns(interview_themes, themes)

    role_order: List[str] = []
    role_index: Dict[str, int] = {}
    role_codes = np.empty(n, dtype=np.intp)
    get_role = role_index.get
    for i, role in enumerate(roles):
        r = get_role(role)
        if r is None:
            r = len(role_order)
            role_index[role] = r
            role_order.append(role)
        role_codes[i] = r

    n_roles = len(role_order)
    n_patterns = max(len(patterns), 1)
    # One histogram over combined (role, pattern) keys, then a small
    # integer matmul expands pattern counts to per-theme counts. Every
    # count is an exact int64, so the fractions below are the same
    # int/int divisions the scalar scans perform.
    pair_counts = np.bincount(
        role_codes * n_patterns + inverse,
        minlength=n_roles * n_patterns,
    ).reshape(n_roles, n_patterns)
    pattern_int = patterns.astype(np.int64)
    role_theme = pair_counts @ pattern_int  # (n_roles, n_themes)
    hits = role_theme.sum(axis=0)  # (n_themes,) corpus totals
    role_sizes = pair_counts.sum(axis=1)  # (n_roles,) interviews/role

    out: Dict[str, Dict[str, float]] = {}
    role_items = [
        (f"fraction.{role}", r, int(role_sizes[r]))
        for r, role in enumerate(role_order)
    ]
    for j, theme in enumerate(themes):
        stats: Dict[str, float] = {"fraction": int(hits[j]) / n}
        column = role_theme[:, j]
        for key, r, size in role_items:
            stats[key] = int(column[r]) / size
        out[theme] = stats
    return out

"""Batched interview-corpus statistics.

The scalar analysis layer rescans the corpus once per theme (and, for
cross-tabs, re-resolves each interview's company by linear search).
This kernel builds one boolean theme-membership matrix and one role
index, then answers every theme fraction and per-role cross-tab from
integer column counts -- the same integer ratios, so results are exact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["theme_matrix", "theme_statistics"]


def theme_matrix(
    interview_themes: Sequence[Sequence[str]], themes: Sequence[str]
) -> np.ndarray:
    """Boolean ``(n_interviews, n_themes)`` membership matrix."""
    if not themes:
        raise ModelError("need at least one theme")
    columns = {theme: j for j, theme in enumerate(themes)}
    if len(columns) != len(themes):
        raise ModelError("duplicate themes")
    matrix = np.zeros((len(interview_themes), len(themes)), dtype=bool)
    for i, coded in enumerate(interview_themes):
        for theme in coded:
            j = columns.get(theme)
            if j is not None:
                matrix[i, j] = True
    return matrix


def theme_statistics(
    interview_themes: Sequence[Sequence[str]],
    roles: Sequence[str],
    themes: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Corpus fraction and per-role cross-tab for every theme at once.

    Returns ``{theme: {"fraction": f, "fraction.<role>": f, ...}}`` with
    roles in first-appearance order. All fractions are ratios of exact
    integer counts, so they equal the scalar per-theme scans bit for
    bit.
    """
    n = len(interview_themes)
    if n == 0:
        raise ModelError("empty corpus")
    if len(roles) != n:
        raise ModelError("one role per interview required")
    matrix = theme_matrix(interview_themes, themes)
    role_order: List[str] = []
    role_rows: Dict[str, List[int]] = {}
    for i, role in enumerate(roles):
        if role not in role_rows:
            role_order.append(role)
            role_rows[role] = []
        role_rows[role].append(i)
    hits = matrix.sum(axis=0)
    out: Dict[str, Dict[str, float]] = {}
    for j, theme in enumerate(themes):
        stats: Dict[str, float] = {"fraction": int(hits[j]) / n}
        for role in role_order:
            rows = role_rows[role]
            stats[f"fraction.{role}"] = int(
                matrix[rows, j].sum()
            ) / len(rows)
        out[theme] = stats
    return out

"""Vectorized accelerator-ROI kernels: N investments per call.

Batch twins of :class:`repro.econ.AcceleratorInvestment`'s scalar
methods. Every kernel takes a mapping of parameter name to scalar or
``(n,)`` array and evaluates all samples in one numpy pass, preserving
the scalar model's floating-point operation order exactly: for any
sample, ``npv_batch`` returns bit-for-bit the value
``AcceleratorInvestment(...).npv_usd()`` would.

``discount_rate`` and ``horizon_years`` must be scalars (the per-year
discount denominators are computed once, with the same Python-float
power the scalar model uses); every other parameter may vary per sample.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.econ.roi import AcceleratorInvestment
from repro.errors import ModelError

__all__ = [
    "decision_flip_batch",
    "investment_params",
    "npv_batch",
    "npv_utilization_sweep",
    "payback_batch",
    "roi_batch",
    "roi_monte_carlo",
    "tornado_outputs_batch",
    "worthwhile_batch",
]

#: Parameters that must stay scalar in a batch evaluation.
_SCALAR_ONLY = ("discount_rate", "horizon_years")


def investment_params(
    investment: AcceleratorInvestment, **overrides: Any
) -> Dict[str, Any]:
    """The investment's fields as a kernel-ready parameter mapping.

    Keyword ``overrides`` (scalars or arrays) replace base fields, e.g.
    ``investment_params(inv, utilization=np.linspace(0, 1, 50))``.
    """
    params: Dict[str, Any] = {
        f.name: getattr(investment, f.name)
        for f in dataclass_fields(AcceleratorInvestment)
    }
    unknown = set(overrides) - set(params)
    if unknown:
        raise ModelError(f"unknown parameters: {sorted(unknown)}")
    params.update(overrides)
    return params


def _prepare(
    params: Mapping[str, Any]
) -> Tuple[Dict[str, Any], float, int, int]:
    """Validate and broadcast; returns (arrays, rate, horizon, n)."""
    for key in _SCALAR_ONLY:
        if np.ndim(params.get(key, 0)) != 0:
            raise ModelError(
                f"{key} must be a scalar in batch kernels; evaluate one "
                "batch per value instead"
            )
    rate = float(params.get("discount_rate", 0.08))
    horizon = int(params.get("horizon_years", 3))
    if horizon < 1:
        raise ModelError("horizon must be at least one year")
    if rate <= -1.0:
        raise ModelError(f"discount rate must exceed -100%, got {rate}")

    arrays: Dict[str, Any] = {}
    n = 1
    for key, value in params.items():
        if key in _SCALAR_ONLY:
            continue
        value = np.asarray(value, dtype=float)
        if value.ndim > 1:
            raise ModelError(f"{key}: batch parameters must be 1-D")
        if value.ndim == 1:
            if n != 1 and value.shape[0] != n:
                raise ModelError(
                    f"{key}: sample count {value.shape[0]} does not match "
                    f"the batch size {n}"
                )
            n = max(n, value.shape[0])
        arrays[key] = value

    speedup = arrays.get("speedup", np.float64(1.0))
    if np.any(speedup <= 0):
        raise ModelError("speedup must be positive in every sample")
    utilization = arrays.get("utilization", np.float64(0.5))
    if np.any(utilization < 0.0) or np.any(utilization > 1.0):
        raise ModelError("utilization must be in [0, 1] in every sample")
    return arrays, rate, horizon, n


def _get(arrays: Mapping[str, Any], key: str):
    default = {
        "hardware_usd": 0.0,
        "port_effort_person_months": 0.0,
        "engineer_usd_per_month": 12_000.0,
        "speedup": 1.0,
        "baseline_compute_value_usd_per_year": 100_000.0,
        "accelerator_power_w": 250.0,
        "electricity_usd_per_kwh": 0.10,
        "pue": 1.5,
        "utilization": 0.5,
    }[key]
    value = arrays.get(key)
    return np.float64(default) if value is None else value


def _upfront_and_net(arrays: Mapping[str, Any]):
    """Vectorized upfront cost and net yearly benefit (scalar op order)."""
    upfront = _get(arrays, "hardware_usd") + _get(
        arrays, "port_effort_person_months"
    ) * _get(arrays, "engineer_usd_per_month")
    utilization = _get(arrays, "utilization")
    freed = utilization * (1.0 - 1.0 / _get(arrays, "speedup"))
    benefit = _get(arrays, "baseline_compute_value_usd_per_year") * freed
    hours = 24 * 365 * utilization
    kwh = _get(arrays, "accelerator_power_w") / 1000.0 * hours * _get(
        arrays, "pue"
    )
    energy = kwh * _get(arrays, "electricity_usd_per_kwh")
    return upfront, benefit - energy


def npv_batch(params: Mapping[str, Any]) -> np.ndarray:
    """Discounted net value of every sampled investment, one pass.

    Accumulates year terms in the scalar model's order (year 0 first),
    with Python-float discount denominators, so each element equals the
    scalar ``npv_usd()`` bit for bit.
    """
    arrays, rate, horizon, n = _prepare(params)
    upfront, net = _upfront_and_net(arrays)
    total = np.broadcast_to(np.asarray(-upfront), (n,)).astype(
        float, copy=True
    )
    for year in range(1, horizon + 1):
        total += net / (1.0 + rate) ** year
    return total


def roi_batch(params: Mapping[str, Any]) -> np.ndarray:
    """Simple (undiscounted) ROI per sample: net gain over upfront cost."""
    arrays, _, horizon, n = _prepare(params)
    upfront, net = _upfront_and_net(arrays)
    gain = np.zeros(n)
    for _ in range(horizon):
        gain += net
    return (gain - upfront) / upfront


def payback_batch(params: Mapping[str, Any]) -> np.ndarray:
    """Interpolated payback period per sample; NaN when never repaid."""
    arrays, _, horizon, n = _prepare(params)
    upfront, net = _upfront_and_net(arrays)
    net = np.broadcast_to(np.asarray(net, dtype=float), (n,))
    out = np.full(n, np.nan)
    done = np.zeros(n, dtype=bool)
    cumulative = np.broadcast_to(np.asarray(-upfront), (n,)).astype(
        float, copy=True
    )
    for year in range(1, horizon + 1):
        previous = cumulative.copy()
        cumulative = cumulative + net
        newly = ~done & (cumulative >= 0.0)
        if np.any(newly):
            flat = np.where(
                net[newly] <= 0,
                float(year),
                year - 1 + (-previous[newly] / net[newly]),
            )
            out[newly] = flat
            done |= newly
    return out


def worthwhile_batch(params: Mapping[str, Any]) -> np.ndarray:
    """Boolean adoption decision per sample: positive NPV."""
    return npv_batch(params) > 0.0


def roi_monte_carlo(
    investment: AcceleratorInvestment,
    ranges: Sequence,
    n_samples: int = 10_000,
    seed: int = 0,
) -> Dict[str, Any]:
    """Monte-Carlo ROI under parameter uncertainty, fully batched.

    Samples ``n_samples`` uniform vectors over ``ranges`` (see
    :func:`repro.mc.sampling.uniform_parameter_samples`), evaluates NPV
    and payback in one batch each, and summarizes the paper's Finding-2
    question -- how often the adoption is worthwhile under utilization /
    speedup uncertainty.
    """
    from repro.mc.sampling import uniform_parameter_samples

    sampled = uniform_parameter_samples(
        ranges, n_samples, seed, name="mc.roi"
    )
    params = investment_params(investment, **sampled)
    npv = npv_batch(params)
    payback = payback_batch(params)
    worthwhile = npv > 0.0
    return {
        "n_samples": n_samples,
        "npv_usd": npv,
        "payback_years": payback,
        "p_worthwhile": float(np.mean(worthwhile)),
        "npv_p10": float(np.percentile(npv, 10)),
        "npv_p50": float(np.percentile(npv, 50)),
        "npv_p90": float(np.percentile(npv, 90)),
        "p_never_pays_back": float(np.mean(np.isnan(payback))),
    }


def _two_point_batch(
    investment: AcceleratorInvestment, ranges: Sequence
) -> Optional[np.ndarray]:
    """NPV at (low, high) of every range in one batch; 2i is low.

    Returns ``None`` when a range touches a scalar-only parameter, in
    which case callers fall back to the scalar path.
    """
    if any(bounds.parameter in _SCALAR_ONLY for bounds in ranges):
        return None
    base = investment_params(investment)
    for bounds in ranges:
        if bounds.parameter not in base:
            raise ModelError(f"unknown parameter: {bounds.parameter!r}")
    n = 2 * len(ranges)
    params: Dict[str, Any] = dict(base)
    for i, bounds in enumerate(ranges):
        column = np.full(n, float(base[bounds.parameter]))
        if isinstance(params[bounds.parameter], np.ndarray):
            column = params[bounds.parameter]
        column[2 * i] = bounds.low
        column[2 * i + 1] = bounds.high
        params[bounds.parameter] = column
    return npv_batch(params)


def tornado_outputs_batch(
    investment: AcceleratorInvestment, ranges: Sequence
) -> Optional[np.ndarray]:
    """One-at-a-time NPV outputs for a tornado sweep, one batch call.

    Returns a ``(len(ranges), 2)`` array of ``(output_at_low,
    output_at_high)`` rows, or ``None`` when the sweep touches a
    parameter the batch kernel keeps scalar (``discount_rate``,
    ``horizon_years``).
    """
    outputs = _two_point_batch(investment, ranges)
    if outputs is None:
        return None
    return outputs.reshape(len(ranges), 2)


def decision_flip_batch(
    investment: AcceleratorInvestment, ranges: Sequence
) -> Optional[Dict[str, bool]]:
    """Which single parameters can flip the adopt/reject decision.

    Batched twin of :func:`repro.econ.decision_flips`; ``None`` when a
    range touches a scalar-only parameter.
    """
    outputs = _two_point_batch(investment, ranges)
    if outputs is None:
        return None
    base = investment.worthwhile()
    worthwhile = outputs.reshape(len(ranges), 2) > 0.0
    return {
        bounds.parameter: bool(
            (worthwhile[i, 0] != base) or (worthwhile[i, 1] != base)
        )
        for i, bounds in enumerate(ranges)
    }


def npv_utilization_sweep(
    investment: AcceleratorInvestment, utilizations: Sequence[float]
) -> np.ndarray:
    """NPV across a utilization grid (the E4 exhibit's sweep), batched."""
    params = investment_params(
        investment, utilization=np.asarray(utilizations, dtype=float)
    )
    return npv_batch(params)

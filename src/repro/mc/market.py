"""Vectorized market-concentration and Bass-adoption kernels.

Batch twins of the E13 market models: row-wise HHI over sampled share
matrices, lognormal share jitter with renormalization, and Bass
cumulative-adoption paths over a (sample, time) grid. Each kernel folds
in the same order as its frozen scalar reference in
:mod:`repro._modelref`, so equality is bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.randomness import RandomStream
from repro.errors import ModelError

__all__ = [
    "bass_adoption_paths",
    "hhi_batch",
    "sampled_market_shares",
]


def hhi_batch(shares: np.ndarray) -> np.ndarray:
    """Herfindahl-Hirschman index of every row of a share matrix.

    ``shares`` is ``(n_samples, n_vendors)``; the result is ``(n,)`` on
    the 0-10,000 scale. Accumulates vendor terms left to right (a
    column fold), matching the scalar per-row sum.
    """
    shares = np.asarray(shares, dtype=float)
    if shares.ndim != 2:
        raise ModelError("shares must be a (n_samples, n_vendors) matrix")
    total = np.zeros(shares.shape[0])
    for j in range(shares.shape[1]):
        scaled = shares[:, j] * 100.0
        total = total + scaled * scaled
    return total


def sampled_market_shares(
    shares: Sequence[float],
    sigma: float,
    n_samples: int,
    seed: int,
) -> np.ndarray:
    """Lognormal share jitter with per-row renormalization, batched.

    One ``(n_samples, n_vendors)`` lognormal draw (row-major, matching
    ``n * k`` successive scalar draws), then each row is renormalized to
    sum to 1 with a left-to-right vendor fold.
    """
    if n_samples < 1:
        raise ModelError(f"need at least one sample, got {n_samples}")
    if sigma < 0:
        raise ModelError(f"sigma must be non-negative, got {sigma}")
    if not shares:
        raise ModelError("need at least one vendor share")
    rng = RandomStream(seed, "mc.market")
    k = len(shares)
    jitter = rng.numpy.lognormal(0.0, sigma, size=(n_samples, k))
    scaled = np.empty((n_samples, k))
    for j in range(k):
        scaled[:, j] = shares[j] * jitter[:, j]
    total = np.zeros(n_samples)
    for j in range(k):
        total = total + scaled[:, j]
    return scaled / total[:, None]


def bass_adoption_paths(
    p: float, q_values: np.ndarray, t_grid: np.ndarray
) -> np.ndarray:
    """Bass cumulative-fraction paths for many imitation coefficients.

    Returns ``(len(q_values), len(t_grid))``; negative times clamp to
    zero adoption, as ``BassModel.cumulative_fraction`` does.
    """
    if p <= 0:
        raise ModelError("Bass p must be positive")
    q_values = np.asarray(q_values, dtype=float)
    t_grid = np.asarray(t_grid, dtype=float)
    if np.any(q_values < 0):
        raise ModelError("Bass q must be non-negative")
    q = q_values[:, None]
    t = t_grid[None, :]
    # Evaluate at max(t, 0) so large negative times cannot overflow the
    # exponential; those cells are then forced to exactly 0.0.
    expo = np.exp(-(p + q) * np.maximum(t, 0.0))
    fraction = (1.0 - expo) / (1.0 + (q / p) * expo)
    return np.where(t < 0, 0.0, fraction)

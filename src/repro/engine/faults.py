"""Dynamic fault injection for live simulations.

Everything failure-related elsewhere in the library is *static*:
:mod:`repro.network.failures` analyzes degraded copies of a fabric and
:mod:`repro.frameworks.faults` uses closed-form straggler math. This
module makes failures first-class runtime events: a
:class:`FaultInjector` attaches to a running
:class:`~repro.engine.sim.Simulator` and schedules deterministic,
RandomStream-driven fault/repair *processes* from declarative
:class:`FaultSpec` descriptions -- link flaps, switch crashes, host
failures and transient stragglers, each with its own MTBF/MTTR
exponential distributions and injection window.

The injector is strictly opt-in. Nothing in the kernel or the models
references it; simulations that never install one are bit-for-bit
identical to runs before this module existed.

Topology faults (link flaps, switch crashes) mutate the live
:class:`~repro.network.topology.Fabric` through its ``fail_link`` /
``fail_node`` interface, which bumps the fabric's link-state version so
the flow solver's capacity cache invalidates and routing recomputes
paths on the surviving links. Host failures and stragglers are tracked
by label so workload models can poll :meth:`FaultInjector.is_down` and
:meth:`FaultInjector.slowdown` (the fabric is only touched when the
label names one of its nodes).

Example
-------
>>> from repro.engine import Simulator
>>> sim = Simulator()
>>> injector = FaultInjector(sim, seed=7)
>>> _ = injector.install(FaultSpec(kind=STRAGGLER, targets=("worker0",),
...                                mtbf_s=2.0, mttr_s=1.0, max_faults=1))
>>> sim.run(until=50.0)
50.0
>>> len(injector.events)
1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.engine.randomness import RandomStream
from repro.engine.sim import ProcessHandle, Simulator
from repro.errors import SimulationError

#: Fault kinds understood by the injector.
LINK_FLAP = "link-flap"
SWITCH_CRASH = "switch-crash"
HOST_FAILURE = "host-failure"
STRAGGLER = "straggler"

#: Every valid :class:`FaultSpec` kind.
FAULT_KINDS = (LINK_FLAP, SWITCH_CRASH, HOST_FAILURE, STRAGGLER)

#: Kinds that require a fabric to mutate.
_FABRIC_KINDS = (LINK_FLAP, SWITCH_CRASH)


@dataclass(frozen=True)
class FaultSpec:
    """A declarative fault schedule for a set of targets.

    Each target gets an independent fault/repair process: time between
    failures is exponential with mean ``mtbf_s``, repair time is
    exponential with mean ``mttr_s``. Faults are only *initiated* inside
    ``[start_s, end_s)`` (a fault in progress at ``end_s`` still runs
    its repair). ``targets`` are node labels, except for ``link-flap``
    where each target is an ``(a, b)`` endpoint pair. ``slowdown`` is
    the service-time multiplier applied while a ``straggler`` fault is
    active.
    """

    kind: str
    targets: Tuple[Any, ...]
    mtbf_s: float
    mttr_s: float
    start_s: float = 0.0
    end_s: Optional[float] = None
    max_faults: Optional[int] = None
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        if not self.targets:
            raise SimulationError("fault spec needs at least one target")
        if self.kind == LINK_FLAP:
            for target in self.targets:
                if not (isinstance(target, tuple) and len(target) == 2):
                    raise SimulationError(
                        f"link-flap targets must be (a, b) pairs, got "
                        f"{target!r}"
                    )
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise SimulationError("mtbf and mttr must be positive")
        if self.start_s < 0:
            raise SimulationError("fault window cannot start before t=0")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise SimulationError("fault window must end after it starts")
        if self.max_faults is not None and self.max_faults < 1:
            raise SimulationError("max_faults must be >= 1 when set")
        if self.slowdown < 1.0:
            raise SimulationError("straggler slowdown must be >= 1")


@dataclass(frozen=True)
class FaultEvent:
    """One completed fault: what failed, when, and for how long."""

    kind: str
    target: str
    down_s: float
    up_s: float

    @property
    def duration_s(self) -> float:
        """Outage length in virtual seconds."""
        return self.up_s - self.down_s


def _label(target: Any) -> str:
    """Stable display label: ``a--b`` for links, ``str`` otherwise."""
    if isinstance(target, tuple):
        return "--".join(str(part) for part in target)
    return str(target)


@dataclass
class FaultInjector:
    """Schedules deterministic fault/repair processes in a live simulator.

    Install :class:`FaultSpec` s with :meth:`install`; each target runs
    its own process driven by a :class:`RandomStream` forked per
    ``(kind, target)``, so schedules are reproducible and independent of
    installation order. Completed faults accumulate in :attr:`events`;
    with observability attached, per-kind counters
    (``faults.injected.*`` / ``faults.repaired.*``) and ``fault.<kind>``
    spans are recorded.
    """

    sim: Simulator
    seed: int = 0
    fabric: Any = None
    observability: Any = None
    events: List[FaultEvent] = field(default_factory=list)
    specs: List[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.observability is None:
            self.observability = self.sim.observability
        self._root = RandomStream(self.seed, "faults")
        self._down: set = set()
        self._slow: dict = {}
        self._open: List[Tuple[str, str, float]] = []
        self._listeners: List[Callable[[str, str, str, float], None]] = []

    # -- wiring ------------------------------------------------------------

    def install(self, spec: FaultSpec) -> List[ProcessHandle]:
        """Spawn one fault/repair process per target of ``spec``."""
        if spec.kind in _FABRIC_KINDS and self.fabric is None:
            raise SimulationError(
                f"{spec.kind} faults need a fabric to mutate"
            )
        if spec.kind == LINK_FLAP:
            for a, b in spec.targets:
                if not self.fabric.graph.has_edge(a, b):
                    raise SimulationError(f"no link {a}--{b} to flap")
        elif spec.kind == SWITCH_CRASH:
            for target in spec.targets:
                if target not in self.fabric.graph:
                    raise SimulationError(f"no node {target} to crash")
        self.specs.append(spec)
        handles = []
        for target in spec.targets:
            rng = self._root.fork(f"{spec.kind}/{_label(target)}")
            handles.append(
                self.sim.spawn(
                    self._drive(spec, target, rng),
                    name=f"fault.{spec.kind}.{_label(target)}",
                )
            )
        return handles

    def subscribe(
        self, listener: Callable[[str, str, str, float], None]
    ) -> None:
        """Register ``listener(kind, target, phase, now)``.

        ``phase`` is ``"down"`` when a fault lands and ``"up"`` when the
        repair completes.
        """
        self._listeners.append(listener)

    # -- queries for workload models ---------------------------------------

    def is_down(self, target: str) -> bool:
        """Whether a host/switch labelled ``target`` is currently failed."""
        return target in self._down

    def slowdown(self, target: str) -> float:
        """Service-time multiplier for ``target`` (1.0 when healthy)."""
        return self._slow.get(target, 1.0)

    def active_fault_count(self) -> int:
        """Number of faults currently in progress."""
        return len(self._down) + len(self._slow)

    def outage_windows(
        self,
        kind: Optional[str] = None,
        include_active: bool = False,
        until: Optional[float] = None,
    ) -> List[FaultEvent]:
        """Outage windows, optionally filtered to one ``kind``.

        By default this returns completed faults only, as before. With
        ``include_active`` outages still in progress are also reported,
        *clamped* to ``until`` (default: the current simulation time)
        instead of open-ended. ``until`` likewise clamps completed
        windows, so querying "as of ``t``" is consistent whether a
        repair landing exactly at ``t`` has already executed (it shows
        as a completed window ending at ``t``) or is still pending (the
        active window is clamped to the same ``[down, t]``); zero-length
        windows starting at the horizon are dropped, never reported
        open-ended.
        """
        windows = [
            event for event in self.events
            if kind is None or event.kind == kind
        ]
        if until is not None:
            windows = [
                event if event.up_s <= until
                else FaultEvent(event.kind, event.target, event.down_s, until)
                for event in windows
                if event.down_s < until
            ]
        if include_active:
            horizon = self.sim.now if until is None else until
            for open_kind, label, down_at in self._open:
                if kind is not None and open_kind != kind:
                    continue
                if down_at < horizon:
                    windows.append(
                        FaultEvent(open_kind, label, down_at, horizon)
                    )
        return windows

    # -- internals ---------------------------------------------------------

    def _drive(self, spec: FaultSpec, target: Any, rng: RandomStream):
        """The per-target fault/repair loop (a simulation process)."""
        sim = self.sim
        label = _label(target)
        count = 0
        if spec.start_s > sim.now:
            yield sim.timeout(spec.start_s - sim.now)
        while spec.max_faults is None or count < spec.max_faults:
            gap = rng.exponential(spec.mtbf_s)
            if spec.end_s is not None and sim.now + gap >= spec.end_s:
                return
            yield sim.timeout(gap)
            down_at = sim.now
            self._apply(spec, target)
            open_entry = (spec.kind, label, down_at)
            self._open.append(open_entry)
            self._count("injected", spec.kind)
            self._notify(spec.kind, label, "down")
            yield sim.timeout(rng.exponential(spec.mttr_s))
            self._open.remove(open_entry)
            self._repair(spec, target)
            self._count("repaired", spec.kind)
            self._notify(spec.kind, label, "up")
            event = FaultEvent(spec.kind, label, down_at, sim.now)
            self.events.append(event)
            if self.observability is not None:
                self.observability.spans.record(
                    f"fault.{spec.kind}",
                    down_at,
                    sim.now,
                    tags={"subsystem": "engine.faults", "target": label},
                )
            count += 1

    def _apply(self, spec: FaultSpec, target: Any) -> None:
        if spec.kind == LINK_FLAP:
            self.fabric.fail_link(*target)
            return
        if spec.kind == STRAGGLER:
            self._slow[target] = spec.slowdown
            return
        self._down.add(target)
        if self.fabric is not None and target in self.fabric.graph:
            self.fabric.fail_node(target)

    def _repair(self, spec: FaultSpec, target: Any) -> None:
        if spec.kind == LINK_FLAP:
            self.fabric.restore_link(*target)
            return
        if spec.kind == STRAGGLER:
            self._slow.pop(target, None)
            return
        self._down.discard(target)
        if self.fabric is not None and target in self.fabric.graph:
            self.fabric.restore_node(target)

    def _count(self, phase: str, kind: str) -> None:
        if self.observability is not None:
            self.observability.registry.counter(
                f"faults.{phase}.{kind}"
            ).inc()

    def _notify(self, kind: str, label: str, phase: str) -> None:
        for listener in self._listeners:
            listener(kind, label, phase, self.sim.now)

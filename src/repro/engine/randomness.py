"""Seeded random-variate streams for simulations.

Every stochastic component takes a :class:`RandomStream` so experiments
are reproducible and independent components draw from independent
streams (split off a root seed with :meth:`RandomStream.fork`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class RandomStream:
    """A named, seeded wrapper over :class:`numpy.random.Generator`."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._rng = np.random.default_rng(self.seed)

    def fork(self, name: str) -> "RandomStream":
        """Derive an independent child stream keyed by ``name``.

        The child seed is a stable hash of (parent seed, name), so forks
        are order-independent: forking "arrivals" then "service" yields
        the same streams as the reverse order.
        """
        seq = np.random.SeedSequence([self.seed, _stable_hash(name)])
        child_seed = int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63))
        return RandomStream(child_seed, name=f"{self.name}/{name}")

    # -- variates ----------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A uniform draw on ``[low, high)``."""
        return float(self._rng.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """An exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self._rng.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        """A normal draw."""
        return float(self._rng.normal(mean, std))

    def lognormal(self, median: float, sigma: float) -> float:
        """A lognormal draw parameterized by its median and log-space sigma."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return float(self._rng.lognormal(np.log(median), sigma))

    def pareto(self, shape: float, scale: float) -> float:
        """A Pareto (heavy-tailed) draw with minimum value ``scale``."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return float(scale * (1.0 + self._rng.pareto(shape)))

    def integer(self, low: int, high: int) -> int:
        """A uniform integer on ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def choice(self, options: Sequence, p: Optional[Sequence[float]] = None):
        """Choose one element, optionally weighted by ``p``."""
        index = int(self._rng.choice(len(options), p=p))
        return options[index]

    def shuffle(self, items: list) -> list:
        """Return a new list with ``items`` in shuffled order."""
        order = self._rng.permutation(len(items))
        return [items[i] for i in order]

    def zipf_indices(self, n_items: int, skew: float, size: int) -> np.ndarray:
        """Draw ``size`` item indices from a Zipf(skew) law over ``n_items``.

        Uses explicit normalization (rather than ``numpy.random.zipf``) so
        the support is exactly ``0..n_items-1``.
        """
        if n_items < 1:
            raise ValueError(f"need at least one item, got {n_items}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        ranks = np.arange(1, n_items + 1, dtype=float)
        weights = ranks**-skew
        weights /= weights.sum()
        return self._rng.choice(n_items, size=size, p=weights)

    def poisson(self, lam: float) -> int:
        """A Poisson count draw."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        return int(self._rng.poisson(lam))

    @property
    def numpy(self) -> np.random.Generator:
        """Escape hatch: the underlying numpy generator."""
        return self._rng


def _stable_hash(text: str) -> int:
    """A process-stable 63-bit hash of ``text`` (``hash()`` is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (2**63)
    return value

"""Resilience primitives: retry with backoff, deadlines, hedged requests.

The chaos experiments (X12) need the three classic tail-tolerance
mechanisms as first-class, composable engine constructs:

- :func:`retry` -- re-run a failing operation under a
  :class:`RetryPolicy` (exponential backoff, cap, deterministic jitter);
- :func:`with_deadline` -- wrap any :class:`~repro.engine.sim.Event`
  so the waiter gets :class:`~repro.errors.DeadlineExceeded` instead of
  blocking past a timeout;
- :func:`hedge` -- speculative duplicate execution ("hedged requests"):
  launch a copy after a delay, first completion wins, losers are
  interrupted.

All three are built strictly on the public ``Event`` / ``ProcessHandle``
/ ``interrupt`` machinery; they add nothing to the kernel's hot paths,
so simulations that do not use them are bit-for-bit unchanged.

Randomness is explicit: jitter only happens when the caller passes a
:class:`~repro.engine.randomness.RandomStream`, which keeps every
schedule reproducible.

Example
-------
>>> from repro.engine import Simulator
>>> sim = Simulator()
>>> def flaky():
...     yield sim.timeout(0.1)
...     raise RuntimeError("transient")
>>> def driver(sim):
...     try:
...         yield from retry(sim, flaky, RetryPolicy(max_attempts=2,
...                                                  base_delay_s=0.5))
...     except Exception as exc:
...         return type(exc).__name__
>>> handle = sim.spawn(driver(sim))
>>> sim.run()
0.7
>>> handle.value
'RetryExhausted'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.engine.randomness import RandomStream
from repro.engine.sim import Event, Interrupt, Process, Simulator
from repro.errors import DeadlineExceeded, RetryExhausted, SimulationError

#: Factory producing a fresh attempt generator per call.
AttemptFactory = Callable[[], Process]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule for :func:`retry`.

    The delay after the ``n``-th failed attempt (1-based) is
    ``base_delay_s * multiplier ** (n - 1)``, capped at ``max_delay_s``.
    With ``jitter > 0`` and a :class:`RandomStream`, each delay is
    scaled by a uniform factor in ``[1 - jitter, 1 + jitter]`` --
    deterministic given the stream, so two runs with the same seed
    produce identical schedules.
    """

    max_attempts: int = 3
    base_delay_s: float = 1e-3
    multiplier: float = 2.0
    max_delay_s: float = float("inf")
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError("retry policy needs at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise SimulationError("retry delays must be non-negative")
        if self.multiplier <= 0:
            raise SimulationError("backoff multiplier must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")

    def delay_s(self, attempt: int, rng: Optional[RandomStream] = None) -> float:
        """Backoff delay after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise SimulationError(f"attempt must be >= 1, got {attempt}")
        delay = self.base_delay_s * self.multiplier ** (attempt - 1)
        if delay > self.max_delay_s:
            delay = self.max_delay_s
        if self.jitter > 0.0 and rng is not None:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def schedule(
        self, n_failures: int, rng: Optional[RandomStream] = None
    ) -> list:
        """The first ``n_failures`` backoff delays, in order."""
        return [self.delay_s(i, rng) for i in range(1, n_failures + 1)]


@dataclass(frozen=True)
class HedgeOutcome:
    """Result of one :func:`hedge` call.

    ``launched`` counts every copy started (1 means the hedge never
    fired), so ``launched - 1`` is the extra-work overhead the caller
    should report rather than hide.
    """

    value: Any
    winner: int
    launched: int


def _guarded(generator: Process, outcome: Event) -> Process:
    """Run ``generator`` and deliver its result or failure via ``outcome``.

    Exceptions escaping a plain spawned process would abort the whole
    run (:class:`~repro.errors.ProcessFailure`); routing them through an
    event instead lets :func:`retry` and :func:`hedge` observe failures
    without installing a global ``on_process_error`` hook. An
    :class:`~repro.engine.sim.Interrupt` (a cancelled hedge loser)
    cancels the outcome and ends the copy silently.
    """
    try:
        result = yield from generator
    except Interrupt:
        outcome.cancel()
        return
    except Exception as exc:  # noqa: BLE001 - delivered to the waiter
        if not outcome.triggered:
            outcome.fail(exc)
        return
    if not outcome.triggered:
        outcome.succeed(result)


def retry(
    sim: Simulator,
    make_attempt: AttemptFactory,
    policy: RetryPolicy = RetryPolicy(),
    rng: Optional[RandomStream] = None,
    name: str = "retry",
) -> Iterator[Event]:
    """Run ``make_attempt()`` until it succeeds, backing off between tries.

    A generator meant for ``yield from`` inside a process (or to be
    spawned directly). ``make_attempt`` must return a *fresh* process
    generator per call; each attempt runs as its own process so a crash
    inside it is contained. Returns the successful attempt's value;
    raises :class:`~repro.errors.RetryExhausted` (chaining the last
    error) when the policy's budget is spent. Interrupts delivered to
    the retrying process propagate unchanged.

    With observability attached to ``sim``, increments
    ``resilience.retry.attempts`` / ``.failures`` / ``.recovered`` /
    ``.exhausted`` counters.
    """
    registry = (
        sim.observability.registry if sim.observability is not None else None
    )
    attempt = 0
    while True:
        attempt += 1
        if registry is not None:
            registry.counter("resilience.retry.attempts").inc()
        outcome = sim.event()
        sim.spawn(
            _guarded(make_attempt(), outcome),
            name=f"{name}.attempt{attempt}",
        )
        try:
            result = yield outcome
        except Interrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - retried per policy
            if registry is not None:
                registry.counter("resilience.retry.failures").inc()
            if attempt >= policy.max_attempts:
                if registry is not None:
                    registry.counter("resilience.retry.exhausted").inc()
                raise RetryExhausted(
                    f"{name}: all {attempt} attempts failed "
                    f"(last: {exc!r})",
                    attempts=attempt,
                ) from exc
            yield sim.timeout(policy.delay_s(attempt, rng))
        else:
            if attempt > 1 and registry is not None:
                registry.counter("resilience.retry.recovered").inc()
            return result


def with_deadline(sim: Simulator, event: Event, timeout_s: float) -> Event:
    """An event mirroring ``event`` but failing after ``timeout_s``.

    If ``event`` fires (either way) within the window, the returned
    gate relays its value or exception. Otherwise the gate fails with
    :class:`~repro.errors.DeadlineExceeded` and ``event`` is cancelled
    so queue owners stop holding capacity for the abandoned waiter.
    """
    if timeout_s < 0:
        raise SimulationError(f"negative deadline: {timeout_s}")
    gate = sim.event()
    timer = sim.timeout(timeout_s)
    started = sim.now

    def on_event(evt: Event) -> None:
        if gate.triggered:
            return
        timer.cancel()
        if evt._exception is not None:
            gate.fail(evt._exception)
        else:
            gate.succeed(evt.value)

    def on_timer(_evt: Event) -> None:
        if gate.triggered:
            return
        event.cancel()
        registry = (
            sim.observability.registry
            if sim.observability is not None
            else None
        )
        if registry is not None:
            registry.counter("resilience.deadline.expired").inc()
        gate.fail(
            DeadlineExceeded(
                f"no result within {timeout_s:g}s (started t={started:g})",
                deadline_s=timeout_s,
            )
        )

    event.add_callback(on_event)
    timer.add_callback(on_timer)
    return gate


def hedge(
    sim: Simulator,
    make_attempt: AttemptFactory,
    delay_s: float,
    max_copies: int = 2,
    name: str = "hedge",
) -> Iterator[Event]:
    """Speculatively duplicate an operation; first completion wins.

    A generator meant for ``yield from`` inside a process. The first
    copy starts immediately; while no copy has finished, another starts
    every ``delay_s`` until ``max_copies`` are running. The first copy
    to finish supplies the result and every other copy is interrupted
    (winner-takes-all). A copy that *fails* triggers an immediate
    replacement launch while budget remains; if every launched copy
    fails, the last failure is raised.

    Returns a :class:`HedgeOutcome` so callers can account for the
    overhead (``launched`` copies) instead of hiding it. With
    observability attached, increments ``resilience.hedge.calls`` /
    ``.extra_copies`` / ``.hedged_wins`` counters.
    """
    if max_copies < 1:
        raise SimulationError("hedge needs at least one copy")
    if delay_s < 0:
        raise SimulationError(f"negative hedge delay: {delay_s}")
    registry = (
        sim.observability.registry if sim.observability is not None else None
    )
    gate = sim.event()
    handles: list = []
    state = {"launched": 0, "pending": 0}
    last_error: list = [None]

    def launch() -> None:
        index = state["launched"]
        state["launched"] += 1
        state["pending"] += 1
        outcome = sim.event()
        outcome.add_callback(_make_on_outcome(index))
        handles.append(
            sim.spawn(
                _guarded(make_attempt(), outcome), name=f"{name}.copy{index}"
            )
        )

    def _make_on_outcome(index: int):
        def on_outcome(evt: Event) -> None:
            if gate.triggered:
                return
            state["pending"] -= 1
            if evt._exception is not None:
                last_error[0] = evt._exception
                if state["launched"] < max_copies:
                    launch()  # failed copy: hedge immediately
                elif state["pending"] == 0:
                    gate.fail(last_error[0])
                return
            gate.succeed((index, evt.value))

        return on_outcome

    def on_timer(_evt: Event) -> None:
        if gate.triggered or state["launched"] >= max_copies:
            return
        launch()
        if state["launched"] < max_copies:
            sim.timeout(delay_s).add_callback(on_timer)

    launch()
    if max_copies > 1:
        sim.timeout(delay_s).add_callback(on_timer)

    winner, value = yield gate
    for index, handle in enumerate(handles):
        if index != winner:
            handle.interrupt(f"{name}: lost to copy {winner}")
    if registry is not None:
        registry.counter("resilience.hedge.calls").inc()
        if state["launched"] > 1:
            registry.counter("resilience.hedge.extra_copies").inc(
                state["launched"] - 1
            )
        if winner > 0:
            registry.counter("resilience.hedge.hedged_wins").inc()
    return HedgeOutcome(value=value, winner=winner, launched=state["launched"])

"""Deterministic discrete-event simulation kernel.

A small, dependency-free DES in the style of SimPy: processes are Python
generators that ``yield`` events; the :class:`Simulator` advances a
virtual clock and resumes processes when the events they wait on fire.

The kernel is deterministic: ties in event time are broken by a strictly
increasing sequence number, so two runs with the same seed produce
identical traces.

The event loop is allocation-light. The three hot operations --
``timeout()``, callback registration and callback flushing -- avoid
per-event closures entirely:

- :meth:`Simulator.timeout` creates a dedicated :class:`Timeout` event
  and pushes it straight into the event calendar; the run loop triggers
  it inline instead of calling a scheduled lambda.
- Calendar entries are plain ``(when, seq, kind, a, b)`` tuples.
  ``kind`` selects the dispatch -- ``_KIND_CALL`` runs ``a()``,
  ``_KIND_TIMEOUT`` triggers the :class:`Timeout` ``a`` inline,
  ``_KIND_CALLBACK`` runs ``a(b)`` (callback, event) -- so firing an
  event never allocates a closure. ``seq`` is unique, so ordering is
  decided entirely by ``(when, seq)`` and stays bit-for-bit identical
  to the original lambda-based kernel.
- Almost every event has exactly one waiter, so :class:`Event` keeps a
  single ``_callback`` slot that holds the callback directly and only
  spills into a list when a second callback registers (callbacks are
  callables, never lists, so ``type(c) is list`` discriminates).

Pending events live in an *array-backed two-tier calendar* instead of a
binary heap. ``_near`` is a sorted array consumed in place through a
moving ``_head`` cursor; ``_far`` is an unsorted overflow array holding
every entry at or beyond ``_horizon`` (the largest timestamp of the last
sorted batch). The dominant DES pattern -- each completion scheduling
the next timeout further in the future -- therefore costs one
``list.append`` per schedule and one indexed read per fire; when the
sorted segment drains, the overflow (already nearly sorted, because
virtual time only moves forward) is sorted once with Timsort and becomes
the next segment. Same-time entries (callback flushes, spawns,
interrupts) binary-insert into the sorted segment. Entries are totally
ordered by the unique ``(when, seq)`` key, so the pop sequence -- and
every golden trace -- is bit-for-bit identical to the heap-based kernel.

Observability is opt-in: attach a
:class:`~repro.engine.observability.Observability` (or pass it to the
constructor) and ``sim.span(...)`` records spans, processes are
accounted per name, and the ``on_event`` / ``on_process_error`` hooks
fire. Without one, the extra cost is a few ``is None`` checks per event.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import itertools
from bisect import bisect_left as _bisect_left, insort as _insort
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import ProcessFailure, SimulationError

#: Type alias for simulation processes.
Process = Generator["Event", Any, Any]

_INF = float("inf")

#: Calendar-entry dispatch kinds (position 2 of a queue entry). ``seq``
#: at position 1 is unique, so these never participate in ordering.
_KIND_CALL = 0  # a()
_KIND_TIMEOUT = 1  # trigger Timeout a inline
_KIND_CALLBACK = 2  # a(b)

_new_event = object.__new__


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* when given a value (or
    an exception), and notifies all registered callbacks exactly once.
    A pending event may also be *cancelled* -- a hint to queue owners
    (e.g. :class:`~repro.engine.resources.Resource`) that its waiter has
    abandoned it and the grant should go to someone else.

    Callback storage is one slot (``_callback``) holding ``None``, the
    sole registered callable, or -- only once a second waiter registers
    -- a list of callables. Callbacks must be callables (never list
    instances), which keeps the discrimination a single type check;
    nearly all events in practice have exactly one waiter.
    """

    __slots__ = ("sim", "_callback", "_triggered", "_value",
                 "_exception", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callback: Any = None
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def cancelled(self) -> bool:
        """Whether the event was abandoned before firing."""
        # Timeouts skip initialising the slot (see Simulator.timeout);
        # an unset slot simply means "never cancelled".
        try:
            return self._cancelled
        except AttributeError:
            return False

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` until triggered)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired, the callback is scheduled to run
        immediately (at the current simulation time).
        """
        if self._triggered:
            sim = self.sim
            sim._push(
                (sim._now, sim._seq_next(), _KIND_CALLBACK, callback, self)
            )
            return
        current = self._callback
        if current is None:
            self._callback = callback
        elif current.__class__ is list:
            current.append(callback)
        else:
            self._callback = [current, callback]

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._flush()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception to raise in the waiter."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        self._flush()
        return self

    def cancel(self) -> None:
        """Mark a still-pending event as abandoned by its waiter.

        Cancelling an already-triggered event is a no-op. Queue owners
        (resources, containers, stores) prune cancelled events instead
        of granting to them, which prevents capacity leaking to waiters
        whose process was interrupted.
        """
        if not self._triggered:
            self._cancelled = True

    def _flush(self) -> None:
        """Schedule the registered callbacks at the current time.

        Callbacks go through the calendar (never run re-entrantly), in
        registration order, each as a direct ``(callback, event)``
        calendar entry -- no closure per callback.
        """
        callback = self._callback
        if callback is None:
            return
        self._callback = None
        sim = self.sim
        now = sim._now
        push = sim._push
        seq_next = sim._seq_next
        if callback.__class__ is list:
            for cb in callback:
                push((now, seq_next(), _KIND_CALLBACK, cb, self))
        else:
            push((now, seq_next(), _KIND_CALLBACK, callback, self))


class Timeout(Event):
    """An event that fires a fixed delay after its creation.

    Created by :meth:`Simulator.timeout`. The run loop recognises its
    heap entry and triggers it inline -- no scheduled closure -- which is
    the kernel's single hottest path. The payload value is stored
    directly in the value slot at creation (it is immutable from then
    on), so triggering is a single flag flip plus the callback flush.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", value: Any = None) -> None:
        self.sim = sim
        self._callback = None
        self._triggered = False
        self._value = value
        self._exception = None
        self._cancelled = False


class ProcessHandle(Event):
    """The running instance of a process generator.

    A ``ProcessHandle`` is itself an :class:`Event` that fires with the
    generator's return value when the process finishes, so processes can
    wait on each other: ``yield sim.spawn(child(sim))``.
    """

    __slots__ = ("generator", "name", "_waiting_on", "spawned_at",
                 "finished_at", "steps", "_bound_step")

    def __init__(self, sim: "Simulator", generator: Process, name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self.spawned_at = sim.now
        self.finished_at: Optional[float] = None
        self.steps = 0
        # One bound method for the process's whole lifetime instead of a
        # fresh one per yield.
        self._bound_step = self._step

    def lifetime(self) -> Optional[float]:
        """Virtual time from spawn to completion (``None`` while running)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.spawned_at

    def succeed(self, value: Any = None) -> "Event":
        """Fire the handle with the process's return value."""
        self.finished_at = self.sim.now
        return super().succeed(value)

    def fail(self, exception: BaseException) -> "Event":
        """Fire the handle with the exception that killed the process."""
        self.finished_at = self.sim.now
        return super().fail(exception)

    def _step(self, fired: Optional[Event]) -> None:
        """Advance the generator by one yield.

        The uninstrumented path is kept branch-identical to a bare
        kernel -- one attribute load and ``is None`` test -- so disabled
        observability stays within the X10 overhead budget.
        """
        if self._triggered:
            return  # process already finished (e.g. via interrupt)
        if fired is not None and fired is not self._waiting_on:
            return  # stale wakeup from an event abandoned after an interrupt
        self._waiting_on = None
        sim = self.sim
        observability = sim.observability
        if observability is None:
            try:
                if fired is not None and fired._exception is not None:
                    target = self.generator.throw(fired._exception)
                else:
                    send_value = fired._value if fired is not None else None
                    target = self.generator.send(send_value)
            except StopIteration as stop:
                self.finished_at = sim._now
                Event.succeed(self, stop.value)
                return
            except Exception as exc:
                self._crash(exc)
                return
        else:
            observability._note_step(self)
            sim._active_process = self
            try:
                if fired is not None and fired._exception is not None:
                    target = self.generator.throw(fired._exception)
                else:
                    send_value = fired._value if fired is not None else None
                    target = self.generator.send(send_value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except Exception as exc:
                self._crash(exc)
                return
            finally:
                sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        self._waiting_on = target
        if (
            type(target) is Timeout
            and not target._triggered
            and target._callback is None
        ):
            # Fresh pending timeout with a free single-callback slot: the
            # common yield target. Store directly, skipping the
            # add_callback call frame.
            target._callback = self._bound_step
        else:
            target.add_callback(self._bound_step)

    def _finish(self, value: Any) -> None:
        """Record normal completion and fire the handle."""
        self.succeed(value)
        observability = self.sim.observability
        if observability is not None:
            observability._note_process_end(self)

    def _crash(self, exc: BaseException) -> None:
        """Handle an exception that escaped the generator.

        Routes through the simulator's ``on_process_error`` hook; if the
        hook returns truthy the process terminates failed and the run
        continues, otherwise a :class:`~repro.errors.ProcessFailure`
        carrying the process name and virtual time propagates out of
        :meth:`Simulator.run`.
        """
        sim = self.sim
        observability = sim.observability
        if observability is not None:
            observability._note_process_error(self, exc)
        hook = sim.on_process_error
        if hook is not None and hook(self, exc):
            self.fail(exc)
            return
        raise ProcessFailure(
            f"process {self.name!r} failed at t={sim.now:g}: {exc!r}",
            process_name=self.name,
            sim_time=sim.now,
        ) from exc

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if self._triggered:
            return
        sim = self.sim
        sim._push(
            (sim._now, sim._seq_next(), _KIND_CALLBACK,
             self._deliver_interrupt, cause)
        )

    def _deliver_interrupt(self, cause: Any) -> None:
        if self._triggered:
            return
        abandoned = self._waiting_on
        self._waiting_on = None  # abandon whatever we were waiting on
        if (
            abandoned is not None
            and not abandoned.triggered
            and not isinstance(abandoned, ProcessHandle)
        ):
            # Dead waiter: let resource queues skip it instead of
            # granting capacity to a process that will never take it.
            abandoned.cancel()
        sim = self.sim
        observability = sim.observability
        if observability is not None:
            observability._note_step(self)
        previous = sim._active_process
        sim._active_process = self
        try:
            target = self.generator.throw(Interrupt(cause))
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it terminates.
            self._finish(None)
            return
        except Exception as exc:
            self._crash(exc)
            return
        finally:
            sim._active_process = previous
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__} "
                "after interrupt, expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._bound_step)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _NullSpan:
    """No-op context manager returned by ``sim.span`` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Simulator:
    """Event loop owning the virtual clock.

    Parameters
    ----------
    start:
        Initial value of the clock (defaults to ``0.0``).
    observability:
        Optional :class:`~repro.engine.observability.Observability` to
        attach; equivalent to calling ``observability.attach(sim)``.

    Attributes
    ----------
    on_event:
        Optional hook ``(when, entry) -> None`` invoked before every
        scheduled heap entry executes; ``entry`` is the raw
        ``(when, seq, kind, a, b)`` queue tuple. Sampled once when
        :meth:`run` starts, so set it before running.
    on_process_error:
        Optional hook ``(handle, exc) -> bool`` invoked when an
        exception escapes a process generator; return truthy to mark the
        failure handled (the process terminates failed, the run
        continues) instead of aborting the run with
        :class:`~repro.errors.ProcessFailure`.
    """

    def __init__(self, start: float = 0.0, observability: Any = None) -> None:
        self._now = float(start)
        # Array-backed two-tier event calendar. ``_near`` is sorted
        # ascending by (when, seq) and consumed in place through the
        # moving ``_head`` cursor; ``_far`` is unsorted overflow holding
        # every entry with ``when >= _horizon``. ``_far_min`` tracks the
        # smallest timestamp in ``_far`` (inf when empty) so peeking the
        # next due time never scans. Both list objects keep their
        # identity for the simulator's lifetime.
        self._near: list = []
        self._far: list = []
        self._head = 0
        self._horizon = -_INF
        self._far_min = _INF
        self._sequence = itertools.count()
        # Bound ``__next__`` of the tie-break counter: one call, no
        # global ``next`` lookup, on every heap push.
        self._seq_next = self._sequence.__next__
        self._event_count = 0
        self.observability: Any = None
        self.on_event: Optional[Callable[[float, tuple], None]] = None
        self.on_process_error: Optional[
            Callable[[ProcessHandle, BaseException], bool]
        ] = None
        self._active_process: Optional[ProcessHandle] = None
        if observability is not None:
            observability.attach(self)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of scheduled heap entries executed so far.

        For speed the fast run loop accumulates this locally and folds
        it back in when :meth:`run` returns (or raises); reads from
        *inside* a callback may lag until then unless an ``on_event``
        hook is set, which forces exact per-entry accounting.
        """
        return self._event_count

    @property
    def active_process(self) -> Optional[ProcessHandle]:
        """The process currently being stepped (``None`` between steps)."""
        return self._active_process

    # -- scheduling primitives -------------------------------------------

    def _push(self, entry: tuple) -> None:
        """Insert a calendar entry, preserving total (when, seq) order.

        Entries at or beyond the horizon append to the unsorted overflow
        (the dominant schedule-into-the-future pattern); earlier entries
        binary-insert into the live sorted segment. Every new entry
        compares greater than every already-consumed one (its ``seq`` is
        larger and its ``when`` is not in the past), so the insertion
        point always lands at or after the head cursor.
        """
        if entry[0] >= self._horizon:
            self._far.append(entry)
            if entry[0] < self._far_min:
                self._far_min = entry[0]
            return
        near = self._near
        _insort(near, entry)
        head = self._head
        if head > 4096 and head << 1 > len(near):
            # A long same-timestamp chain can grow the consumed prefix
            # without ever draining the segment; shear it off once it
            # dominates so memory stays proportional to pending events.
            del near[:head]
            self._head = 0
            observability = self.observability
            if observability is not None:
                observability.registry.counter(
                    "engine.calendar.compactions"
                ).inc()

    def _refill(self) -> None:
        """Sort the overflow into a fresh consumable segment.

        Only called when the sorted segment is fully consumed and the
        overflow is non-empty. Virtual time only moves forward, so the
        overflow is typically appended in nearly ascending order --
        exactly the input Timsort consumes in linear time.
        """
        near, far = self._near, self._far
        far.sort()
        near.clear()
        near.extend(far)
        far.clear()
        self._head = 0
        self._horizon = near[-1][0]
        self._far_min = _INF
        observability = self.observability
        if observability is not None:
            observability.registry.counter("engine.calendar.refills").inc()

    def _schedule_at(self, when: float, call: Callable[[], None]) -> None:
        """Schedule a zero-argument callable at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < {self._now}"
            )
        self._push((when, self._seq_next(), _KIND_CALL, call, None))

    def _schedule_call(self, call: Callable[[], None]) -> None:
        """Schedule a zero-argument callable at the current time."""
        self._push((self._now, self._seq_next(), _KIND_CALL, call, None))

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now.

        The returned :class:`Timeout` is pushed directly into the event
        calendar; the run loop triggers it inline, so a timeout costs
        one object and one calendar entry -- no closure, no scheduled
        lambda, and (in the dominant schedule-ahead case) one plain
        ``list.append``.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        # Inline construction (no __init__ call frame): this is the
        # single most frequent allocation in every simulation.
        evt = _new_event(Timeout)
        evt.sim = self
        evt._callback = None
        evt._triggered = False
        evt._value = value
        evt._exception = None
        # ``_cancelled`` is deliberately left unset: ``cancel()`` stores
        # it on demand and the ``cancelled`` property defaults to False,
        # saving one slot store on the hottest allocation in the kernel.
        when = self._now + delay
        entry = (when, self._seq_next(), _KIND_TIMEOUT, evt, None)
        if when >= self._horizon:
            # Inline overflow append: the hottest push in the kernel.
            self._far.append(entry)
            if when < self._far_min:
                self._far_min = when
        else:
            self._push(entry)
        return evt

    def schedule_batch(
        self,
        whens: Iterable[float],
        callback: Callable[[Any], None],
        payloads: Optional[Iterable[Any]] = None,
    ) -> int:
        """Bulk-schedule ``callback(payload)`` at each ascending time.

        The fast path for feeding a pre-generated arrival trace (e.g. a
        :mod:`repro.mc.traffic` scenario) into the calendar: instead of
        one ``schedule`` call per arrival, all entries are built in a
        single C-level pass (``zip`` over the times, the tie-break
        counter and the payloads) and appended to the unsorted overflow
        tier, which the next :meth:`_refill` absorbs with one Timsort.
        Entries below the current horizon -- only possible mid-run --
        take the per-entry sorted-insert path, exactly as a loop of
        individual schedules would.

        ``whens`` must be ascending (a sorted trace) and must not start
        in the past; ``payloads`` defaults to ``range(n)``, i.e. the
        arrival index. Sequence numbers are assigned in input order, so
        the resulting pop sequence -- and every golden trace -- is
        bit-for-bit identical to the equivalent loop of per-event
        schedule calls. Returns the number of entries scheduled.
        """
        if type(whens) is not list:
            tolist = getattr(whens, "tolist", None)
            whens = tolist() if tolist is not None else [float(w) for w in whens]
        n = len(whens)
        if n == 0:
            return 0
        if whens[0] < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {whens[0]} < {self._now}"
            )
        if n > 1 and sorted(whens) != whens:
            raise SimulationError("schedule_batch requires ascending times")
        if payloads is None:
            payloads = range(n)
        else:
            if type(payloads) is not list and hasattr(payloads, "tolist"):
                payloads = payloads.tolist()
            elif not hasattr(payloads, "__len__"):
                payloads = list(payloads)
            if len(payloads) != n:
                raise SimulationError(
                    f"payload count {len(payloads)} != time count {n}"
                )
        # One C-level pass: zip consumes the tie-break counter directly,
        # so sequence numbers are consecutive in input order -- the same
        # assignment a Python loop of schedules would make.
        entries = list(zip(
            whens,
            self._sequence,
            itertools.repeat(_KIND_CALLBACK),
            itertools.repeat(callback),
            payloads,
        ))
        # Ascending input makes the horizon split a single bisection:
        # entries[split:] all belong in the overflow tier.
        split = _bisect_left(whens, self._horizon)
        if split:
            push = self._push
            for entry in entries[:split]:
                push(entry)
        if split < n:
            self._far.extend(entries[split:])
            first = whens[split]
            if first < self._far_min:
                self._far_min = first
        observability = self.observability
        if observability is not None:
            observability.registry.counter(
                "engine.calendar.batch_inserted"
            ).inc(n)
        return n

    def spawn(self, generator: Process, name: str = "") -> ProcessHandle:
        """Start a new process and return its handle."""
        handle = ProcessHandle(self, generator, name)
        self._push(
            (self._now, self._seq_next(), _KIND_CALLBACK,
             handle._bound_step, None)
        )
        return handle

    def span(self, name: str, **tags: Any):
        """A context manager tracing a span of virtual time.

        With no attached observability this returns a shared no-op
        context manager, so instrumented model code costs almost nothing
        when tracing is disabled.
        """
        observability = self.observability
        if observability is None:
            return _NULL_SPAN
        return observability.span(name, **tags)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event firing when *all* of ``events`` have fired.

        Fires with the list of individual values, in input order. If any
        input fails, the gate fails with the *first* failure instead of
        silently succeeding without it.
        """
        pending = list(events)
        gate = Event(self)
        if not pending:
            self._schedule_call(lambda: gate.succeed([]))
            return gate
        remaining = {"count": len(pending)}
        values: list[Any] = [None] * len(pending)

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(evt: Event) -> None:
                if gate.triggered:
                    return
                if evt._exception is not None:
                    gate.fail(evt._exception)
                    return
                values[index] = evt.value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    gate.succeed(list(values))

            return on_fire

        for index, evt in enumerate(pending):
            evt.add_callback(make_callback(index))
        return gate

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event firing when the *first* of ``events`` fires.

        Fires with a ``(index, value)`` tuple for the winner; if the
        first event to fire failed, the gate fails with its exception.
        """
        pending = list(events)
        if not pending:
            raise SimulationError("any_of requires at least one event")
        gate = Event(self)

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(evt: Event) -> None:
                if gate.triggered:
                    return
                if evt._exception is not None:
                    gate.fail(evt._exception)
                else:
                    gate.succeed((index, evt.value))

            return on_fire

        for index, evt in enumerate(pending):
            evt.add_callback(make_callback(index))
        return gate

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final clock value. With neither an ``until`` horizon
        nor an ``on_event`` hook the loop takes a specialised fast path:
        entries are popped directly and the event counter is folded back
        in on exit (exact per-entry accounting is preserved whenever the
        hook is set).
        """
        near = self._near  # stable identity; only contents mutate
        far = self._far
        on_event = self.on_event  # read once; set hooks before run()
        seq_next = self._seq_next
        push = self._push
        popped = 0
        try:
            if on_event is None and until is None:
                # Fast path: no horizon checks, no hook dispatch, local
                # event counting. The head cursor is re-read every
                # iteration so nested run() calls (a callback that
                # re-enters the loop) stay correct.
                while True:
                    head = self._head
                    if head == len(near):
                        if not far:
                            break
                        self._refill()
                        head = 0
                    entry = near[head]
                    head += 1
                    self._head = head
                    popped += 1
                    self._now = when = entry[0]
                    kind = entry[2]
                    if kind == 1:  # _KIND_TIMEOUT -- trigger inline
                        # Checked first: inline dispatch keeps most
                        # callback entries out of the calendar, so
                        # timeout entries dominate what actually pops.
                        evt = entry[3]
                        if evt._triggered:
                            raise SimulationError("event already triggered")
                        evt._triggered = True
                        # Inline Event._flush: schedule waiters at `when`.
                        callback = evt._callback
                        if callback is not None:
                            evt._callback = None
                            if callback.__class__ is list:
                                for cb in callback:
                                    push((when, seq_next(), 2, cb, evt))
                            elif (near[head][0] if head < len(near)
                                  else self._far_min) > when:
                                # No other entry is due at `when` (the
                                # overflow minimum is inf when empty), so
                                # the callback entry we would push would
                                # pop straight back off. Dispatch it
                                # directly -- relative sequence order
                                # (and therefore every tie-break) is
                                # unchanged.
                                callback(evt)
                            else:
                                push((when, seq_next(), 2, callback, evt))
                    elif kind == 2:  # _KIND_CALLBACK: a(b)
                        entry[3](entry[4])
                    else:  # _KIND_CALL
                        entry[3]()
            else:
                while True:
                    head = self._head
                    if head == len(near):
                        if not far:
                            break
                        self._refill()
                        head = 0
                    entry = near[head]
                    when = entry[0]
                    if until is not None and when > until:
                        self._now = until
                        return self._now
                    self._head = head + 1
                    self._now = when
                    self._event_count += 1
                    if on_event is not None:
                        on_event(when, entry)
                    kind = entry[2]
                    if kind == 2:
                        entry[3](entry[4])
                    elif kind == 1:
                        evt = entry[3]
                        if evt._triggered:
                            raise SimulationError("event already triggered")
                        evt._triggered = True
                        callback = evt._callback
                        if callback is not None:
                            evt._callback = None
                            if callback.__class__ is list:
                                for cb in callback:
                                    push((when, seq_next(), 2, cb, evt))
                            else:
                                push((when, seq_next(), 2, callback, evt))
                    else:
                        entry[3]()
        finally:
            # Incremental so a nested run() (a callback that re-enters
            # the loop) keeps the total exact.
            self._event_count += popped
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if idle."""
        if self._head < len(self._near):
            return self._near[self._head][0]
        if self._far:
            return self._far_min
        return None

"""Deterministic discrete-event simulation kernel.

A small, dependency-free DES in the style of SimPy: processes are Python
generators that ``yield`` events; the :class:`Simulator` advances a
virtual clock and resumes processes when the events they wait on fire.

The kernel is deterministic: ties in event time are broken by a strictly
increasing sequence number, so two runs with the same seed produce
identical traces.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Type alias for simulation processes.
Process = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, becomes *triggered* when given a value (or
    an exception), and notifies all registered callbacks exactly once.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exception")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` until triggered)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired, the callback is scheduled to run
        immediately (at the current simulation time).
        """
        if self._triggered:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._flush()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception to raise in the waiter."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        self._flush()
        return self

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim._schedule_call(lambda cb=callback: cb(self))


class ProcessHandle(Event):
    """The running instance of a process generator.

    A ``ProcessHandle`` is itself an :class:`Event` that fires with the
    generator's return value when the process finishes, so processes can
    wait on each other: ``yield sim.spawn(child(sim))``.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Process, name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None

    def _step(self, fired: Optional[Event]) -> None:
        """Advance the generator by one yield."""
        if self._triggered:
            return  # process already finished (e.g. via interrupt)
        if fired is not None and fired is not self._waiting_on:
            return  # stale wakeup from an event abandoned after an interrupt
        self._waiting_on = None
        try:
            if fired is not None and fired._exception is not None:
                target = self.generator.throw(fired._exception)
            else:
                send_value = fired._value if fired is not None else None
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._step)

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if self._triggered:
            return
        self.sim._schedule_call(lambda: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if self._triggered:
            return
        self._waiting_on = None  # abandon whatever we were waiting on
        try:
            target = self.generator.throw(Interrupt(cause))
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it terminates.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__} "
                "after interrupt, expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._step)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Simulator:
    """Event loop owning the virtual clock.

    Parameters
    ----------
    start:
        Initial value of the clock (defaults to ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of scheduled callbacks executed so far."""
        return self._event_count

    # -- scheduling primitives -------------------------------------------

    def _schedule_at(self, when: float, call: Callable[[], None]) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), call))

    def _schedule_call(self, call: Callable[[], None]) -> None:
        self._schedule_at(self._now, call)

    # -- public API --------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        evt = Event(self)
        self._schedule_at(self._now + delay, lambda: evt.succeed(value))
        return evt

    def spawn(self, generator: Process, name: str = "") -> ProcessHandle:
        """Start a new process and return its handle."""
        handle = ProcessHandle(self, generator, name)
        self._schedule_call(lambda: handle._step(None))
        return handle

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event firing when *all* of ``events`` have fired.

        Fires with the list of individual values, in input order.
        """
        pending = list(events)
        gate = Event(self)
        if not pending:
            self._schedule_call(lambda: gate.succeed([]))
            return gate
        remaining = {"count": len(pending)}
        values: list[Any] = [None] * len(pending)

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(evt: Event) -> None:
                values[index] = evt.value
                remaining["count"] -= 1
                if remaining["count"] == 0 and not gate.triggered:
                    gate.succeed(list(values))

            return on_fire

        for index, evt in enumerate(pending):
            evt.add_callback(make_callback(index))
        return gate

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event firing when the *first* of ``events`` fires.

        Fires with a ``(index, value)`` tuple for the winner.
        """
        pending = list(events)
        if not pending:
            raise SimulationError("any_of requires at least one event")
        gate = Event(self)

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(evt: Event) -> None:
                if not gate.triggered:
                    gate.succeed((index, evt.value))

            return on_fire

        for index, evt in enumerate(pending):
            evt.add_callback(make_callback(index))
        return gate

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final clock value.
        """
        while self._queue:
            when, _seq, call = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            self._event_count += 1
            call()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if idle."""
        return self._queue[0][0] if self._queue else None

"""Sharded conservative-time discrete-event simulation.

Partition a fabric into per-worker shards
(:func:`~repro.engine.sharded.partition.partition_fabric`), run one
:class:`~repro.engine.sim.Simulator` per shard under conservative
time-window synchronization
(:class:`~repro.engine.sharded.coordinator.ShardedSimulation`), and
deterministically merge the per-shard traces
(:func:`~repro.engine.sharded.sync.merge_shard_traces`) into a single
canonical trace that is bit-for-bit identical to the single-process
engine's. See DESIGN.md "Conservative synchronization invariants" for
the lookahead safety and merge-determinism arguments;
:mod:`repro.workloads.fabricsim` is the reference workload adapter.
"""

from repro.engine.sharded.coordinator import (
    ShardedRunResult,
    ShardedSimulation,
)
from repro.engine.sharded.partition import ShardPlan, partition_fabric
from repro.engine.sharded.sync import (
    BoundaryEvent,
    canonical_trace_lines,
    exclusive_until,
    merge_shard_traces,
    next_window,
    trace_digest,
)

__all__ = [
    "BoundaryEvent",
    "ShardPlan",
    "ShardedRunResult",
    "ShardedSimulation",
    "canonical_trace_lines",
    "exclusive_until",
    "merge_shard_traces",
    "next_window",
    "partition_fabric",
    "trace_digest",
]

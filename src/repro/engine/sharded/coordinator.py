"""Conservative-time coordination of per-shard simulators.

A :class:`ShardedSimulation` drives ``n_shards`` independent
:class:`~repro.engine.sim.Simulator` instances -- one per shard of a
:class:`~repro.engine.sharded.partition.ShardPlan` -- through barrier-
synchronous conservative time windows:

1. the *window base* is the global minimum next-event time over every
   shard calendar and every in-flight boundary event (skip-ahead: idle
   stretches cost one round, not ``horizon / lookahead`` rounds);
2. the *window end* is ``base + lookahead`` and every shard advances
   through the half-open window ``[base, end)`` -- exclusive of the end,
   so an arrival at exactly ``end`` is processed only after the barrier
   that delivers same-window boundary events;
3. at the barrier, each shard's outbox is routed to its destination
   shard (an empty exchange is a null message: it still advances every
   clock), and the loop repeats until all shards quiesce.

The workload side plugs in through a *shard adapter* -- any object with
``build_runtime(shard_id)`` returning a runtime exposing
``next_time() -> float | None``,
``schedule_incoming(events) -> None``,
``advance(window_end) -> list[BoundaryEvent]`` and
``finalize() -> (records, metrics)``. ``advance(math.inf)`` must run the
shard to quiescence (the single-shard / empty-cut case).

Two drivers share the window loop: *inline* (every shard in this
process, round-robin -- determinism debugging, tests, Windows) and
*fork* (one worker process per shard exchanging pickled messages over
pipes, the :mod:`repro.runner.pool` idiom -- fork start method, duplex
pipes, daemon workers, terminate-on-error). Both produce identical
barriers, outboxes and merged traces; only wall-clock differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine.sharded.partition import ShardPlan
from repro.engine.sharded.sync import (
    BoundaryEvent,
    TraceRecord,
    merge_shard_traces,
    next_window,
)
from repro.errors import SimulationError

_EVENT_KEY = (lambda event: (event.when, event.seq))


@dataclass(frozen=True)
class ShardedRunResult:
    """The merged outcome of one sharded run.

    ``records`` is the canonical merged trace (sorted by ``(when,
    seq)``); ``shard_metrics[i]`` is shard ``i``'s finalize metrics;
    ``rounds`` counts conservative windows (barriers) and
    ``boundary_events`` counts cross-shard deliveries.
    """

    records: List[TraceRecord]
    shard_metrics: List[Dict[str, Any]]
    rounds: int
    boundary_events: int
    n_shards: int


class ShardedSimulation:
    """Drive a shard adapter to completion under conservative windows."""

    def __init__(
        self,
        adapter: Any,
        plan: ShardPlan,
        inline: bool = False,
    ) -> None:
        self.adapter = adapter
        self.plan = plan
        self.inline = inline

    def run(self) -> ShardedRunResult:
        """Run every shard to quiescence; merge traces deterministically."""
        if self.inline or self.plan.n_shards == 1:
            finals, rounds, boundary = self._run_inline()
        else:
            finals, rounds, boundary = self._run_fork()
        records = merge_shard_traces([records for records, _ in finals])
        return ShardedRunResult(
            records=records,
            shard_metrics=[metrics for _, metrics in finals],
            rounds=rounds,
            boundary_events=boundary,
            n_shards=self.plan.n_shards,
        )

    # -- shared window arithmetic ------------------------------------------

    @staticmethod
    def _window(
        next_times: List[Optional[float]],
        pending: List[List[BoundaryEvent]],
        lookahead_s: float,
    ) -> Optional[float]:
        times: List[Optional[float]] = list(next_times)
        for box in pending:
            for event in box:
                times.append(event.when)
        return next_window(times, lookahead_s)

    # -- inline driver -----------------------------------------------------

    def _run_inline(self):
        n = self.plan.n_shards
        runtimes = [self.adapter.build_runtime(i) for i in range(n)]
        next_times = [runtime.next_time() for runtime in runtimes]
        pending: List[List[BoundaryEvent]] = [[] for _ in range(n)]
        rounds = 0
        boundary = 0
        while True:
            window_end = self._window(
                next_times, pending, self.plan.lookahead_s
            )
            if window_end is None:
                break
            rounds += 1
            fresh: List[List[BoundaryEvent]] = [[] for _ in range(n)]
            for i, runtime in enumerate(runtimes):
                if pending[i]:
                    pending[i].sort(key=_EVENT_KEY)
                    runtime.schedule_incoming(pending[i])
                outbox = runtime.advance(window_end)
                next_times[i] = runtime.next_time()
                for event in outbox:
                    fresh[event.dest_shard].append(event)
                    boundary += 1
            pending = fresh
        finals = [runtime.finalize() for runtime in runtimes]
        return finals, rounds, boundary

    # -- fork driver -------------------------------------------------------

    def _run_fork(self):
        from repro.runner.pool import _mp_context

        context = _mp_context()
        n = self.plan.n_shards
        workers = []
        try:
            for shard_id in range(n):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_conn, self.adapter, shard_id),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append((process, parent_conn))
            next_times = [
                self._receive(conn, shard_id, "ready")
                for shard_id, (_, conn) in enumerate(workers)
            ]
            pending: List[List[BoundaryEvent]] = [[] for _ in range(n)]
            rounds = 0
            boundary = 0
            while True:
                window_end = self._window(
                    next_times, pending, self.plan.lookahead_s
                )
                if window_end is None:
                    break
                rounds += 1
                for shard_id, (_, conn) in enumerate(workers):
                    inbox = pending[shard_id]
                    inbox.sort(key=_EVENT_KEY)
                    conn.send(("advance", window_end, inbox))
                pending = [[] for _ in range(n)]
                for shard_id, (_, conn) in enumerate(workers):
                    outbox, next_times[shard_id] = self._receive(
                        conn, shard_id, "advanced"
                    )
                    for event in outbox:
                        pending[event.dest_shard].append(event)
                        boundary += 1
            finals = []
            for shard_id, (_, conn) in enumerate(workers):
                conn.send(("finalize",))
                finals.append(self._receive(conn, shard_id, "final"))
            return finals, rounds, boundary
        finally:
            for process, conn in workers:
                conn.close()
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - crash cleanup
                    process.terminate()
                    process.join()

    @staticmethod
    def _receive(conn, shard_id: int, expected: str):
        try:
            message = conn.recv()
        except EOFError as error:  # pragma: no cover - worker crash
            raise SimulationError(
                f"shard {shard_id} worker died before replying"
            ) from error
        if message[0] == "error":
            raise SimulationError(
                f"shard {shard_id} worker failed:\n{message[1]}"
            )
        if message[0] != expected:  # pragma: no cover - protocol bug
            raise SimulationError(
                f"shard {shard_id}: expected {expected!r} reply, got "
                f"{message[0]!r}"
            )
        return message[1]


def _shard_worker_main(conn, adapter: Any, shard_id: int) -> None:
    """Worker body: build the shard runtime, serve barrier rounds, exit.

    Message protocol (parent -> worker / worker -> parent):

    - ``("advance", window_end, incoming)`` -> ``("advanced", (outbox,
      next_time))``
    - ``("finalize",)`` -> ``("final", (records, metrics))`` then exit.

    Any exception ships back as ``("error", traceback)``.
    """
    import traceback

    try:
        runtime = adapter.build_runtime(shard_id)
        conn.send(("ready", runtime.next_time()))
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _, window_end, incoming = message
                if incoming:
                    runtime.schedule_incoming(incoming)
                outbox = runtime.advance(window_end)
                conn.send(("advanced", (outbox, runtime.next_time())))
            elif message[0] == "finalize":
                conn.send(("final", runtime.finalize()))
                return
            else:  # pragma: no cover - protocol bug
                raise SimulationError(
                    f"shard {shard_id}: unknown command {message[0]!r}"
                )
    except EOFError:  # pragma: no cover - parent died
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()

"""Boundary events, window arithmetic and deterministic trace merging.

The conservative protocol in :mod:`repro.engine.sharded.coordinator`
advances every shard through a sequence of *exclusive* time windows
``[base, end)`` where ``end = base + lookahead`` and ``base`` is the
global minimum next-event time. Cross-shard interactions travel as
:class:`BoundaryEvent` values exchanged at the barrier between windows;
an exchange round with no events is exactly a null message -- it still
advances every shard's clock to the window end.

Trace records are ``(when, seq, kind, node)`` tuples where ``seq`` is a
workload-assigned, globally unique integer (independent of which engine
or shard produced the record). :func:`merge_shard_traces` performs the
deterministic k-way merge by ``(when, seq, shard)`` and
:func:`canonical_trace_lines` fixes the byte-level serialization --
``repr`` floats round-trip exactly, so two traces are bit-for-bit equal
iff their canonical lines are.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

#: One trace record: (when, seq, kind, node).
TraceRecord = Tuple[float, int, str, str]


class BoundaryEvent(NamedTuple):
    """A timestamped cross-shard interaction, exchanged at a barrier.

    ``seq`` carries the workload's deterministic tie-break key so the
    receiving shard schedules same-timestamp arrivals in the same order
    regardless of exchange batching. ``payload`` is workload-defined and
    must be picklable (it crosses a process pipe in fork mode).
    """

    when: float
    seq: int
    dest_shard: int
    payload: tuple


def next_window(
    next_times: Sequence[Optional[float]],
    lookahead_s: float,
) -> Optional[float]:
    """The exclusive end of the next conservative window, or ``None``.

    ``next_times`` holds each shard's earliest pending event time
    (``None`` for an idle shard, *after* barrier delivery so in-flight
    boundary events are already in some shard's calendar). Returns
    ``None`` when every shard is idle -- the simulation has quiesced.
    With infinite lookahead (no boundary cut) the window is unbounded
    and the caller should run shards to quiescence.
    """
    base = None
    for when in next_times:
        if when is not None and (base is None or when < base):
            base = when
    if base is None:
        return None
    if math.isinf(lookahead_s):
        return math.inf
    return base + lookahead_s


def exclusive_until(window_end: float) -> float:
    """The largest time strictly below ``window_end``.

    ``Simulator.run(until=t)`` is inclusive of events at exactly ``t``;
    conservative windows must be exclusive of their end (an arrival at
    ``window_end`` belongs to the next round, after barrier delivery).
    One float step down converts the inclusive kernel bound into the
    exclusive protocol bound without touching the kernel.
    """
    return math.nextafter(window_end, -math.inf)


def merge_shard_traces(
    shard_records: Sequence[Sequence[TraceRecord]],
) -> List[TraceRecord]:
    """Deterministic k-way merge of per-shard traces by (when, seq, shard).

    Each per-shard stream must already be sorted by ``(when, seq)``;
    ``heapq.merge`` is stable, so equal keys resolve in shard order.
    The shard tie-break is unreachable when ``seq`` values are globally
    unique (the workload contract), but pinning it keeps the merge total
    even for degenerate inputs.
    """
    return list(
        heapq.merge(*shard_records, key=lambda record: (record[0], record[1]))
    )


def canonical_trace_lines(records: Iterable[TraceRecord]) -> List[str]:
    """The canonical one-line-per-record serialization of a trace.

    ``repr`` on floats is shortest-round-trip exact, so equal lines
    imply bit-for-bit equal timestamps.
    """
    return [
        f"{when!r}\t{seq}\t{kind}\t{node}\n"
        for when, seq, kind, node in records
    ]


def trace_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over the canonical serialization of ``records``."""
    digest = hashlib.sha256()
    for line in canonical_trace_lines(records):
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()

"""Fabric partitioning for sharded simulation.

A :class:`ShardPlan` assigns every node of a
:class:`~repro.network.topology.Fabric` to exactly one shard and
identifies the *boundary links* -- links whose endpoints live on
different shards. Cross-shard packet hops travel over boundary links
only, so the minimum base latency over those links is a valid
*lookahead* for conservative time-window synchronization: a shard that
has processed everything strictly before window ``W`` cannot cause an
event on another shard earlier than ``W + lookahead``.

Cuts are structure-aware so that boundary traffic (and therefore
synchronization pressure) stays low:

- **fat-tree** fabrics cut pod-aligned: each pod's aggregation/ToR
  switches and hosts stay together, and only the agg--core links cross
  shards (cores are distributed round-robin by row).
- **leaf-spine** fabrics cut leaf-aligned: a leaf and its hosts stay
  together; only leaf--spine uplinks cross.
- anything else falls back to contiguous blocks over sorted node names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.errors import SimulationError

_FAT_TREE_PATTERNS = (
    re.compile(r"^core(\d+)-(\d+)$"),
    re.compile(r"^agg(\d+)-(\d+)$"),
    re.compile(r"^tor(\d+)-(\d+)$"),
    re.compile(r"^host(\d+)-(\d+)-(\d+)$"),
)
_LEAF_SPINE_PATTERNS = (
    re.compile(r"^spine(\d+)$"),
    re.compile(r"^leaf(\d+)$"),
    re.compile(r"^host(\d+)-(\d+)$"),
)


@dataclass(frozen=True)
class ShardPlan:
    """A complete node->shard assignment plus its boundary cut.

    ``lookahead_s`` is the minimum base latency over ``boundary_links``
    (``inf`` when the cut is empty, e.g. a single shard): the safe
    conservative window width for barrier-synchronous advancement.
    """

    n_shards: int
    kind: str
    owner: Dict[str, int] = field(repr=False)
    boundary_links: Tuple[Tuple[str, str], ...]
    lookahead_s: float

    def shard_nodes(self, shard: int) -> List[str]:
        """All nodes owned by ``shard``, in sorted order."""
        return sorted(n for n, s in self.owner.items() if s == shard)

    def shard_sizes(self) -> List[int]:
        """Node count per shard (index = shard id)."""
        sizes = [0] * self.n_shards
        for shard in self.owner.values():
            sizes[shard] += 1
        return sizes


def _classify(nodes) -> str:
    """Which named topology family the node-name set belongs to."""
    for kind, patterns in (
        ("fat-tree", _FAT_TREE_PATTERNS),
        ("leaf-spine", _LEAF_SPINE_PATTERNS),
    ):
        if all(any(p.match(n) for p in patterns) for n in nodes):
            return kind
    return "generic"


def _fat_tree_owner(nodes, n_shards: int) -> Dict[str, int]:
    pods = set()
    for node in nodes:
        m = re.match(r"^(?:agg|tor|host)(\d+)-", node)
        if m:
            pods.add(int(m.group(1)))
    n_pods = len(pods)
    if n_shards > n_pods:
        raise SimulationError(
            f"cannot cut a {n_pods}-pod fat-tree into {n_shards} shards; "
            f"pod-aligned cuts need n_shards <= {n_pods}"
        )
    owner: Dict[str, int] = {}
    core_index = 0
    for node in sorted(nodes):
        m = re.match(r"^core(\d+)-(\d+)$", node)
        if m:
            owner[node] = core_index % n_shards
            core_index += 1
            continue
        pod = int(re.match(r"^(?:agg|tor|host)(\d+)-", node).group(1))
        owner[node] = pod * n_shards // n_pods
    return owner


def _leaf_spine_owner(nodes, n_shards: int) -> Dict[str, int]:
    leaves = {
        int(m.group(1))
        for m in (re.match(r"^leaf(\d+)$", n) for n in nodes)
        if m
    }
    n_leaves = len(leaves)
    if n_shards > n_leaves:
        raise SimulationError(
            f"cannot cut a {n_leaves}-leaf fabric into {n_shards} shards; "
            f"leaf-aligned cuts need n_shards <= {n_leaves}"
        )
    owner: Dict[str, int] = {}
    spine_index = 0
    for node in sorted(nodes):
        m = re.match(r"^spine(\d+)$", node)
        if m:
            owner[node] = spine_index % n_shards
            spine_index += 1
            continue
        m = re.match(r"^(?:leaf|host)(\d+)", node)
        owner[node] = int(m.group(1)) * n_shards // n_leaves
    return owner


def _generic_owner(nodes, n_shards: int) -> Dict[str, int]:
    ordered = sorted(nodes)
    n = len(ordered)
    return {node: i * n_shards // n for i, node in enumerate(ordered)}


def partition_fabric(
    fabric,
    n_shards: int,
    latency_fn: Callable[[str, str], float],
) -> ShardPlan:
    """Cut ``fabric`` into ``n_shards`` shards with a topology-aware plan.

    ``latency_fn(a, b)`` must return the *minimum* (base, jitter-free)
    latency of the ``a``--``b`` link; the plan's lookahead is the min
    over the boundary cut. Raises :class:`SimulationError` when the cut
    is impossible (more shards than pods/leaves) or a boundary link has
    non-positive base latency (no usable lookahead).
    """
    if n_shards < 1:
        raise SimulationError(f"n_shards must be >= 1, got {n_shards}")
    nodes = list(fabric.graph.nodes)
    if n_shards > len(nodes):
        raise SimulationError(
            f"{n_shards} shards for {len(nodes)} nodes: shards would be empty"
        )
    kind = _classify(nodes)
    if n_shards == 1:
        owner = {node: 0 for node in nodes}
    elif kind == "fat-tree":
        owner = _fat_tree_owner(nodes, n_shards)
    elif kind == "leaf-spine":
        owner = _leaf_spine_owner(nodes, n_shards)
    else:
        owner = _generic_owner(nodes, n_shards)

    boundary: List[Tuple[str, str]] = []
    lookahead = float("inf")
    for a, b in fabric.graph.edges:
        if owner[a] != owner[b]:
            boundary.append(fabric.link_key(a, b))
            latency = latency_fn(a, b)
            if latency <= 0.0:
                raise SimulationError(
                    f"boundary link {a}--{b} has non-positive base latency "
                    f"{latency!r}: conservative sync needs lookahead > 0"
                )
            if latency < lookahead:
                lookahead = latency
    return ShardPlan(
        n_shards=n_shards,
        kind=kind,
        owner=owner,
        boundary_links=tuple(sorted(boundary)),
        lookahead_s=lookahead,
    )

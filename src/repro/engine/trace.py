"""Metric collection for simulations.

:class:`MetricSeries` accumulates (time, value) samples and computes the
summary statistics the experiments report: mean, percentiles (for tail
latency), time-weighted averages (for queue lengths and utilization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


class MetricSeries:
    """A named series of samples taken during a simulation run."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample at simulation ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """All sampled values, in time order."""
        return list(self._values)

    @property
    def times(self) -> List[float]:
        """Sample timestamps, in order."""
        return list(self._times)

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._values:
            raise ValueError(f"metric {self.name!r} has no samples")
        return float(np.mean(self._values))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the samples."""
        if not self._values:
            raise ValueError(f"metric {self.name!r} has no samples")
        return float(np.percentile(self._values, q))

    def p50(self) -> float:
        """Median sample."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """99th-percentile sample (the paper's tail-latency metric)."""
        return self.percentile(99.0)

    def maximum(self) -> float:
        """Largest sample."""
        if not self._values:
            raise ValueError(f"metric {self.name!r} has no samples")
        return max(self._values)

    def time_weighted_mean(self, horizon: float) -> float:
        """Mean of a piecewise-constant signal over ``[0, horizon]``.

        Each sample is interpreted as the signal value from its timestamp
        until the next sample (or the horizon).
        """
        if not self._values:
            raise ValueError(f"metric {self.name!r} has no samples")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        total = 0.0
        for i, (t, v) in enumerate(zip(self._times, self._values)):
            t_next = self._times[i + 1] if i + 1 < len(self._times) else horizon
            t_next = min(t_next, horizon)
            if t >= horizon:
                break
            total += v * (t_next - t)
        # Signal is 0 before the first sample.
        return total / horizon


@dataclass
class Tracer:
    """A bag of named :class:`MetricSeries`, one per metric."""

    series: Dict[str, MetricSeries] = field(default_factory=dict)

    def metric(self, name: str) -> MetricSeries:
        """Get or create the series called ``name``."""
        if name not in self.series:
            self.series[name] = MetricSeries(name)
        return self.series[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Record one sample on the named series."""
        self.metric(name).record(time, value)

    def names(self) -> List[str]:
        """Sorted list of metric names recorded so far."""
        return sorted(self.series)


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a raw sample list.

    Returns mean, standard deviation, min, p50, p90, p99 and max --
    the row format used throughout EXPERIMENTS.md.
    """
    if not samples:
        raise ValueError("cannot summarize an empty sample list")
    arr = np.asarray(samples, dtype=float)
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def confidence_interval_95(samples: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(arr.mean())
    half = 1.96 * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (mean - half, mean + half)

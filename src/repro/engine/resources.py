"""Shared-resource primitives for the simulation kernel.

Provides the classic trio used by queueing models:

- :class:`Resource` -- a counted server pool with a FIFO wait queue
  (e.g. CPU cores, FPGA slots).
- :class:`Container` -- a continuous quantity with put/get
  (e.g. buffer bytes, power budget).
- :class:`Store` -- a FIFO queue of Python objects
  (e.g. request queues between service stages).

All waiting is fair (FIFO) and deterministic. Waiters whose process was
interrupted are *cancelled* and pruned, so capacity (or items) never
leaks to a grant nobody will consume.

Giving a primitive a ``name`` makes it self-describing: when the owning
simulator has an attached
:class:`~repro.engine.observability.Observability`, every state change
publishes queue-length / occupancy / level gauges under that name.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.engine.sim import Event, Simulator
from repro.errors import SimulationError


class Resource:
    """A pool of ``capacity`` identical servers with FIFO queueing.

    Usage from a process::

        grant = yield resource.acquire()
        ...                      # hold the resource
        resource.release()
    """

    def __init__(
        self, sim: Simulator, capacity: int = 1, name: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Occupancy accounting for utilization metrics. A resource may be
        # created mid-run (dynamic allocation), so elapsed time is
        # measured from creation, not from t=0.
        self._created = sim.now
        self._busy_time = 0.0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of live (non-cancelled) acquire requests waiting."""
        return sum(1 for waiter in self._waiters if not waiter._cancelled)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def _publish(self) -> None:
        if self.name is None:
            return
        observability = self.sim.observability
        if observability is None:
            return
        now = self.sim.now
        registry = observability.registry
        registry.gauge(f"{self.name}.in_use").set(now, float(self._in_use))
        registry.gauge(f"{self.name}.queue_length").set(
            now, float(self.queue_length)
        )
        registry.gauge(f"{self.name}.utilization").set(now, self.utilization())

    def utilization(self) -> float:
        """Time-averaged fraction of capacity in use since *creation*."""
        self._account()
        elapsed = self.sim.now - self._created
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    def acquire(self) -> Event:
        """Request one server; the returned event fires when granted."""
        evt = Event(self.sim)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            evt.succeed(self)
        else:
            self._waiters.append(evt)
        if self.name is not None:
            self._publish()
        return evt

    def release(self) -> None:
        """Return one server to the pool, waking the next waiter if any.

        Waiters whose event was cancelled (their process was interrupted
        while queued) are pruned instead of granted, so the server goes
        to a live waiter or back to the pool -- never into the void.
        """
        if self._in_use <= 0:
            raise SimulationError("release without matching acquire")
        self._account()
        while self._waiters and self._waiters[0]._cancelled:
            self._waiters.popleft()
        if self._waiters:
            # Hand the server directly to the next waiter; occupancy
            # stays constant.
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1
        if self.name is not None:
            self._publish()


class Container:
    """A continuous quantity (bytes, joules, dollars) with blocking get.

    ``put`` never blocks unless a ``capacity`` ceiling is set; ``get``
    blocks until enough quantity is available. Waiters are served FIFO,
    and a large ``get`` at the head of the queue blocks smaller ones
    behind it (no overtaking), which keeps behaviour deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        initial: float = 0.0,
        capacity: Optional[float] = None,
        name: Optional[str] = None,
    ) -> None:
        if initial < 0:
            raise SimulationError(f"negative initial level: {initial}")
        if capacity is not None and initial > capacity:
            raise SimulationError("initial level exceeds capacity")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = float(initial)
        self._getters: Deque[tuple[float, Event]] = deque()
        self._putters: Deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Quantity currently stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under the capacity ceiling."""
        if amount < 0:
            raise SimulationError(f"negative put: {amount}")
        evt = Event(self.sim)
        self._putters.append((amount, evt))
        self._drain()
        return evt

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when available."""
        if amount < 0:
            raise SimulationError(f"negative get: {amount}")
        evt = Event(self.sim)
        self._getters.append((amount, evt))
        self._drain()
        return evt

    def _publish(self) -> None:
        if self.name is None:
            return
        observability = self.sim.observability
        if observability is None:
            return
        now = self.sim.now
        registry = observability.registry
        registry.gauge(f"{self.name}.level").set(now, self._level)
        registry.gauge(f"{self.name}.waiting_get").set(
            now, float(len(self._getters))
        )
        registry.gauge(f"{self.name}.waiting_put").set(
            now, float(len(self._putters))
        )

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and self._putters[0][1]._cancelled:
                self._putters.popleft()
            if self._putters:
                amount, evt = self._putters[0]
                if self.capacity is None or self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    evt.succeed(amount)
                    progressed = True
            while self._getters and self._getters[0][1]._cancelled:
                self._getters.popleft()
            if self._getters:
                amount, evt = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    evt.succeed(amount)
                    progressed = True
        if self.name is not None:
            self._publish()


class Store:
    """A FIFO queue of arbitrary items with blocking get.

    An optional ``capacity`` makes ``put`` block when full, modelling
    bounded buffers (backpressure).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; fires once it is accepted into the buffer."""
        evt = Event(self.sim)
        self._putters.append((item, evt))
        self._drain()
        return evt

    def get(self) -> Event:
        """Dequeue the oldest item; fires with the item."""
        evt = Event(self.sim)
        self._getters.append(evt)
        self._drain()
        return evt

    def _publish(self) -> None:
        if self.name is None:
            return
        observability = self.sim.observability
        if observability is None:
            return
        now = self.sim.now
        registry = observability.registry
        registry.gauge(f"{self.name}.items").set(now, float(len(self._items)))
        registry.gauge(f"{self.name}.waiting_get").set(
            now, float(len(self._getters))
        )
        registry.gauge(f"{self.name}.waiting_put").set(
            now, float(len(self._putters))
        )

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Accept queued puts while there is room, skipping puts whose
            # producer abandoned them (the item must not enter the buffer).
            while self._putters and self._putters[0][1]._cancelled:
                self._putters.popleft()
            if self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                item, evt = self._putters.popleft()
                self._items.append(item)
                evt.succeed(item)
                progressed = True
            # Serve queued gets while items exist, skipping dead getters
            # (an item granted to one would be lost forever).
            while self._getters and self._getters[0]._cancelled:
                self._getters.popleft()
            if self._getters and self._items:
                evt = self._getters.popleft()
                evt.succeed(self._items.popleft())
                progressed = True
        if self.name is not None:
            self._publish()

"""Observability substrate: span tracing and a metrics registry.

The experiments' numbers (tail latencies, queue depths, utilization) are
*measured outputs* of the DES engine, so the engine must be inspectable:

- :class:`SpanLog` records named spans -- (enter, exit) pairs in virtual
  time with parent/child nesting and tags -- into a bounded ring buffer,
  exportable as JSONL for offline analysis.
- :class:`Counter`, :class:`Gauge` and :class:`Histogram` (fixed
  log-scale buckets) live in a :class:`Registry` whose
  :meth:`Registry.snapshot` feeds experiment reports.
- :class:`Observability` bundles both and attaches to a
  :class:`~repro.engine.sim.Simulator`, enabling ``sim.span(...)``
  context managers, per-process accounting and auto-published
  resource gauges.

Everything here is optional: a simulator without an attached
:class:`Observability` pays only a handful of ``is None`` checks per
event (guarded by the X10 overhead benchmark).
"""

from __future__ import annotations

import itertools
import json
from bisect import bisect_left
from collections import deque
from typing import Any, Dict, List, Optional, Tuple


class Span:
    """One named interval of virtual time, with tags and a parent link."""

    __slots__ = ("span_id", "parent_id", "name", "tags", "start", "end")

    def __init__(
        self,
        span_id: int,
        name: str,
        start: float,
        tags: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.start = float(start)
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Span length in virtual time (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        """Whether the span has been finished."""
        return self.end is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (the ``trace.jsonl`` row)."""
        record: Dict[str, Any] = {
            "span": self.name,
            "id": self.span_id,
            "start": self.start,
            "end": self.end,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.tags:
            record["tags"] = self.tags
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, start={self.start:g}, "
            f"end={'open' if self.end is None else format(self.end, 'g')})"
        )


class SpanLog:
    """A bounded ring buffer of completed :class:`Span` records.

    Spans are appended on *finish*; when the buffer is full the oldest
    span is dropped and :attr:`dropped` incremented, so long runs stay
    bounded in memory while the tail of the trace survives.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: deque = deque(maxlen=capacity)
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._spans)

    def start(
        self,
        name: str,
        time: float,
        tags: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
    ) -> Span:
        """Open a span at ``time``; it is buffered when finished."""
        return Span(next(self._ids), name, time, tags, parent_id)

    def finish(self, span: Span, time: float) -> Span:
        """Close ``span`` at ``time`` and append it to the buffer."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already finished")
        if time < span.start:
            raise ValueError(
                f"span {span.name!r} cannot end before it starts: "
                f"{time} < {span.start}"
            )
        span.end = float(time)
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        tags: Optional[Dict[str, Any]] = None,
        parent_id: Optional[int] = None,
    ) -> Span:
        """Record an already-measured interval in one call."""
        return self.finish(self.start(name, start, tags, parent_id), end)

    def spans(self) -> List[Span]:
        """The buffered (completed) spans, oldest first."""
        return list(self._spans)

    def by_name(self) -> Dict[str, Tuple[int, float]]:
        """Aggregate spans: name -> (count, total duration)."""
        out: Dict[str, Tuple[int, float]] = {}
        for span in self._spans:
            count, total = out.get(span.name, (0, 0.0))
            out[span.name] = (count + 1, total + span.duration)
        return out

    def by_tag(self, key: str, default: str = "") -> Dict[str, Tuple[int, float]]:
        """Aggregate spans by a tag value: value -> (count, total duration)."""
        out: Dict[str, Tuple[int, float]] = {}
        for span in self._spans:
            value = str(span.tags.get(key, default))
            count, total = out.get(value, (0, 0.0))
            out[value] = (count + 1, total + span.duration)
        return out

    def hottest(self, n: int = 5) -> List[Tuple[str, int, float]]:
        """Top ``n`` span names by total duration: (name, count, total)."""
        ranked = sorted(
            ((name, count, total) for name, (count, total) in self.by_name().items()),
            key=lambda item: (-item[2], item[0]),
        )
        return ranked[:n]

    def export_jsonl(self, path: str, header: Optional[Dict[str, Any]] = None) -> int:
        """Write spans (optionally preceded by a header object) as JSONL.

        Returns the number of lines written.
        """
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            if header is not None:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                lines += 1
            for span in self._spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
                lines += 1
        return lines


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount


class Gauge:
    """A piecewise-constant signal sampled at (time, value) points.

    Keeps O(1) state -- last value, extrema and the running time
    integral -- so long simulations can publish queue lengths and
    utilization on every transition without unbounded memory.
    """

    __slots__ = (
        "name", "n_samples", "first_time", "last_time", "last_value",
        "vmin", "vmax", "_integral",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.n_samples = 0
        self.first_time = 0.0
        self.last_time = 0.0
        self.last_value = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._integral = 0.0

    def set(self, time: float, value: float) -> None:
        """Record the signal transitioning to ``value`` at ``time``."""
        if self.n_samples and time < self.last_time:
            raise ValueError(
                f"gauge {self.name!r}: samples must be time-ordered "
                f"({time} < {self.last_time})"
            )
        if self.n_samples:
            self._integral += self.last_value * (time - self.last_time)
        else:
            self.first_time = time
        self.last_time = time
        self.last_value = value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        self.n_samples += 1

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the signal over [first sample, ``until``].

        ``until`` defaults to the last sample time; with a single sample
        (or ``until`` equal to the first sample time) the last value is
        returned.
        """
        if not self.n_samples:
            raise ValueError(f"gauge {self.name!r} has no samples")
        if until is None:
            until = self.last_time
        if until < self.last_time:
            raise ValueError(
                f"gauge {self.name!r}: until={until} precedes last sample"
            )
        elapsed = until - self.first_time
        if elapsed <= 0:
            return self.last_value
        integral = self._integral + self.last_value * (until - self.last_time)
        return integral / elapsed


#: Fixed log-scale histogram bucket upper bounds: 10^(k/4) for
#: k in [-36, 24], i.e. 1e-9 .. 1e6 with 4 buckets per decade.
HISTOGRAM_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (k / 4.0) for k in range(-36, 25)
)


class Histogram:
    """A fixed log-scale-bucket histogram with exact count/sum/extrema.

    Bucket ``i`` counts observations ``v`` with
    ``HISTOGRAM_BOUNDS[i-1] < v <= HISTOGRAM_BOUNDS[i]``; values at or
    below the lowest bound land in bucket 0, values above the highest in
    the overflow bucket.
    """

    __slots__ = ("name", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(HISTOGRAM_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    def mean(self) -> float:
        """Exact arithmetic mean of the observations."""
        if not self.count:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Bucket-resolution ``q``-th percentile (0..100).

        Returns the upper bound of the bucket containing the target
        rank, clamped to the exact observed [min, max].
        """
        if not self.count:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index >= len(HISTOGRAM_BOUNDS):
                    return self.vmax
                bound = HISTOGRAM_BOUNDS[index]
                return min(max(bound, self.vmin), self.vmax)
        return self.vmax

    def p50(self) -> float:
        """Median (bucket resolution)."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """99th percentile (bucket resolution) -- the tail-latency metric."""
        return self.percentile(99.0)


class Registry:
    """Named metric instruments, created on first use.

    One registry per experiment run; :meth:`snapshot` renders every
    instrument into plain dicts for reports and JSON export.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self, until: Optional[float] = None) -> Dict[str, Any]:
        """All instruments as nested plain dicts, names sorted.

        ``until`` extends gauge time-weighted means to the given time
        (typically the simulation end).
        """
        gauges: Dict[str, Any] = {}
        for name in sorted(self.gauges):
            gauge = self.gauges[name]
            if not gauge.n_samples:
                continue
            at = until if until is not None and until >= gauge.last_time else None
            gauges[name] = {
                "last": gauge.last_value,
                "min": gauge.vmin,
                "max": gauge.vmax,
                "mean": gauge.time_weighted_mean(at),
            }
        histograms: Dict[str, Any] = {}
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if not histogram.count:
                continue
            histograms[name] = {
                "count": histogram.count,
                "sum": histogram.total,
                "mean": histogram.mean(),
                "min": histogram.vmin,
                "max": histogram.vmax,
                "p50": histogram.p50(),
                "p99": histogram.p99(),
            }
        return {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": gauges,
            "histograms": histograms,
        }


class _SpanContext:
    """Context manager produced by :meth:`Observability.span`."""

    __slots__ = ("_obs", "_name", "_tags", "_span", "_key")

    def __init__(self, obs: "Observability", name: str, tags: Dict[str, Any]) -> None:
        self._obs = obs
        self._name = name
        self._tags = tags
        self._span: Optional[Span] = None
        self._key: Any = None

    def __enter__(self) -> Span:
        obs = self._obs
        if obs.sim is None:
            raise RuntimeError(
                "sim.span() requires the Observability to be attached "
                "to a Simulator"
            )
        self._key = obs._context_key()
        stack = obs._stacks.setdefault(self._key, [])
        parent_id = stack[-1].span_id if stack else None
        self._span = obs.spans.start(
            self._name, obs.sim.now, self._tags, parent_id
        )
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        obs = self._obs
        span = self._span
        if span is None:  # pragma: no cover - __enter__ raised
            return False
        if exc_type is not None:
            span.tags["error"] = exc_type.__name__
        obs.spans.finish(span, obs.sim.now)
        stack = obs._stacks.get(self._key)
        if stack:
            try:
                stack.remove(span)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not stack:
                del obs._stacks[self._key]
        return False


class Observability:
    """Span log + metric registry, attachable to one simulator.

    Usage::

        obs = Observability()
        sim = Simulator(observability=obs)   # or obs.attach(sim)
        with sim.span("stage", subsystem="workloads.search"):
            yield sim.timeout(1.0)
        obs.registry.counter("requests").inc()
        obs.snapshot()
    """

    def __init__(self, span_capacity: int = 65_536) -> None:
        self.registry = Registry()
        self.spans = SpanLog(capacity=span_capacity)
        self.sim: Any = None
        #: process name -> {"spawns", "steps", "completions", "sim_time"}
        self.process_stats: Dict[str, Dict[str, float]] = {}
        #: subsystem tag of the innermost open span -> event-step count
        self.steps_by_subsystem: Dict[str, int] = {}
        #: (process name, virtual time, repr(exception)) per crash seen
        self.errors: List[Tuple[str, float, str]] = []
        self._stacks: Dict[Any, List[Span]] = {}

    def attach(self, sim: Any) -> "Observability":
        """Bind to ``sim`` (sets ``sim.observability``); returns self."""
        self.sim = sim
        sim.observability = self
        return self

    def span(self, name: str, **tags: Any) -> _SpanContext:
        """A context manager recording a span in the attached sim's time."""
        return _SpanContext(self, name, tags)

    def open_spans(self) -> List[Span]:
        """Spans entered but not yet exited, outermost first."""
        out: List[Span] = []
        for stack in self._stacks.values():
            out.extend(stack)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Registry snapshot extended with span, process and error stats."""
        until = self.sim.now if self.sim is not None else None
        out = self.registry.snapshot(until)
        out["spans"] = {
            "recorded": len(self.spans),
            "dropped": self.spans.dropped,
            "open": len(self.open_spans()),
            "hottest": [
                {"name": name, "count": count, "total": total}
                for name, count, total in self.spans.hottest()
            ],
        }
        out["processes"] = {
            name: dict(stats)
            for name, stats in sorted(self.process_stats.items())
        }
        out["steps_by_subsystem"] = dict(sorted(self.steps_by_subsystem.items()))
        out["errors"] = list(self.errors)
        if self.sim is not None:
            out["events_processed"] = self.sim.events_processed
            out["sim_time"] = self.sim.now
        return out

    def export_jsonl(self, path: str, header: Optional[Dict[str, Any]] = None) -> int:
        """Export the span buffer as JSONL (see :meth:`SpanLog.export_jsonl`)."""
        return self.spans.export_jsonl(path, header=header)

    # -- engine integration (called by Simulator/ProcessHandle) -----------

    def _context_key(self) -> Any:
        process = getattr(self.sim, "_active_process", None)
        return id(process) if process is not None else None

    def _note_step(self, handle: Any) -> None:
        stats = self.process_stats.get(handle.name)
        if stats is None:
            stats = self.process_stats[handle.name] = {
                "spawns": 0, "steps": 0, "completions": 0, "sim_time": 0.0,
            }
        if handle.steps == 0:
            stats["spawns"] += 1
        handle.steps += 1
        stats["steps"] += 1
        stack = self._stacks.get(id(handle))
        if stack:
            subsystem = stack[-1].tags.get("subsystem")
            if subsystem:
                self.steps_by_subsystem[subsystem] = (
                    self.steps_by_subsystem.get(subsystem, 0) + 1
                )

    def _note_process_end(self, handle: Any) -> None:
        stats = self.process_stats.get(handle.name)
        if stats is None:  # finished without ever stepping via us
            stats = self.process_stats[handle.name] = {
                "spawns": 1, "steps": 0, "completions": 0, "sim_time": 0.0,
            }
        stats["completions"] += 1
        lifetime = handle.lifetime()
        if lifetime is not None:
            stats["sim_time"] += lifetime
        self._stacks.pop(id(handle), None)

    def _note_process_error(self, handle: Any, exc: BaseException) -> None:
        self.errors.append((handle.name, self.sim.now, repr(exc)))
        self.registry.counter("engine.process_errors").inc()

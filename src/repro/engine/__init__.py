"""Deterministic discrete-event simulation kernel.

The kernel follows the SimPy model: processes are generators yielding
:class:`~repro.engine.sim.Event` objects; :class:`~repro.engine.sim.Simulator`
owns the virtual clock. :mod:`~repro.engine.resources` adds counted
resources, continuous containers and FIFO stores;
:mod:`~repro.engine.trace` collects metric series;
:mod:`~repro.engine.observability` adds span tracing, a metrics registry
(counters/gauges/histograms) and engine hooks;
:mod:`~repro.engine.randomness` provides reproducible variate streams;
:mod:`~repro.engine.faults` injects deterministic runtime faults;
:mod:`~repro.engine.resilience` provides retry/deadline/hedge
primitives for tail-tolerant processes; and :mod:`~repro.engine.sharded`
runs one kernel per fabric shard under conservative time-window
synchronization, bit-for-bit equivalent to a single-process run.
"""

from repro.engine.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from repro.engine.observability import (
    Counter,
    Gauge,
    Histogram,
    Observability,
    Registry,
    Span,
    SpanLog,
)
from repro.engine.randomness import RandomStream
from repro.engine.resilience import (
    HedgeOutcome,
    RetryPolicy,
    hedge,
    retry,
    with_deadline,
)
from repro.engine.resources import Container, Resource, Store
from repro.engine.sharded import (
    ShardPlan,
    ShardedRunResult,
    ShardedSimulation,
    partition_fabric,
)
from repro.engine.sim import Event, Interrupt, ProcessHandle, Simulator, Timeout
from repro.engine.trace import (
    MetricSeries,
    Tracer,
    confidence_interval_95,
    summarize,
)

__all__ = [
    "Container",
    "Counter",
    "Event",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "Gauge",
    "HedgeOutcome",
    "Histogram",
    "Interrupt",
    "MetricSeries",
    "Observability",
    "ProcessHandle",
    "RandomStream",
    "Registry",
    "Resource",
    "RetryPolicy",
    "ShardPlan",
    "ShardedRunResult",
    "ShardedSimulation",
    "Simulator",
    "Span",
    "SpanLog",
    "Store",
    "Timeout",
    "Tracer",
    "confidence_interval_95",
    "hedge",
    "partition_fabric",
    "retry",
    "summarize",
    "with_deadline",
]

"""Deterministic discrete-event simulation kernel.

The kernel follows the SimPy model: processes are generators yielding
:class:`~repro.engine.sim.Event` objects; :class:`~repro.engine.sim.Simulator`
owns the virtual clock. :mod:`~repro.engine.resources` adds counted
resources, continuous containers and FIFO stores;
:mod:`~repro.engine.trace` collects metric series;
:mod:`~repro.engine.observability` adds span tracing, a metrics registry
(counters/gauges/histograms) and engine hooks; and
:mod:`~repro.engine.randomness` provides reproducible variate streams.
"""

from repro.engine.observability import (
    Counter,
    Gauge,
    Histogram,
    Observability,
    Registry,
    Span,
    SpanLog,
)
from repro.engine.randomness import RandomStream
from repro.engine.resources import Container, Resource, Store
from repro.engine.sim import Event, Interrupt, ProcessHandle, Simulator, Timeout
from repro.engine.trace import (
    MetricSeries,
    Tracer,
    confidence_interval_95,
    summarize,
)

__all__ = [
    "Container",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "Interrupt",
    "MetricSeries",
    "Observability",
    "ProcessHandle",
    "RandomStream",
    "Registry",
    "Resource",
    "Simulator",
    "Span",
    "SpanLog",
    "Store",
    "Timeout",
    "Tracer",
    "confidence_interval_95",
    "summarize",
]

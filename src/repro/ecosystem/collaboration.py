"""Coverage, overlap and gap analysis over the initiative landscape.

Makes Figure 1 computable: a bipartite initiative-scope graph whose
structure answers the questions §III settles in prose -- which areas are
covered, which initiative owns Big Data hardware/networking (RETHINK big,
uniquely), and which neighbouring initiatives a roadmap must coordinate
with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.ecosystem.actors import (
    CONSORTIUM,
    ConsortiumPartner,
    INITIATIVE_CATALOG,
    Initiative,
    ScopeArea,
)
from repro.errors import ModelError


def landscape_graph(
    initiatives: Optional[Dict[str, Initiative]] = None,
) -> nx.Graph:
    """The bipartite initiative/scope graph of Figure 1."""
    catalog = initiatives or INITIATIVE_CATALOG
    graph = nx.Graph()
    for initiative in catalog.values():
        graph.add_node(initiative.name, bipartite="initiative",
                       kind=initiative.kind.value)
        for scope in initiative.scopes:
            if scope.value not in graph:
                graph.add_node(scope.value, bipartite="scope")
            graph.add_edge(initiative.name, scope.value)
    return graph


def coverage_matrix(
    initiatives: Optional[Dict[str, Initiative]] = None,
) -> Dict[str, List[str]]:
    """scope value -> initiative names covering it (sorted)."""
    catalog = initiatives or INITIATIVE_CATALOG
    matrix: Dict[str, List[str]] = {area.value: [] for area in ScopeArea}
    for initiative in catalog.values():
        for scope in initiative.scopes:
            matrix[scope.value].append(initiative.name)
    return {scope: sorted(names) for scope, names in matrix.items()}


def uncovered_scopes(
    initiatives: Optional[Dict[str, Initiative]] = None,
) -> List[str]:
    """Scope areas no initiative claims (the gaps)."""
    return sorted(
        scope for scope, names in coverage_matrix(initiatives).items()
        if not names
    )


def exclusive_scopes(
    name: str, initiatives: Optional[Dict[str, Initiative]] = None,
) -> List[str]:
    """Scopes only ``name`` covers -- its unique mandate."""
    catalog = initiatives or INITIATIVE_CATALOG
    if name not in catalog:
        raise ModelError(f"unknown initiative: {name!r}")
    matrix = coverage_matrix(initiatives)
    return sorted(
        scope for scope, names in matrix.items() if names == [name]
    )


def overlap_pairs(
    initiatives: Optional[Dict[str, Initiative]] = None,
) -> List[Tuple[str, str, int]]:
    """Initiative pairs sharing scopes, with shared-scope counts."""
    catalog = initiatives or INITIATIVE_CATALOG
    names = sorted(catalog)
    out = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = set(catalog[a].scopes) & set(catalog[b].scopes)
            if shared:
                out.append((a, b, len(shared)))
    return out


def coordination_neighbours(
    name: str, initiatives: Optional[Dict[str, Initiative]] = None,
) -> List[str]:
    """Initiatives within two hops in the landscape graph.

    These are the bodies a roadmap must coordinate with (the ETP/PPP
    collaboration arrows in Figure 1).
    """
    catalog = initiatives or INITIATIVE_CATALOG
    if name not in catalog:
        raise ModelError(f"unknown initiative: {name!r}")
    graph = landscape_graph(catalog)
    reachable = nx.single_source_shortest_path_length(graph, name, cutoff=2)
    return sorted(
        node
        for node, distance in reachable.items()
        if node != name and node in catalog
    )


# -- Table 1: consortium expertise coverage -------------------------------

#: Capability areas an industry-driven hardware roadmap needs.
REQUIRED_CAPABILITIES = (
    "computer-architecture",
    "database-systems",
    "hardware-conscious-databases",
    "data-mining",
    "silicon-ip",
    "business-intelligence",
    "decision-analysis",
)


def consortium_coverage(
    partners: Optional[List[ConsortiumPartner]] = None,
) -> Dict[str, List[str]]:
    """capability -> partner short names providing it."""
    roster = partners if partners is not None else CONSORTIUM
    if not roster:
        raise ModelError("empty consortium")
    coverage: Dict[str, List[str]] = {}
    for capability in REQUIRED_CAPABILITIES:
        coverage[capability] = sorted(
            p.short_name for p in roster if capability in p.expertise
        )
    return coverage


def consortium_balance(
    partners: Optional[List[ConsortiumPartner]] = None,
) -> Dict[str, int]:
    """Counts per partner kind (the 'large industry, SME, academia' mix)."""
    roster = partners if partners is not None else CONSORTIUM
    if not roster:
        raise ModelError("empty consortium")
    balance: Dict[str, int] = {}
    for partner in roster:
        balance[partner.kind] = balance.get(partner.kind, 0) + 1
    return balance

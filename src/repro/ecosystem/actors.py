"""The European initiative landscape (Figure 1) and Table 1's consortium.

Figure 1 of the paper positions RETHINK big among the ETPs, PPPs and
associations that divide the European digital-roadmap space. Table 1
lists the project consortium and each partner's expertise. Both become
data here so the F1/T1 benches can compute coverage, overlap and gaps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ModelError


class ScopeArea(enum.Enum):
    """Topical areas the initiatives divide among themselves (§III)."""

    BIG_DATA_HARDWARE = "big-data-hardware"
    BIG_DATA_NETWORKING = "big-data-networking"
    BIG_DATA_APPLICATIONS = "big-data-applications"
    DATA_VALUE = "data-value"
    HPC = "hpc"
    IOT = "iot"
    TELECOM_5G = "telecom-5g"
    MEDIA = "media"
    SOFTWARE_SERVICES = "software-services"
    SMART_SYSTEMS = "smart-systems"
    PHOTONICS = "photonics"
    GENERAL_COMPUTE = "general-compute"


class ActorKind(enum.Enum):
    """Kinds of roadmap actors."""

    ETP = "etp"  # European Technology Platform
    PPP = "ppp"  # Public-Private Partnership
    PROJECT = "project"
    ASSOCIATION = "association"


@dataclass(frozen=True)
class Initiative:
    """One actor in the roadmap ecosystem."""

    name: str
    kind: ActorKind
    scopes: Tuple[ScopeArea, ...]

    def __post_init__(self) -> None:
        if not self.scopes:
            raise ModelError(f"{self.name}: needs at least one scope")

    def covers(self, area: ScopeArea) -> bool:
        """Whether the initiative claims ``area``."""
        return area in self.scopes


#: The §III landscape: who handles what (from the paper's text).
INITIATIVE_CATALOG: Dict[str, Initiative] = {
    init.name: init
    for init in (
        Initiative(
            "RETHINK-big",
            ActorKind.PROJECT,
            (ScopeArea.BIG_DATA_HARDWARE, ScopeArea.BIG_DATA_NETWORKING),
        ),
        Initiative("BDVA", ActorKind.ASSOCIATION,
                   (ScopeArea.BIG_DATA_APPLICATIONS, ScopeArea.DATA_VALUE)),
        Initiative("ETP4HPC", ActorKind.ETP, (ScopeArea.HPC,)),
        Initiative("AIOTI", ActorKind.ASSOCIATION, (ScopeArea.IOT,)),
        Initiative("5G-PPP", ActorKind.PPP, (ScopeArea.TELECOM_5G,)),
        Initiative("NEM", ActorKind.ETP, (ScopeArea.MEDIA,)),
        Initiative("NESSI", ActorKind.ETP, (ScopeArea.SOFTWARE_SERVICES,)),
        Initiative("EPoSS", ActorKind.ETP, (ScopeArea.SMART_SYSTEMS,)),
        Initiative("Photonics21", ActorKind.ETP, (ScopeArea.PHOTONICS,)),
    )
}


@dataclass(frozen=True)
class ConsortiumPartner:
    """One Table 1 row."""

    name: str
    short_name: str
    kind: str  # "academic" | "large-industry" | "sme"
    expertise: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("academic", "large-industry", "sme"):
            raise ModelError(f"{self.short_name}: bad kind {self.kind!r}")
        if not self.expertise:
            raise ModelError(f"{self.short_name}: needs expertise areas")


#: Table 1 verbatim.
CONSORTIUM: List[ConsortiumPartner] = [
    ConsortiumPartner(
        "Barcelona Supercomputing Center", "BSC", "academic",
        ("computer-architecture", "system-architecture"),
    ),
    ConsortiumPartner(
        "Technische Universitat Berlin", "TUB", "academic",
        ("database-systems", "information-management"),
    ),
    ConsortiumPartner(
        "Ecole Polytechnique Federale de Lausanne", "EPFL", "academic",
        ("database-systems", "database-applications"),
    ),
    ConsortiumPartner(
        "Centrum voor Wiskunde en Informatica", "CWI", "academic",
        ("hardware-conscious-databases",),
    ),
    ConsortiumPartner(
        "University of Manchester", "UoM", "academic",
        ("computer-architecture",),
    ),
    ConsortiumPartner(
        "Universidad Politecnica de Madrid", "UPM", "academic",
        ("data-mining", "data-warehousing"),
    ),
    ConsortiumPartner(
        "ARM Ltd.", "ARM", "large-industry", ("silicon-ip",),
    ),
    ConsortiumPartner(
        "Internet Memory Research", "IMR", "sme",
        ("web-scale-sourcing", "business-intelligence"),
    ),
    ConsortiumPartner(
        "Thales SA", "THALES", "large-industry",
        ("situation-analysis", "decision-analysis", "planning-optimization"),
    ),
]

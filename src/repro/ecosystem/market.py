"""Market concentration and vendor lock-in analysis (Findings 3/4, E13).

Quantifies the market claims: Nvidia holds ">95% of GPU-accelerated
systems in the TOP500"; "the vast majority of server hardware is based on
Intel processors"; and switching vendors "requires considerable
Non-recurring Engineering cost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.econ.nre import vendor_switch_nre_usd
from repro.errors import ModelError


@dataclass(frozen=True)
class MarketShare:
    """One market's vendor share distribution."""

    market: str
    shares: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ModelError(f"{self.market}: empty share table")
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ModelError(
                f"{self.market}: shares sum to {total}, expected 1.0"
            )
        if any(v < 0 for v in self.shares.values()):
            raise ModelError(f"{self.market}: negative share")

    def hhi(self) -> float:
        """Herfindahl-Hirschman index on the 0-10,000 scale.

        The DoJ threshold for a 'highly concentrated' market is 2,500.
        """
        return sum((share * 100.0) ** 2 for share in self.shares.values())

    def leader(self) -> str:
        """The dominant vendor."""
        return max(self.shares, key=lambda k: (self.shares[k], k))

    def leader_share(self) -> float:
        """The dominant vendor's share."""
        return self.shares[self.leader()]

    def is_highly_concentrated(self) -> bool:
        """HHI above the 2,500 'highly concentrated' threshold."""
        return self.hhi() > 2_500.0


#: 2016-era market structures from the paper's claims.
MARKETS_2016: Dict[str, MarketShare] = {
    "gpgpu-top500": MarketShare(
        "gpgpu-top500", {"nvidia": 0.955, "amd": 0.03, "intel-phi": 0.015}
    ),
    "server-cpu": MarketShare(
        "server-cpu", {"intel": 0.985, "amd": 0.01, "others": 0.005}
    ),
    "fpga": MarketShare(
        "fpga", {"xilinx": 0.5, "intel-altera": 0.4, "others": 0.1}
    ),
    "datacenter-switch": MarketShare(
        "datacenter-switch",
        {"cisco": 0.55, "arista": 0.12, "juniper": 0.1, "hpe": 0.08,
         "whitebox": 0.15},
    ),
}


def concentration_report(
    markets: Dict[str, MarketShare] = None,
) -> List[dict]:
    """HHI/leader table across the modelled markets, HHI-descending."""
    table = []
    for market in (markets or MARKETS_2016).values():
        table.append(
            {
                "market": market.market,
                "leader": market.leader(),
                "leader_share": market.leader_share(),
                "hhi": market.hhi(),
                "highly_concentrated": market.is_highly_concentrated(),
            }
        )
    return sorted(table, key=lambda row: -row["hhi"])


def concentration_scenarios(
    market: MarketShare,
    sigma: float = 0.3,
    n_samples: int = 5_000,
    seed: int = 0,
) -> Dict[str, float]:
    """Monte-Carlo concentration outlook under share uncertainty.

    Jitters every vendor share lognormally (renormalized per sample)
    and recomputes the HHI for all samples in one
    :mod:`repro.mc` batch pass. Answers how robust the "highly
    concentrated" verdict is to measurement error in the 2016 share
    estimates: even large ``sigma`` rarely pulls the GPGPU market below
    the DoJ 2,500 threshold.
    """
    import numpy as np

    from repro.mc import hhi_batch, sampled_market_shares

    vendors = list(market.shares)
    shares = [market.shares[vendor] for vendor in vendors]
    sampled = sampled_market_shares(shares, sigma, n_samples, seed)
    hhi = hhi_batch(sampled)
    leader_index = vendors.index(market.leader())
    leader = sampled[:, leader_index]
    return {
        "n_samples": float(n_samples),
        "hhi_p10": float(np.percentile(hhi, 10)),
        "hhi_p50": float(np.percentile(hhi, 50)),
        "hhi_p90": float(np.percentile(hhi, 90)),
        "p_highly_concentrated": float(np.mean(hhi > 2_500.0)),
        "leader_share_p10": float(np.percentile(leader, 10)),
        "leader_share_p50": float(np.percentile(leader, 50)),
        "leader_share_p90": float(np.percentile(leader, 90)),
    }


def lock_in_premium(
    market: MarketShare,
    codebase_kloc: float,
    annual_license_usd: float,
    monopoly_markup: float = 0.3,
) -> Dict[str, float]:
    """What concentration costs a locked-in customer.

    The dominant vendor can hold prices ``monopoly_markup`` above the
    competitive level as long as the markup (over a 3-year horizon) stays
    below the customer's switching NRE. Returns the switching cost, the
    annual premium extractable, and the years of premium the lock-in is
    worth.
    """
    if annual_license_usd <= 0:
        raise ModelError("license cost must be positive")
    if not 0.0 <= monopoly_markup <= 1.0:
        raise ModelError("markup must be in [0, 1]")
    switching = vendor_switch_nre_usd(codebase_kloc)
    premium = annual_license_usd * monopoly_markup * market.leader_share()
    years_protected = switching / premium if premium > 0 else float("inf")
    return {
        "switching_cost_usd": switching,
        "annual_premium_usd": premium,
        "years_protected": years_protected,
    }

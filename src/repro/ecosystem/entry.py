"""Market-entry viability: can Europe field a new FPGA vendor? (R6)

Recommendation 6 closes with "Europe should also encourage a new entrant
into the FPGA industry". This module prices that encouragement: an
entrant pays chip NRE plus a toolchain investment, then captures share
from the incumbents along a logistic ramp; the question is the break-even
year as a function of subsidy and achievable share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.adoption import LogisticModel
from repro.econ.nre import ChipProject, EngineeringRates
from repro.econ.silicon import PROCESS_CATALOG, ProcessNode
from repro.errors import ModelError


@dataclass(frozen=True)
class MarketEntryPlan:
    """An entrant's business case.

    ``target_share``: the asymptotic share of ``market_usd_per_year`` the
    entrant can win; ``ramp``: logistic share ramp; ``gross_margin``:
    contribution margin on revenue; ``toolchain_effort_person_years``:
    the software moat (for FPGAs it rivals the silicon itself).
    """

    name: str
    market_usd_per_year: float
    target_share: float
    gross_margin: float
    chip_design_effort_person_years: float
    toolchain_effort_person_years: float
    node: ProcessNode
    subsidy_usd: float = 0.0
    ramp: LogisticModel = LogisticModel(midpoint_years=4.0, steepness=0.9)
    rates: EngineeringRates = EngineeringRates()

    def __post_init__(self) -> None:
        if self.market_usd_per_year <= 0:
            raise ModelError("market size must be positive")
        if not 0.0 < self.target_share <= 1.0:
            raise ModelError("target share must be in (0, 1]")
        if not 0.0 < self.gross_margin < 1.0:
            raise ModelError("gross margin must be in (0, 1)")
        if self.subsidy_usd < 0:
            raise ModelError("subsidy cannot be negative")

    def upfront_investment_usd(self) -> float:
        """Chip NRE + toolchain, net of subsidy."""
        chip = ChipProject(
            name=f"{self.name}-silicon",
            node=self.node,
            design_effort_person_years=self.chip_design_effort_person_years,
            software_effort_person_years=self.toolchain_effort_person_years,
            rates=self.rates,
        )
        return max(0.0, chip.total_nre_usd() - self.subsidy_usd)

    def revenue_usd_in_year(self, year: float) -> float:
        """Entrant revenue ``year`` years after launch."""
        if year < 0:
            return 0.0
        share = self.target_share * self.ramp.cumulative_fraction(year)
        return share * self.market_usd_per_year

    def cumulative_contribution_usd(self, years: float, step: float = 0.25) -> float:
        """Gross contribution integrated over ``years`` (trapezoid)."""
        if years < 0:
            raise ModelError("years cannot be negative")
        total = 0.0
        t = 0.0
        while t < years:
            dt = min(step, years - t)
            lo = self.revenue_usd_in_year(t)
            hi = self.revenue_usd_in_year(t + dt)
            total += 0.5 * (lo + hi) * dt
            t += dt
        return total * self.gross_margin

    def breakeven_year(self, horizon_years: float = 15.0) -> Optional[float]:
        """Year cumulative contribution covers the upfront investment."""
        target = self.upfront_investment_usd()
        lo, hi = 0.0, horizon_years
        if self.cumulative_contribution_usd(hi) < target:
            return None
        while hi - lo > 0.01:
            mid = (lo + hi) / 2.0
            if self.cumulative_contribution_usd(mid) >= target:
                hi = mid
            else:
                lo = mid
        return hi


def eu_fpga_entrant(subsidy_usd: float = 0.0) -> MarketEntryPlan:
    """A 2016-calibrated European FPGA entrant business case.

    FPGA market ~ $4.5B/yr; a credible entrant targets 5% with a 16 nm
    part, ~120 py of silicon and ~200 py of toolchain (the moat).
    """
    return MarketEntryPlan(
        name="eu-fpga",
        market_usd_per_year=4.5e9,
        target_share=0.05,
        gross_margin=0.55,
        chip_design_effort_person_years=120.0,
        toolchain_effort_person_years=200.0,
        node=PROCESS_CATALOG["16nm"],
        subsidy_usd=subsidy_usd,
    )


def subsidy_sensitivity(
    subsidies_usd: List[float], plan_factory=eu_fpga_entrant
) -> Dict[float, Optional[float]]:
    """Break-even year as a function of public subsidy."""
    if not subsidies_usd:
        raise ModelError("need at least one subsidy level")
    return {
        subsidy: plan_factory(subsidy).breakeven_year()
        for subsidy in subsidies_usd
    }

"""Ecosystem layer: Figure 1's initiative landscape, Table 1's
consortium, and market-concentration analysis."""

from repro.ecosystem.actors import (
    ActorKind,
    CONSORTIUM,
    ConsortiumPartner,
    INITIATIVE_CATALOG,
    Initiative,
    ScopeArea,
)
from repro.ecosystem.collaboration import (
    REQUIRED_CAPABILITIES,
    consortium_balance,
    consortium_coverage,
    coordination_neighbours,
    coverage_matrix,
    exclusive_scopes,
    landscape_graph,
    overlap_pairs,
    uncovered_scopes,
)
from repro.ecosystem.entry import (
    MarketEntryPlan,
    eu_fpga_entrant,
    subsidy_sensitivity,
)
from repro.ecosystem.market import (
    MARKETS_2016,
    MarketShare,
    concentration_report,
    concentration_scenarios,
    lock_in_premium,
)

__all__ = [
    "ActorKind",
    "CONSORTIUM",
    "ConsortiumPartner",
    "INITIATIVE_CATALOG",
    "Initiative",
    "MARKETS_2016",
    "MarketEntryPlan",
    "MarketShare",
    "REQUIRED_CAPABILITIES",
    "ScopeArea",
    "concentration_report",
    "concentration_scenarios",
    "consortium_balance",
    "consortium_coverage",
    "coordination_neighbours",
    "coverage_matrix",
    "eu_fpga_entrant",
    "exclusive_scopes",
    "landscape_graph",
    "lock_in_premium",
    "overlap_pairs",
    "subsidy_sensitivity",
    "uncovered_scopes",
]

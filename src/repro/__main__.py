"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``summary``      -- library inventory and experiment list.
- ``roadmap``      -- run the full roadmap pipeline, print the results.
- ``findings``     -- generate the survey corpus, print the Key Findings.
- ``experiments``  -- the experiment registry with paper anchors.
- ``trace``        -- run one experiment instrumented; print the span /
  metrics report and write ``trace.jsonl``.
- ``perf``         -- run the pinned perf microbenches (production
  kernel vs frozen pre-fast-path reference); write ``BENCH_engine.json``
  and ``BENCH_network.json``. Options: ``--out-dir``, ``--rounds``,
  ``--quick``, ``--check <baseline dir>``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_summary() -> int:
    import repro
    from repro.reporting import EXPERIMENTS

    print(f"rethinkbig reproduction library v{repro.__version__}")
    print("paper: RETHINK big (DATE 2017) -- European roadmap for hardware")
    print("       and networking optimizations for Big Data")
    packages = (
        "engine", "econ", "network", "node", "cluster", "frameworks",
        "scheduler", "analytics", "workloads", "survey", "core",
        "ecosystem", "reporting",
    )
    print(f"subpackages ({len(packages)}): {', '.join(packages)}")
    print(f"experiments: {len(EXPERIMENTS)} "
          f"({', '.join(e.experiment_id for e in EXPERIMENTS)})")
    return 0


def _cmd_roadmap() -> int:
    from repro.core import build_roadmap
    from repro.reporting import render_table

    roadmap = build_roadmap()
    print(f"key findings hold: {roadmap.findings_hold}")
    rows = [
        [s.recommendation.rec_id, s.recommendation.title[:58], s.priority]
        for s in roadmap.scored_recommendations
    ]
    print(render_table(["R", "recommendation", "priority"], rows,
                       title="recommendations, priority-ranked"))
    print(f"funded under {roadmap.portfolio.budget_meur:.0f} MEUR: "
          f"R{roadmap.portfolio.rec_ids}")
    return 0


def _cmd_findings() -> int:
    from repro.survey import generate_corpus, headline_counts, key_findings

    corpus = generate_corpus()
    counts = headline_counts(corpus)
    print(f"{counts['n_interviews']} interviews, "
          f"{counts['n_companies']} companies")
    for finding in key_findings(corpus):
        status = "HOLDS" if finding.holds else "FAILS"
        print(f"  [{status}] Finding {finding.finding_id}: "
              f"{finding.statement}")
    return 0


def _cmd_experiments() -> int:
    from repro.reporting import EXPERIMENTS, render_table

    rows = [
        [e.experiment_id, e.paper_anchor, e.claim[:60], e.bench]
        for e in EXPERIMENTS
    ]
    print(render_table(["id", "anchor", "claim", "bench"], rows))
    return 0


def _cmd_trace(experiment_id, out_path) -> int:
    from repro.reporting import (
        render_trace_report,
        run_trace,
        traceable_experiments,
    )

    if experiment_id is None:
        print("traceable experiments: "
              f"{', '.join(traceable_experiments())}")
        print("usage: python -m repro trace <experiment> [--out trace.jsonl]")
        return 2
    report = run_trace(experiment_id)
    print(render_trace_report(report))
    lines = report.write_jsonl(out_path)
    print(f"\nwrote {lines} lines to {out_path}")
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        # The perf suite owns its own options; hand the rest through.
        from repro.perf import main as perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rethinkbig reproduction library CLI",
    )
    parser.add_argument(
        "command",
        choices=("summary", "roadmap", "findings", "experiments", "trace",
                 "perf"),
        help="what to run",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id for the trace command (e.g. E2)",
    )
    parser.add_argument(
        "--out",
        default="trace.jsonl",
        help="trace output path (trace command only)",
    )
    args = parser.parse_args(argv)
    if args.command == "trace":
        return _cmd_trace(args.experiment, args.out)
    handlers = {
        "summary": _cmd_summary,
        "roadmap": _cmd_roadmap,
        "findings": _cmd_findings,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``summary``      -- library inventory and experiment list.
- ``roadmap``      -- run the full roadmap pipeline, print the results.
- ``findings``     -- generate the survey corpus, print the Key Findings.
- ``experiments``  -- the experiment registry with paper anchors.
- ``run``          -- the parallel experiment runner: fan an
  (experiment x seed) grid over a process pool with result caching,
  write a merged ``results.json``. Every cached run keeps a write-ahead
  journal next to the cache; ``--resume`` replays it so a killed sweep
  continues from its last fsync'd record and still produces the
  byte-identical canonical document. Options: ``--jobs``, ``--seeds``,
  ``--cache-dir``, ``--no-cache``, ``--out-dir``, ``--timeout-s``,
  ``--retries``, ``--quick``, ``--resume``, ``--set KEY=VALUE``.
- ``trace``        -- run one experiment instrumented; print the span /
  metrics report and write ``trace.jsonl``.
- ``serve``        -- start the experiment service: an asyncio HTTP +
  WebSocket server accepting job submissions, with admission control,
  request coalescing and the shared result cache. Accepted jobs are
  journaled next to the cache, so a restarted service re-admits work
  that was in flight when it died. Options: ``--host``, ``--port``,
  ``--jobs``, ``--cache-dir``, ``--no-cache``, ``--max-pending``,
  ``--max-active``, ``--per-client``.
- ``submit``       -- submit an experiment grid to a running service
  and write the returned ``results.json`` (byte-identical to a local
  ``run`` of the same grid). Transient connection failures retry with
  exponential backoff unless ``--no-retry``. Options: ``--server``,
  ``--seeds``, ``--set``, ``--quick``, ``--timeout-s``, ``--retries``,
  ``--out-dir``, ``--events-out``, ``--client-id``, ``--no-cache``,
  ``--no-retry``, ``--wait-s``.
- ``perf``         -- run the pinned perf microbenches (production
  kernel vs frozen pre-fast-path reference, plus the sharded engine vs
  the sequential one and the vectorized traffic scenarios vs the frozen
  scalar generator); write ``BENCH_engine.json``, ``BENCH_models.json``,
  ``BENCH_network.json``, ``BENCH_sharded.json`` and
  ``BENCH_traffic.json``, and append a summary line to
  ``benchmarks/BENCH_history.jsonl``. Positional suite ids (``engine``,
  ``models``, ``network``, ``sharded``, ``traffic``) restrict the run;
  ``--list`` prints every suite/bench with its committed-baseline path
  and pinned floors; an unknown id is an error printing that same
  listing, like ``trace``.

The commands share argument conventions: experiments and suites resolve
through a registry (so misspelled ids list the valid set), artifacts
land in ``--out-dir`` (default: the working directory) and randomness
is controlled by ``--seed`` / ``--seeds``. Every subcommand ends with a
one-line schema-versioned JSON summary on success (the last stdout
line), so scripts can consume CLI outcomes without scraping tables.
The deprecated ``trace --out`` alias (announced for removal) is gone;
use ``--out-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _emit_summary(command: str, **fields) -> None:
    """Print the one-line schema-versioned JSON summary (last line)."""
    from repro.service.schema import SCHEMA_VERSION

    payload = {"schema_version": SCHEMA_VERSION, "command": command}
    payload.update(fields)
    print(json.dumps(payload, sort_keys=True), flush=True)


def _cmd_summary() -> int:
    import repro
    from repro.reporting import EXPERIMENTS

    print(f"rethinkbig reproduction library v{repro.__version__}")
    print("paper: RETHINK big (DATE 2017) -- European roadmap for hardware")
    print("       and networking optimizations for Big Data")
    packages = (
        "engine", "econ", "network", "node", "cluster", "frameworks",
        "scheduler", "analytics", "workloads", "survey", "core",
        "ecosystem", "mc", "reporting", "runner", "service",
    )
    print(f"subpackages ({len(packages)}): {', '.join(packages)}")
    print(f"experiments: {len(EXPERIMENTS)} "
          f"({', '.join(e.experiment_id for e in EXPERIMENTS)})")
    runnable = [e.experiment_id for e in EXPERIMENTS if e.runnable]
    print(f"runnable via `python -m repro run` ({len(runnable)}): "
          f"{', '.join(runnable)}")
    _emit_summary(
        "summary",
        version=repro.__version__,
        experiments=len(EXPERIMENTS),
        runnable=len(runnable),
    )
    return 0


def _cmd_roadmap() -> int:
    from repro.core import build_roadmap
    from repro.reporting import render_table

    roadmap = build_roadmap()
    print(f"key findings hold: {roadmap.findings_hold}")
    rows = [
        [s.recommendation.rec_id, s.recommendation.title[:58], s.priority]
        for s in roadmap.scored_recommendations
    ]
    print(render_table(["R", "recommendation", "priority"], rows,
                       title="recommendations, priority-ranked"))
    print(f"funded under {roadmap.portfolio.budget_meur:.0f} MEUR: "
          f"R{roadmap.portfolio.rec_ids}")
    _emit_summary(
        "roadmap",
        findings_hold=roadmap.findings_hold,
        recommendations=len(roadmap.scored_recommendations),
        funded=list(roadmap.portfolio.rec_ids),
    )
    return 0


def _cmd_findings() -> int:
    from repro.survey import generate_corpus, headline_counts, key_findings

    corpus = generate_corpus()
    counts = headline_counts(corpus)
    print(f"{counts['n_interviews']} interviews, "
          f"{counts['n_companies']} companies")
    findings = key_findings(corpus)
    for finding in findings:
        status = "HOLDS" if finding.holds else "FAILS"
        print(f"  [{status}] Finding {finding.finding_id}: "
              f"{finding.statement}")
    _emit_summary(
        "findings",
        n_interviews=counts["n_interviews"],
        n_companies=counts["n_companies"],
        holding=sum(1 for f in findings if f.holds),
        total=len(findings),
    )
    return 0


def _cmd_experiments() -> int:
    from repro.reporting import EXPERIMENTS, render_table

    rows = [
        [e.experiment_id, e.paper_anchor, e.claim[:52],
         "yes" if e.runnable else "", "yes" if e.traceable else ""]
        for e in EXPERIMENTS
    ]
    print(render_table(
        ["id", "anchor", "claim", "runnable", "traceable"], rows
    ))
    _emit_summary(
        "experiments",
        total=len(EXPERIMENTS),
        runnable=sum(1 for e in EXPERIMENTS if e.runnable),
        traceable=sum(1 for e in EXPERIMENTS if e.traceable),
    )
    return 0


def _parse_set_overrides(pairs) -> dict:
    """``KEY=VALUE`` config overrides; values parse as JSON, else str."""
    config = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        try:
            config[key] = json.loads(raw)
        except ValueError:
            config[key] = raw
    return config


def _cmd_run(args) -> int:
    from repro.engine.observability import Registry
    from repro.errors import RegistryError
    from repro.reporting import render_table
    from repro.runner import run_grid

    if args.resume and args.no_cache:
        print("error: --resume needs the cache/journal directory; "
              "it cannot be combined with --no-cache", file=sys.stderr)
        return 2
    try:
        config = _parse_set_overrides(args.set)
        registry = Registry()
        grid = run_grid(
            experiments=args.experiments,
            seeds=args.seeds,
            overrides=[config] if config else None,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            use_cache=not args.no_cache,
            timeout_s=args.timeout_s,
            retries=args.retries,
            registry=registry,
            progress=lambda line: print(f"  {line}", flush=True),
            quick=args.quick,
            resume=args.resume,
        )
    except RegistryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    rows = [
        [r.experiment_id, r.seed, r.status, r.attempts,
         "cache" if r.cached else f"{r.wall_s:.2f}s", len(r.metrics)]
        for r in grid.results
    ]
    print(render_table(
        ["experiment", "seed", "status", "attempts", "ran in", "metrics"],
        rows, title="experiment grid results",
    ))
    stats = grid.stats
    print(f"{len(grid)} runs: {grid.n_ok} ok, {stats['errors']} errors, "
          f"{stats['timeouts']} timeouts, {stats['crashed']} crashed | "
          f"cache hits: {stats['cache_hits']}, "
          f"journal replayed: {stats['journal_replayed']}, "
          f"recomputed: {stats['recomputed']}, retries: {stats['retries']}")

    out_path = grid.write_json(Path(args.out_dir) / "results.json")
    print(f"wrote {out_path}")
    for failure in grid.failures:
        print(f"\nFAILED {failure.experiment_id} seed {failure.seed} "
              f"({failure.status}):\n{failure.error}", file=sys.stderr)
    _emit_summary(
        "run", ok=grid.all_ok, n_runs=len(grid), n_ok=grid.n_ok,
        out=str(out_path), **stats,
    )
    return 0 if grid.all_ok else 1


def _cmd_trace(args) -> int:
    from repro.errors import RegistryError
    from repro.reporting import (
        render_trace_report,
        run_trace,
        traceable_experiments,
    )

    if args.experiment is None:
        print("traceable experiments: "
              f"{', '.join(traceable_experiments())}")
        print("usage: python -m repro trace <experiment> "
              "[--out-dir DIR] [--seed N]")
        return 2
    try:
        report = run_trace(args.experiment, seed=args.seed)
    except RegistryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_trace_report(report))
    out_path = Path(args.out_dir) / "trace.jsonl"
    if out_path.parent != Path("."):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    lines = report.write_jsonl(str(out_path))
    print(f"\nwrote {lines} lines to {out_path}")
    _emit_summary(
        "trace", experiment=report.experiment_id, seed=args.seed,
        lines=lines, out=str(out_path),
    )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import ExperimentService

    service = ExperimentService(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        max_pending=args.max_pending,
        max_active=args.max_active,
        per_client=args.per_client,
    )

    async def body() -> None:
        host, port = await service.start()
        from repro.service.schema import SCHEMA_VERSION

        print(json.dumps({
            "schema_version": SCHEMA_VERSION,
            "command": "serve",
            "event": "ready",
            "host": host,
            "port": port,
            "url": f"http://{host}:{port}",
        }, sort_keys=True), flush=True)
        await service.serve_until_stopped()

    try:
        asyncio.run(body())
    except KeyboardInterrupt:
        pass
    snapshot = service.registry.snapshot()
    counters = {
        name: int(value)
        for name, value in snapshot["counters"].items()
        if name.startswith("service.")
    }
    _emit_summary(
        "serve", host=service.host, port=service.port,
        jobs_seen=len(service.job_table), **counters,
    )
    return 0


def _cmd_submit(args) -> int:
    from repro.client import ServiceClient
    from repro.errors import ServiceError
    from repro.runner.results import GridResult

    config = _parse_set_overrides(args.set)
    client = ServiceClient(
        args.server, timeout_s=30.0, client_id=args.client_id,
        **({"retry_policy": None} if args.no_retry else {}),
    )
    try:
        envelope = client.submit(
            args.experiments,
            seeds=args.seeds,
            overrides=[config] if config else None,
            quick=args.quick,
            timeout_s=args.timeout_s,
            retries=args.retries,
            use_cache=not args.no_cache,
        )
        job_id = envelope["job_id"]
        print(f"job {job_id} {envelope['state']} at {client.base_url}")
        if args.events_out is not None:
            from repro.core.atomicio import atomic_open

            events_path = Path(args.events_out)
            # Atomic: the JSONL only appears once the stream completed,
            # so a crash mid-stream never leaves a truncated log.
            with atomic_open(events_path) as handle:
                for event in client.stream_events(
                    job_id, timeout_s=args.wait_s
                ):
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
                    if event.get("type") == "heartbeat":
                        print(f"  {event.get('message', '')}", flush=True)
            print(f"wrote event stream to {events_path}")
        result = client.result(job_id, timeout_s=args.wait_s)
    except ServiceError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 2

    grid = GridResult.from_dict(result.document)
    out_path = grid.write_json(Path(args.out_dir) / "results.json")
    print(f"wrote {out_path}")
    _emit_summary(
        "submit", ok=result.ok, job_id=result.job_id,
        n_runs=len(grid), n_ok=grid.n_ok, out=str(out_path),
        **result.stats,
    )
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (subcommand per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rethinkbig reproduction library CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("summary", "library inventory and experiment list"),
        ("roadmap", "run the full roadmap pipeline"),
        ("findings", "survey corpus Key Findings"),
        ("experiments", "the experiment registry"),
    ):
        sub.add_parser(name, help=help_text)

    run_parser = sub.add_parser(
        "run", help="run experiments in parallel with result caching"
    )
    run_parser.add_argument(
        "experiments", nargs="+", metavar="ID",
        help="experiment ids (e.g. E2 E6) or 'all'",
    )
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (default: 1, inline)")
    run_parser.add_argument("--seeds", type=int, default=1,
                            help="seeds per experiment: 0..K-1 (default: 1)")
    run_parser.add_argument("--cache-dir", default=".repro-cache",
                            help="result cache directory "
                                 "(default: .repro-cache)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="recompute everything, store nothing")
    run_parser.add_argument("--out-dir", default=".",
                            help="where to write results.json (default: .)")
    run_parser.add_argument("--timeout-s", type=float, default=600.0,
                            help="per-run wall-clock timeout (default: 600)")
    run_parser.add_argument("--retries", type=int, default=1,
                            help="re-attempts per failed run (default: 1)")
    run_parser.add_argument("--quick", action="store_true",
                            help="reduced problem sizes (smoke runs)")
    run_parser.add_argument("--resume", action="store_true",
                            help="replay this grid's write-ahead journal "
                                 "and run only the unfinished shards")
    run_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                            help="config override applied to every "
                                 "experiment (repeatable)")

    trace_parser = sub.add_parser(
        "trace", help="run one experiment instrumented"
    )
    trace_parser.add_argument("experiment", nargs="?",
                              help="experiment id (e.g. E2)")
    trace_parser.add_argument("--out-dir", default=".",
                              help="where to write trace.jsonl (default: .)")
    trace_parser.add_argument("--seed", type=int, default=0,
                              help="grid seed (0 reproduces the "
                                   "historical trace)")

    serve_parser = sub.add_parser(
        "serve", help="start the experiment service (HTTP + WebSocket)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="bind port (default: 0, ephemeral; the "
                                   "ready line prints the bound port)")
    serve_parser.add_argument("--jobs", type=int, default=1,
                              help="fork-pool width per grid (default: 1)")
    serve_parser.add_argument("--cache-dir", default=".repro-cache",
                              help="result cache directory "
                                   "(default: .repro-cache)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="recompute everything, store nothing")
    serve_parser.add_argument("--max-pending", type=int, default=16,
                              help="admission queue bound (default: 16)")
    serve_parser.add_argument("--max-active", type=int, default=1,
                              help="concurrent grids (default: 1)")
    serve_parser.add_argument("--per-client", type=int, default=4,
                              help="per-client in-flight cap (default: 4)")

    submit_parser = sub.add_parser(
        "submit", help="submit an experiment grid to a running service"
    )
    submit_parser.add_argument(
        "experiments", nargs="+", metavar="ID",
        help="experiment ids (e.g. E2 E6) or 'all'",
    )
    submit_parser.add_argument("--server", default="http://127.0.0.1:8035",
                               help="service URL (default: "
                                    "http://127.0.0.1:8035)")
    submit_parser.add_argument("--seeds", type=int, default=1,
                               help="seeds per experiment: 0..K-1 "
                                    "(default: 1)")
    submit_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                               help="config override applied to every "
                                    "experiment (repeatable)")
    submit_parser.add_argument("--quick", action="store_true",
                               help="reduced problem sizes (smoke runs)")
    submit_parser.add_argument("--timeout-s", type=float, default=600.0,
                               help="per-run wall-clock timeout "
                                    "(default: 600)")
    submit_parser.add_argument("--retries", type=int, default=1,
                               help="re-attempts per failed run (default: 1)")
    submit_parser.add_argument("--out-dir", default=".",
                               help="where to write results.json "
                                    "(default: .)")
    submit_parser.add_argument("--events-out", default=None, metavar="PATH",
                               help="stream the job's events (heartbeats, "
                                    "spans) to this JSONL file")
    submit_parser.add_argument("--client-id", default="cli",
                               help="client identity for per-client "
                                    "admission caps (default: cli)")
    submit_parser.add_argument("--no-cache", action="store_true",
                               help="force recompute on the server")
    submit_parser.add_argument("--no-retry", action="store_true",
                               help="fail fast on connection errors "
                                    "instead of retrying with backoff")
    submit_parser.add_argument("--wait-s", type=float, default=600.0,
                               help="how long to wait for the job "
                                    "(default: 600)")
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        # The perf suite owns its own options; hand the rest through.
        from repro.perf import main as perf_main

        return perf_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    handlers = {
        "summary": _cmd_summary,
        "roadmap": _cmd_roadmap,
        "findings": _cmd_findings,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())

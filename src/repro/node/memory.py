"""Memory-hierarchy model, including non-volatile memory.

Recommendation 5 calls for "integrating ... new non-volatile memories and
I/O interfaces". This module models a node's memory levels (cache, DRAM,
NVM, SSD, HDD) and answers the question the frameworks layer asks:
*what is the effective bandwidth and capacity available to a working set
of a given size?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import units
from repro.errors import ModelError


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy."""

    name: str
    capacity_bytes: float
    bandwidth_bytes_per_s: float
    latency_s: float
    usd_per_gb: float
    volatile: bool = True

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.bandwidth_bytes_per_s) <= 0:
            raise ModelError(f"{self.name}: capacity and bandwidth must be positive")
        if self.latency_s < 0 or self.usd_per_gb < 0:
            raise ModelError(f"{self.name}: negative latency or price")

    @property
    def cost_usd(self) -> float:
        """Purchase cost of this level at its capacity."""
        return self.capacity_bytes / units.GB * self.usd_per_gb


def dram(capacity_gb: float = 256.0) -> MemoryLevel:
    """DDR4-era DRAM."""
    return MemoryLevel(
        "dram", capacity_gb * units.GB, 120 * units.GB, 90e-9, 8.0
    )


def nvm(capacity_gb: float = 1024.0) -> MemoryLevel:
    """3D-XPoint-class storage-class memory (2016 expectation)."""
    return MemoryLevel(
        "nvm", capacity_gb * units.GB, 20 * units.GB, 350e-9, 4.0,
        volatile=False,
    )


def ssd(capacity_gb: float = 2048.0) -> MemoryLevel:
    """NVMe flash."""
    return MemoryLevel(
        "ssd", capacity_gb * units.GB, 2.5 * units.GB, 80e-6, 0.40,
        volatile=False,
    )


def hdd(capacity_gb: float = 8192.0) -> MemoryLevel:
    """Nearline spinning disk."""
    return MemoryLevel(
        "hdd", capacity_gb * units.GB, 0.2 * units.GB, 8e-3, 0.04,
        volatile=False,
    )


@dataclass
class MemoryHierarchy:
    """An ordered (fastest-first) list of memory levels."""

    levels: List[MemoryLevel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ModelError("hierarchy needs at least one level")
        bandwidths = [lvl.bandwidth_bytes_per_s for lvl in self.levels]
        if bandwidths != sorted(bandwidths, reverse=True):
            raise ModelError("levels must be ordered fastest-first")

    @property
    def total_capacity_bytes(self) -> float:
        """Capacity across all levels."""
        return sum(lvl.capacity_bytes for lvl in self.levels)

    @property
    def total_cost_usd(self) -> float:
        """Purchase cost across all levels."""
        return sum(lvl.cost_usd for lvl in self.levels)

    def placement(self, working_set_bytes: float) -> List[tuple]:
        """Greedy fastest-first placement of a working set.

        Returns ``[(level, bytes_placed), ...]``; raises if the set does
        not fit anywhere.
        """
        if working_set_bytes <= 0:
            raise ModelError("working set must be positive")
        remaining = working_set_bytes
        out = []
        for level in self.levels:
            take = min(remaining, level.capacity_bytes)
            if take > 0:
                out.append((level, take))
                remaining -= take
            if remaining <= 0:
                return out
        raise ModelError(
            f"working set of {working_set_bytes:.3g} B exceeds hierarchy "
            f"capacity {self.total_capacity_bytes:.3g} B"
        )

    def effective_bandwidth_bytes_per_s(self, working_set_bytes: float) -> float:
        """Harmonic-mean bandwidth over the placed working set.

        A scan touching every byte once proceeds at the weighted harmonic
        mean of the level bandwidths -- the slowest level dominates once
        the set spills.
        """
        placed = self.placement(working_set_bytes)
        total = sum(amount for _, amount in placed)
        time = sum(
            amount / level.bandwidth_bytes_per_s for level, amount in placed
        )
        return total / time

    def scan_time_s(self, working_set_bytes: float) -> float:
        """Time for one full sequential pass over the working set."""
        return working_set_bytes / self.effective_bandwidth_bytes_per_s(
            working_set_bytes
        )


def default_hierarchy(with_nvm: bool = False) -> MemoryHierarchy:
    """The reference node hierarchy; NVM slots between DRAM and SSD (R5)."""
    levels = [dram()]
    if with_nvm:
        levels.append(nvm())
    levels.extend([ssd(), hdd()])
    return MemoryHierarchy(levels)

"""Port-effort and abstraction-coverage models (§IV.C).

The roadmap's software-support section argues that "there are no common
abstractions that work for everything": each hardware class demands its
own programming model, OpenCL is portable but unoptimized, and the total
cost of keeping pace with heterogeneous hardware is what keeps European
vendors on commodity CPUs.

This module computes, for a portfolio of kernels and a set of target
devices, the engineering effort of each porting strategy -- the
quantitative backbone of experiment E15 and Recommendation 6 (improve
FPGA programmability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ModelError
from repro.node.device import ComputeDevice, ProgrammingModel


@dataclass(frozen=True)
class PortingStrategy:
    """How a software vendor targets heterogeneous devices.

    ``native_everywhere``: hand-port every kernel to every device's
    native model (maximum performance, maximum effort).
    ``portable_kernel``: write OpenCL-style portable kernels once per
    kernel, run wherever supported (low effort, pays the efficiency tax).
    ``cpu_only``: the Finding-1/2 default -- never port anything.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in ("native_everywhere", "portable_kernel", "cpu_only"):
            raise ModelError(f"unknown strategy: {self.name!r}")


def port_effort_person_months(
    strategy: PortingStrategy,
    n_kernels: int,
    devices: Sequence[ComputeDevice],
    portable_base_effort_pm: float = 1.0,
) -> float:
    """Total effort for ``n_kernels`` under ``strategy`` across ``devices``.

    ``portable_kernel`` costs one base effort per kernel (writing the
    portable version) regardless of device count; ``native_everywhere``
    pays each device's per-kernel port effort; ``cpu_only`` costs nothing
    beyond existing code.
    """
    if n_kernels < 0:
        raise ModelError("kernel count cannot be negative")
    if strategy.name == "cpu_only":
        return 0.0
    if strategy.name == "portable_kernel":
        return n_kernels * portable_base_effort_pm
    total = 0.0
    for device in devices:
        total += n_kernels * device.programmability.port_effort_person_months
    return total


def achievable_throughput_fraction(
    strategy: PortingStrategy, device: ComputeDevice
) -> float:
    """Fraction of the device's tuned throughput the strategy achieves.

    ``native_everywhere`` reaches 1.0 of the device's effective peak;
    ``portable_kernel`` reaches the portable efficiency where a portable
    model is supported, else 0 (the device is unusable from portable
    code -- the paper's ASIC/neuromorphic case); ``cpu_only`` uses no
    accelerator at all.
    """
    if strategy.name == "cpu_only":
        return 0.0
    if strategy.name == "native_everywhere":
        return 1.0
    prog = device.programmability
    portable_options = {
        ProgrammingModel.OPENCL,
        ProgrammingModel.HLS,
    }
    if portable_options & set(prog.portable_models):
        return prog.portable_efficiency
    if prog.native_model in portable_options:
        return 1.0
    return 0.0


@dataclass
class AbstractionMatrix:
    """Which programming models reach which devices, and how well.

    The computable version of the paper's "too many abstractions"
    discussion: rows are programming models, columns devices, entries the
    achievable fraction of tuned device throughput (0 = cannot target).
    """

    devices: List[ComputeDevice]

    def __post_init__(self) -> None:
        if not self.devices:
            raise ModelError("matrix needs at least one device")

    def coverage(self, model: ProgrammingModel) -> Dict[str, float]:
        """Per-device achievable fraction for one programming model."""
        out: Dict[str, float] = {}
        for device in self.devices:
            prog = device.programmability
            if model == prog.native_model:
                out[device.name] = 1.0
            elif model in prog.portable_models:
                out[device.name] = prog.portable_efficiency
            else:
                out[device.name] = 0.0
        return out

    def device_count_reached(self, model: ProgrammingModel) -> int:
        """How many devices the model can target at all."""
        return sum(1 for v in self.coverage(model).values() if v > 0)

    def best_universal_model(self) -> tuple:
        """The model reaching the most devices (ties: higher mean fraction).

        The paper's answer is OpenCL -- broad but inefficient; the test
        suite asserts this emerges from the catalog.
        """
        best: tuple = (None, -1, -1.0)
        for model in ProgrammingModel:
            cov = self.coverage(model)
            reached = sum(1 for v in cov.values() if v > 0)
            mean_frac = sum(cov.values()) / len(cov)
            if (reached, mean_frac) > (best[1], best[2]):
                best = (model, reached, mean_frac)
        return best

    def fragmentation_index(self) -> float:
        """Minimum number of models needed to reach every device, divided
        by the device count. 1.0 = every device needs its own model
        (total fragmentation); 1/n = one model reaches all.

        Computed greedily (set cover); exact for the small catalogs used
        here.
        """
        uncovered = {d.name for d in self.devices}
        models_used = 0
        while uncovered:
            best_model, best_gain = None, 0
            for model in ProgrammingModel:
                cov = self.coverage(model)
                gain = sum(1 for name in uncovered if cov.get(name, 0) > 0)
                if gain > best_gain:
                    best_model, best_gain = model, gain
            if best_model is None:
                raise ModelError(
                    f"devices unreachable by any model: {sorted(uncovered)}"
                )
            cov = self.coverage(best_model)
            uncovered -= {name for name in uncovered if cov.get(name, 0) > 0}
            models_used += 1
        return models_used / len(self.devices)


def hls_uplift_scenario(
    fpga: ComputeDevice, improved_efficiency: float = 0.8,
    improved_effort_pm: float = 3.0,
) -> ComputeDevice:
    """Recommendation 6's what-if: better FPGA tools.

    Returns a copy of ``fpga`` whose portable (HLS) efficiency rises to
    ``improved_efficiency`` and whose port effort drops to
    ``improved_effort_pm`` person-months.
    """
    from dataclasses import replace

    if not 0.0 < improved_efficiency <= 1.0:
        raise ModelError("improved efficiency must be in (0, 1]")
    better = replace(
        fpga.programmability,
        port_effort_person_months=improved_effort_pm,
        portable_efficiency=improved_efficiency,
    )
    return replace(fpga, programmability=better)

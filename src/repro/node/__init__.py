"""Heterogeneous compute-node models (§IV.B of the roadmap).

Devices carry a roofline performance envelope, power, price and a
programmability profile; servers assemble devices, memory and NICs into
purchasable nodes; the catalog provides 2016-era reference parts.
"""

from repro.node.catalog import (
    arm_microserver,
    arria10_fpga,
    default_registry,
    inference_asic,
    keystone_dsp,
    nvidia_k80,
    nvidia_p100,
    truenorth_neuro,
    xeon_e5,
)
from repro.node.device import (
    ComputeDevice,
    DeviceKind,
    DeviceRegistry,
    Programmability,
    ProgrammingModel,
)
from repro.node.memory import (
    MemoryHierarchy,
    MemoryLevel,
    default_hierarchy,
    dram,
    hdd,
    nvm,
    ssd,
)
from repro.node.programmability import (
    AbstractionMatrix,
    PortingStrategy,
    achievable_throughput_fraction,
    hls_uplift_scenario,
    port_effort_person_months,
)
from repro.node.roofline import (
    Kernel,
    attainable_ops_per_s,
    energy_j,
    execution_time_s,
    is_compute_bound,
    min_profitable_ops,
    speedup,
)
from repro.node.server import (
    NIC_CATALOG,
    Nic,
    Server,
    accelerated_server,
    commodity_server,
)

__all__ = [
    "AbstractionMatrix",
    "ComputeDevice",
    "DeviceKind",
    "DeviceRegistry",
    "Kernel",
    "MemoryHierarchy",
    "MemoryLevel",
    "NIC_CATALOG",
    "Nic",
    "PortingStrategy",
    "Programmability",
    "ProgrammingModel",
    "Server",
    "accelerated_server",
    "achievable_throughput_fraction",
    "arm_microserver",
    "arria10_fpga",
    "attainable_ops_per_s",
    "commodity_server",
    "default_hierarchy",
    "default_registry",
    "dram",
    "energy_j",
    "execution_time_s",
    "hdd",
    "hls_uplift_scenario",
    "inference_asic",
    "is_compute_bound",
    "keystone_dsp",
    "min_profitable_ops",
    "nvidia_k80",
    "nvidia_p100",
    "nvm",
    "port_effort_person_months",
    "speedup",
    "ssd",
    "truenorth_neuro",
    "xeon_e5",
]

"""Server assembly: devices + memory + NIC into one purchasable node.

A :class:`Server` is the unit that clusters (and the TCO models) reason
about: it has a bill of materials, a power envelope, and a set of compute
devices the scheduler can place work on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ModelError
from repro.node.device import ComputeDevice, DeviceKind
from repro.node.memory import MemoryHierarchy, default_hierarchy


@dataclass(frozen=True)
class Nic:
    """A network interface at one Ethernet generation."""

    rate_gbps: float
    price_usd: float
    power_w: float

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ModelError("NIC rate must be positive")


#: 2016-era NIC price points per generation.
NIC_CATALOG = {
    1.0: Nic(1.0, 30.0, 3.0),
    10.0: Nic(10.0, 250.0, 8.0),
    25.0: Nic(25.0, 450.0, 10.0),
    40.0: Nic(40.0, 700.0, 14.0),
    100.0: Nic(100.0, 1_800.0, 20.0),
}


@dataclass
class Server:
    """A complete compute node.

    ``devices[0]`` is conventionally the host CPU; accelerators follow.
    """

    name: str
    devices: List[ComputeDevice]
    nic: Nic
    memory: MemoryHierarchy = field(default_factory=default_hierarchy)
    chassis_usd: float = 1_200.0
    chassis_power_w: float = 60.0  # fans, PSU losses, board

    def __post_init__(self) -> None:
        if not self.devices:
            raise ModelError(f"server {self.name}: needs at least one device")
        if self.devices[0].kind != DeviceKind.CPU:
            raise ModelError(f"server {self.name}: first device must be a CPU")

    @property
    def cpu(self) -> ComputeDevice:
        """The host CPU."""
        return self.devices[0]

    @property
    def accelerators(self) -> List[ComputeDevice]:
        """All non-CPU devices."""
        return self.devices[1:]

    @property
    def price_usd(self) -> float:
        """Bill of materials."""
        return (
            sum(d.price_usd for d in self.devices)
            + self.nic.price_usd
            + self.memory.total_cost_usd
            + self.chassis_usd
        )

    @property
    def peak_power_w(self) -> float:
        """All devices at TDP plus chassis and NIC."""
        return (
            sum(d.tdp_w for d in self.devices)
            + self.nic.power_w
            + self.chassis_power_w
        )

    @property
    def idle_power_w(self) -> float:
        """All devices idle plus chassis and NIC."""
        return (
            sum(d.idle_w for d in self.devices)
            + self.nic.power_w
            + self.chassis_power_w
        )

    def power_at(self, device_utilizations: Optional[dict] = None) -> float:
        """Power draw given per-device utilizations (name -> [0,1]).

        Devices interpolate linearly between idle and TDP; absent devices
        are assumed idle.
        """
        utils = device_utilizations or {}
        power = self.nic.power_w + self.chassis_power_w
        for device in self.devices:
            u = utils.get(device.name, 0.0)
            if not 0.0 <= u <= 1.0:
                raise ModelError(
                    f"utilization for {device.name} must be in [0, 1], got {u}"
                )
            power += device.idle_w + u * (device.tdp_w - device.idle_w)
        return power

    def find_device(self, name: str) -> ComputeDevice:
        """Look up one of this server's devices by name."""
        for device in self.devices:
            if device.name == name:
                return device
        raise ModelError(f"server {self.name} has no device {name!r}")


def commodity_server(cpu: ComputeDevice, nic_gbps: float = 10.0) -> Server:
    """The Finding-2 baseline: CPU-only box with a commodity NIC."""
    return Server(
        name=f"commodity-{cpu.name}",
        devices=[cpu],
        nic=NIC_CATALOG[nic_gbps],
    )


def accelerated_server(
    cpu: ComputeDevice,
    accelerator: ComputeDevice,
    nic_gbps: float = 10.0,
    count: int = 1,
) -> Server:
    """A CPU host with ``count`` identical accelerators attached."""
    if count < 1:
        raise ModelError(f"accelerator count must be >= 1, got {count}")
    return Server(
        name=f"{cpu.name}+{count}x{accelerator.name}",
        devices=[cpu] + [accelerator] * count,
        nic=NIC_CATALOG[nic_gbps],
    )

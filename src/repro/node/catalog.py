"""A 2016-era device catalog.

Parameters approximate public spec sheets from the roadmap's period:
Intel Xeon E5 v4 (Broadwell), Nvidia K80/P100, Intel/Altera Arria 10
(the Catapult-class part), a TPU-like inference ASIC, a Keystone-class
DSP and a TrueNorth-class neuromorphic part. Absolute numbers matter
less than the *ratios*, which drive every experiment.
"""

from __future__ import annotations

from repro import units
from repro.node.device import (
    ComputeDevice,
    DeviceKind,
    DeviceRegistry,
    Programmability,
    ProgrammingModel,
)


def xeon_e5() -> ComputeDevice:
    """Dual-socket Xeon E5-2680 v4 class server CPU (the commodity baseline)."""
    return ComputeDevice(
        name="xeon-e5",
        kind=DeviceKind.CPU,
        peak_ops_per_s=1.0 * units.TFLOPS,
        mem_bw_bytes_per_s=120 * units.GB,
        tdp_w=240.0,
        idle_w=80.0,
        price_usd=3_400.0,
        efficiency=0.85,
        launch_overhead_s=0.0,
        programmability=Programmability(
            native_model=ProgrammingModel.OPENMP,
            port_effort_person_months=0.5,
            portable_models=(
                ProgrammingModel.SEQUENTIAL,
                ProgrammingModel.SIMD,
                ProgrammingModel.OPENCL,
            ),
            portable_efficiency=0.7,
        ),
    )


def arm_microserver() -> ComputeDevice:
    """ARM Cortex-A57-class micro-server / edge CPU (the EUROSERVER part)."""
    return ComputeDevice(
        name="arm-microserver",
        kind=DeviceKind.CPU,
        peak_ops_per_s=0.1 * units.TFLOPS,
        mem_bw_bytes_per_s=25 * units.GB,
        tdp_w=15.0,
        idle_w=4.0,
        price_usd=350.0,
        efficiency=0.8,
        launch_overhead_s=0.0,
        programmability=Programmability(
            native_model=ProgrammingModel.OPENMP,
            port_effort_person_months=0.5,
            portable_models=(
                ProgrammingModel.SEQUENTIAL,
                ProgrammingModel.SIMD,
                ProgrammingModel.OPENCL,
            ),
            portable_efficiency=0.7,
        ),
    )


def nvidia_k80() -> ComputeDevice:
    """Nvidia K80 class GPGPU (the 2016 data-center workhorse)."""
    return ComputeDevice(
        name="nvidia-k80",
        kind=DeviceKind.GPU,
        peak_ops_per_s=5.6 * units.TFLOPS,
        mem_bw_bytes_per_s=480 * units.GB,
        tdp_w=300.0,
        idle_w=60.0,
        price_usd=5_000.0,
        efficiency=0.6,
        launch_overhead_s=30 * units.US,
        programmability=Programmability(
            native_model=ProgrammingModel.CUDA,
            port_effort_person_months=4.0,
            portable_models=(ProgrammingModel.OPENCL,),
            portable_efficiency=0.55,
            vendor_locked=True,
        ),
    )


def nvidia_p100() -> ComputeDevice:
    """Nvidia P100 (Pascal), announced 2016 -- the deep-learning push."""
    return ComputeDevice(
        name="nvidia-p100",
        kind=DeviceKind.GPU,
        peak_ops_per_s=10.6 * units.TFLOPS,
        mem_bw_bytes_per_s=720 * units.GB,
        tdp_w=300.0,
        idle_w=50.0,
        price_usd=9_000.0,
        efficiency=0.65,
        launch_overhead_s=25 * units.US,
        programmability=Programmability(
            native_model=ProgrammingModel.CUDA,
            port_effort_person_months=4.0,
            portable_models=(ProgrammingModel.OPENCL,),
            portable_efficiency=0.55,
            vendor_locked=True,
        ),
    )


def arria10_fpga() -> ComputeDevice:
    """Intel/Altera Arria 10 class FPGA (the Catapult-generation part)."""
    return ComputeDevice(
        name="arria10-fpga",
        kind=DeviceKind.FPGA,
        peak_ops_per_s=1.4 * units.TFLOPS,
        mem_bw_bytes_per_s=34 * units.GB,
        tdp_w=45.0,
        idle_w=15.0,
        price_usd=4_500.0,
        efficiency=0.75,  # pipelined dataflow sustains most of its peak
        launch_overhead_s=10 * units.US,  # streaming via NIC path, no PCIe hop
        programmability=Programmability(
            native_model=ProgrammingModel.HDL,
            port_effort_person_months=12.0,  # the §IV.C barrier
            portable_models=(ProgrammingModel.HLS, ProgrammingModel.OPENCL),
            portable_efficiency=0.5,
        ),
    )


def inference_asic() -> ComputeDevice:
    """TPU-class fixed-function inference ASIC (AlphaGo-era)."""
    return ComputeDevice(
        name="inference-asic",
        kind=DeviceKind.ASIC,
        peak_ops_per_s=45 * units.TFLOPS,  # 8-bit ops
        mem_bw_bytes_per_s=34 * units.GB,
        tdp_w=75.0,
        idle_w=25.0,
        price_usd=15_000.0,  # low-volume custom silicon
        efficiency=0.8,
        launch_overhead_s=20 * units.US,
        programmability=Programmability(
            native_model=ProgrammingModel.ASIC_API,
            port_effort_person_months=6.0,
            portable_models=(),
            vendor_locked=True,
        ),
    )


def keystone_dsp() -> ComputeDevice:
    """TI Keystone class DSP."""
    return ComputeDevice(
        name="keystone-dsp",
        kind=DeviceKind.DSP,
        peak_ops_per_s=0.5 * units.TFLOPS,
        mem_bw_bytes_per_s=13 * units.GB,
        tdp_w=22.0,
        idle_w=6.0,
        price_usd=400.0,
        efficiency=0.7,
        launch_overhead_s=15 * units.US,
        programmability=Programmability(
            native_model=ProgrammingModel.ASIC_API,
            port_effort_person_months=5.0,
            portable_models=(ProgrammingModel.OPENCL,),
            portable_efficiency=0.45,
        ),
    )


def truenorth_neuro() -> ComputeDevice:
    """IBM TrueNorth class neuromorphic chip (R7's disruptive candidate).

    Synaptic ops count as "ops"; the striking figure is ops/joule, not
    raw throughput.
    """
    return ComputeDevice(
        name="truenorth-neuro",
        kind=DeviceKind.NEUROMORPHIC,
        peak_ops_per_s=2.0 * units.TFLOPS,  # synaptic events/s equivalent
        mem_bw_bytes_per_s=4 * units.GB,
        tdp_w=0.3,  # famously ~70 mW core power; 0.3 W with I/O
        idle_w=0.1,
        price_usd=10_000.0,  # research-grade pricing, no market (R7)
        efficiency=0.5,
        launch_overhead_s=50 * units.US,
        programmability=Programmability(
            native_model=ProgrammingModel.SPIKE,
            port_effort_person_months=18.0,  # no ecosystem
            portable_models=(),
            vendor_locked=True,
        ),
    )


def default_registry() -> DeviceRegistry:
    """All catalog devices in one registry."""
    registry = DeviceRegistry()
    for factory in (
        xeon_e5,
        arm_microserver,
        nvidia_k80,
        nvidia_p100,
        arria10_fpga,
        inference_asic,
        keystone_dsp,
        truenorth_neuro,
    ):
        registry.add(factory())
    return registry

"""Roofline execution model.

A :class:`Kernel` is a unit of computation characterized by its total
operation count, the bytes it moves, and an Amdahl serial fraction. The
roofline model gives the attainable throughput on a device as
``min(compute roof, bandwidth * intensity)``; execution time adds the
serial fraction and any offload launch overhead.

This model is deliberately simple -- the roadmap's argument only needs the
first-order effects: compute-bound kernels love accelerators with high
peak rates, memory-bound kernels don't, and tiny kernels drown in launch
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelError
from repro.node.device import ComputeDevice, ProgrammingModel


@dataclass(frozen=True)
class Kernel:
    """A computation's resource footprint.

    ``ops``: total arithmetic operations.
    ``bytes_moved``: total DRAM traffic.
    ``serial_fraction``: Amdahl fraction that cannot parallelize and runs
    at ``serial_ops_per_s`` regardless of the device's peak.
    """

    name: str
    ops: float
    bytes_moved: float
    serial_fraction: float = 0.0
    serial_ops_per_s: float = 2e9  # one fast scalar core

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise ModelError(f"kernel {self.name}: ops must be positive")
        if self.bytes_moved < 0:
            raise ModelError(f"kernel {self.name}: negative bytes")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ModelError(
                f"kernel {self.name}: serial fraction must be in [0, 1]"
            )

    @property
    def intensity(self) -> float:
        """Operational intensity in ops/byte (inf for zero traffic)."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.ops / self.bytes_moved

    def scaled(self, factor: float) -> "Kernel":
        """The same kernel over ``factor`` times more data."""
        if factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        return Kernel(
            name=self.name,
            ops=self.ops * factor,
            bytes_moved=self.bytes_moved * factor,
            serial_fraction=self.serial_fraction,
            serial_ops_per_s=self.serial_ops_per_s,
        )


def attainable_ops_per_s(
    kernel: Kernel,
    device: ComputeDevice,
    model: Optional[ProgrammingModel] = None,
) -> float:
    """Roofline-attainable throughput of ``kernel`` on ``device``."""
    compute_roof = device.effective_peak(model)
    if kernel.intensity == float("inf"):
        return compute_roof
    bandwidth_roof = device.mem_bw_bytes_per_s * kernel.intensity
    return min(compute_roof, bandwidth_roof)


def execution_time_s(
    kernel: Kernel,
    device: ComputeDevice,
    model: Optional[ProgrammingModel] = None,
    include_launch_overhead: bool = True,
) -> float:
    """Wall-clock time of ``kernel`` on ``device``.

    The parallel portion runs at the roofline rate; the serial portion at
    the kernel's scalar rate; offload overhead is added once.
    """
    parallel_ops = kernel.ops * (1.0 - kernel.serial_fraction)
    serial_ops = kernel.ops * kernel.serial_fraction
    time = parallel_ops / attainable_ops_per_s(kernel, device, model)
    time += serial_ops / kernel.serial_ops_per_s
    if include_launch_overhead:
        time += device.launch_overhead_s
    return time


def energy_j(
    kernel: Kernel,
    device: ComputeDevice,
    model: Optional[ProgrammingModel] = None,
) -> float:
    """Energy to run ``kernel`` on ``device`` (device draws TDP while busy)."""
    return execution_time_s(kernel, device, model) * device.tdp_w


def speedup(
    kernel: Kernel,
    accelerator: ComputeDevice,
    baseline: ComputeDevice,
    model: Optional[ProgrammingModel] = None,
) -> float:
    """Wall-clock speedup of ``accelerator`` over ``baseline``."""
    return execution_time_s(kernel, baseline) / execution_time_s(
        kernel, accelerator, model
    )


def is_compute_bound(kernel: Kernel, device: ComputeDevice) -> bool:
    """Whether the kernel sits right of the device's roofline ridge."""
    return kernel.intensity >= device.ridge_intensity


def min_profitable_ops(
    kernel_shape: Kernel,
    accelerator: ComputeDevice,
    baseline: ComputeDevice,
) -> float:
    """Smallest kernel size (in ops) where offloading wins.

    Scales ``kernel_shape`` keeping its intensity fixed and solves for the
    size at which accelerator time (with launch overhead) matches baseline
    time. Returns ``inf`` if the accelerator's steady-state rate does not
    beat the baseline at this intensity.
    """
    base_rate = _net_rate(kernel_shape, baseline)
    accel_rate = _net_rate(kernel_shape, accelerator)
    if accel_rate <= base_rate:
        return float("inf")
    overhead = accelerator.launch_overhead_s - baseline.launch_overhead_s
    if overhead <= 0:
        return 0.0
    # ops/base_rate = ops/accel_rate + overhead  =>  solve for ops.
    return overhead / (1.0 / base_rate - 1.0 / accel_rate)


def _net_rate(kernel: Kernel, device: ComputeDevice) -> float:
    """Effective ops/s including the serial fraction, excluding overhead."""
    time_per_op = (
        (1.0 - kernel.serial_fraction) / attainable_ops_per_s(kernel, device)
        + kernel.serial_fraction / kernel.serial_ops_per_s
    )
    return 1.0 / time_per_op

"""Compute-device models for heterogeneous nodes.

The roadmap's §IV.B discusses CPUs, GPUs, FPGAs, ASICs, DSPs and
neuromorphic hardware as candidate Big Data accelerators. Each is modelled
as a :class:`ComputeDevice` with a roofline performance envelope
(peak compute rate + memory bandwidth), a power envelope, a price, and a
programmability profile (the adoption barrier of §IV.C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ModelError


class DeviceKind(enum.Enum):
    """Classes of compute hardware the paper considers."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    ASIC = "asic"
    DSP = "dsp"
    NEUROMORPHIC = "neuromorphic"


class ProgrammingModel(enum.Enum):
    """Programming abstractions from §IV.C.3 ("too many abstractions")."""

    SEQUENTIAL = "sequential"  # plain single-threaded code
    OPENMP = "openmp"  # node-level multicore
    SIMD = "simd"  # CPU vector intrinsics
    CUDA = "cuda"  # vendor-locked GPU kernels
    OPENCL = "opencl"  # portable kernels (correctness, not performance)
    HDL = "hdl"  # VHDL/Verilog for FPGAs
    HLS = "hls"  # high-level synthesis (R6 target)
    ASIC_API = "asic_api"  # fixed-function device APIs
    SPIKE = "spike"  # neuromorphic spike-based programming


@dataclass(frozen=True)
class Programmability:
    """How hard a device is to program, per §IV.B.1/§IV.C.

    ``port_effort_person_months`` is the effort to port one non-trivial
    analytics kernel to the device's *native* model;
    ``native_model`` is that model; ``portable_models`` lists abstractions
    that run on the device at ``portable_efficiency`` of native speed
    (OpenCL "only ensures correctness ... not optimized");
    ``vendor_locked`` marks single-vendor ecosystems (CUDA).
    """

    native_model: ProgrammingModel
    port_effort_person_months: float
    portable_models: tuple = ()
    portable_efficiency: float = 0.6
    vendor_locked: bool = False

    def __post_init__(self) -> None:
        if self.port_effort_person_months < 0:
            raise ModelError("port effort cannot be negative")
        if not 0.0 < self.portable_efficiency <= 1.0:
            raise ModelError("portable efficiency must be in (0, 1]")


@dataclass(frozen=True)
class ComputeDevice:
    """A roofline-modelled compute device.

    Performance parameters:

    - ``peak_ops_per_s``: peak arithmetic throughput (FLOP/s for CPU/GPU,
      equivalent fixed-point op/s for FPGA/ASIC/neuromorphic).
    - ``mem_bw_bytes_per_s``: sustained memory bandwidth.
    - ``efficiency``: fraction of peak achievable by well-tuned real code
      (CPUs sustain more of peak than early FPGA toolchains do).
    - ``launch_overhead_s``: fixed cost per offloaded kernel (PCIe,
      driver, reconfiguration); the reason small kernels don't offload.
    """

    name: str
    kind: DeviceKind
    peak_ops_per_s: float
    mem_bw_bytes_per_s: float
    tdp_w: float
    idle_w: float
    price_usd: float
    programmability: Programmability
    efficiency: float = 0.8
    launch_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.mem_bw_bytes_per_s <= 0:
            raise ModelError(f"{self.name}: peak rates must be positive")
        if self.idle_w > self.tdp_w:
            raise ModelError(f"{self.name}: idle power exceeds TDP")
        if not 0.0 < self.efficiency <= 1.0:
            raise ModelError(f"{self.name}: efficiency must be in (0, 1]")
        if self.launch_overhead_s < 0:
            raise ModelError(f"{self.name}: negative launch overhead")

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity (op/byte) at the roofline ridge point."""
        return self.peak_ops_per_s / self.mem_bw_bytes_per_s

    @property
    def ops_per_joule(self) -> float:
        """Peak energy efficiency at TDP."""
        return self.peak_ops_per_s / self.tdp_w

    def supports(self, model: ProgrammingModel) -> bool:
        """Whether code written against ``model`` can run on this device."""
        prog = self.programmability
        return model == prog.native_model or model in prog.portable_models

    def effective_peak(self, model: Optional[ProgrammingModel] = None) -> float:
        """Achievable op rate under a given programming model.

        Native code gets ``efficiency * peak``; portable abstractions pay
        the additional ``portable_efficiency`` tax.
        """
        rate = self.peak_ops_per_s * self.efficiency
        if model is None or model == self.programmability.native_model:
            return rate
        if model in self.programmability.portable_models:
            return rate * self.programmability.portable_efficiency
        raise ModelError(
            f"device {self.name} does not support {model.value}"
        )


@dataclass
class DeviceRegistry:
    """A name-indexed collection of devices."""

    devices: Dict[str, ComputeDevice] = field(default_factory=dict)

    def add(self, device: ComputeDevice) -> None:
        """Register a device; duplicate names are an error."""
        if device.name in self.devices:
            raise ModelError(f"duplicate device name: {device.name}")
        self.devices[device.name] = device

    def get(self, name: str) -> ComputeDevice:
        """Look up a device by name."""
        if name not in self.devices:
            raise ModelError(f"unknown device: {name!r}")
        return self.devices[name]

    def of_kind(self, kind: DeviceKind) -> list:
        """All registered devices of one kind, name-sorted."""
        return sorted(
            (d for d in self.devices.values() if d.kind == kind),
            key=lambda d: d.name,
        )

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(sorted(self.devices.values(), key=lambda d: d.name))

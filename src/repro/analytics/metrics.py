"""Model-evaluation metrics and data-splitting utilities.

Recommendation 9's benchmark suite needs more than wall-clock numbers:
comparing analytics quality across architectures requires the standard
classification metrics. Pure-python/numpy implementations, cross-checked
by tests against hand-computed confusion tables.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ModelError


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (train_x, train_y, test_x, test_y)."""
    features = np.asarray(features)
    labels = np.asarray(labels)
    if len(features) != len(labels):
        raise ModelError("features and labels length mismatch")
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test fraction must be in (0, 1)")
    n = len(features)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ModelError("not enough rows to split")
    order = np.random.default_rng(seed).permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        features[train_idx],
        labels[train_idx],
        features[test_idx],
        labels[test_idx],
    )


def confusion_matrix(
    truth: Sequence, predicted: Sequence
) -> Dict[Tuple, int]:
    """(true label, predicted label) -> count."""
    truth = list(truth)
    predicted = list(predicted)
    if len(truth) != len(predicted):
        raise ModelError("truth and prediction length mismatch")
    if not truth:
        raise ModelError("empty inputs")
    table: Dict[Tuple, int] = {}
    for t, p in zip(truth, predicted):
        table[(t, p)] = table.get((t, p), 0) + 1
    return table


def accuracy(truth: Sequence, predicted: Sequence) -> float:
    """Fraction of exact matches."""
    table = confusion_matrix(truth, predicted)
    correct = sum(count for (t, p), count in table.items() if t == p)
    return correct / sum(table.values())


def precision_recall(
    truth: Sequence, predicted: Sequence, positive
) -> Tuple[float, float]:
    """(precision, recall) for the ``positive`` class.

    Degenerate denominators (no predicted / no actual positives) yield
    0.0 rather than raising, matching common library behaviour.
    """
    table = confusion_matrix(truth, predicted)
    tp = table.get((positive, positive), 0)
    fp = sum(
        count for (t, p), count in table.items()
        if p == positive and t != positive
    )
    fn = sum(
        count for (t, p), count in table.items()
        if t == positive and p != positive
    )
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall


def f1_score(truth: Sequence, predicted: Sequence, positive) -> float:
    """Harmonic mean of precision and recall for one class."""
    precision, recall = precision_recall(truth, predicted, positive)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)

"""Gaussian and multinomial naive Bayes classifiers.

Rounding out the ML building blocks: the text-classification workhorse
(multinomial NB over token counts, the NLP side of §IV.C.1) and the
continuous-feature variant (Gaussian NB).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence

import numpy as np

from repro.analytics.nlp import tokenize
from repro.errors import ModelError


@dataclass
class GaussianNaiveBayes:
    """Per-class Gaussian likelihoods over continuous features."""

    class_priors: Dict[Hashable, float] = field(default_factory=dict)
    means: Dict[Hashable, np.ndarray] = field(default_factory=dict)
    variances: Dict[Hashable, np.ndarray] = field(default_factory=dict)
    _epsilon: float = 1e-9

    def fit(self, features: np.ndarray, labels: Sequence) -> "GaussianNaiveBayes":
        """Estimate priors, per-class means and variances."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ModelError("features must be 2-D")
        if len(features) != len(labels):
            raise ModelError("features and labels length mismatch")
        classes = np.unique(labels)
        if len(classes) < 2:
            raise ModelError("need at least two classes")
        n = len(labels)
        global_var = features.var(axis=0).mean() or 1.0
        for cls in classes:
            members = features[labels == cls]
            self.class_priors[cls] = len(members) / n
            self.means[cls] = members.mean(axis=0)
            self.variances[cls] = (
                members.var(axis=0) + self._epsilon * global_var
            )
        return self

    def predict(self, features: np.ndarray) -> List[Hashable]:
        """Maximum-posterior class per row."""
        if not self.class_priors:
            raise ModelError("classifier not fitted")
        features = np.asarray(features, dtype=float)
        out = []
        for row in features:
            best_cls, best_score = None, -math.inf
            for cls, prior in sorted(self.class_priors.items(),
                                     key=lambda kv: repr(kv[0])):
                mean, var = self.means[cls], self.variances[cls]
                log_likelihood = float(
                    -0.5 * np.sum(
                        np.log(2 * np.pi * var) + (row - mean) ** 2 / var
                    )
                )
                score = math.log(prior) + log_likelihood
                if score > best_score:
                    best_cls, best_score = cls, score
            out.append(best_cls)
        return out


@dataclass
class MultinomialNaiveBayes:
    """Token-count naive Bayes with Laplace smoothing (text classifier)."""

    alpha: float = 1.0
    class_priors: Dict[Hashable, float] = field(default_factory=dict)
    token_log_probs: Dict[Hashable, Dict[str, float]] = field(
        default_factory=dict
    )
    _default_log_prob: Dict[Hashable, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ModelError("alpha must be positive")

    def fit(
        self, documents: Sequence[str], labels: Sequence
    ) -> "MultinomialNaiveBayes":
        """Estimate priors and smoothed token probabilities."""
        if len(documents) != len(labels):
            raise ModelError("documents and labels length mismatch")
        if not documents:
            raise ModelError("empty training set")
        classes = sorted(set(labels), key=repr)
        if len(classes) < 2:
            raise ModelError("need at least two classes")
        vocabulary = set()
        counts: Dict[Hashable, Counter] = defaultdict(Counter)
        class_sizes: Counter = Counter()
        for doc, label in zip(documents, labels):
            tokens = tokenize(doc)
            counts[label].update(tokens)
            vocabulary.update(tokens)
            class_sizes[label] += 1
        if not vocabulary:
            raise ModelError("no tokens in training documents")
        v = len(vocabulary)
        n = len(documents)
        for cls in classes:
            self.class_priors[cls] = class_sizes[cls] / n
            total = sum(counts[cls].values())
            denominator = total + self.alpha * v
            self.token_log_probs[cls] = {
                token: math.log(
                    (counts[cls][token] + self.alpha) / denominator
                )
                for token in vocabulary
            }
            self._default_log_prob[cls] = math.log(self.alpha / denominator)
        return self

    def predict(self, documents: Sequence[str]) -> List[Hashable]:
        """Maximum-posterior class per document (unknown tokens smoothed)."""
        if not self.class_priors:
            raise ModelError("classifier not fitted")
        out = []
        for doc in documents:
            tokens = tokenize(doc)
            best_cls, best_score = None, -math.inf
            for cls, prior in sorted(self.class_priors.items(),
                                     key=lambda kv: repr(kv[0])):
                table = self.token_log_probs[cls]
                default = self._default_log_prob[cls]
                score = math.log(prior) + sum(
                    table.get(token, default) for token in tokens
                )
                if score > best_score:
                    best_cls, best_score = cls, score
            out.append(best_cls)
        return out

"""Relational operators over lists of dict rows.

The "SQL abstraction" layer of §IV.C.1, implemented as plain functions so
the dataflow engine can execute real queries: select, project, hash join,
group-by aggregation, sort.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ModelError

Row = Dict[str, Any]


def select(rows: Iterable[Row], predicate: Callable[[Row], bool]) -> List[Row]:
    """Filter rows by a predicate."""
    return [row for row in rows if predicate(row)]


def project(rows: Iterable[Row], columns: Sequence[str]) -> List[Row]:
    """Keep only ``columns``; missing columns are an error."""
    out = []
    for row in rows:
        try:
            out.append({col: row[col] for col in columns})
        except KeyError as exc:
            raise ModelError(f"missing column: {exc}") from exc
    return out


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    key: str,
    right_key: Optional[str] = None,
    suffix: str = "_r",
) -> List[Row]:
    """Inner equi-join on ``key`` (optionally a different right key).

    Right-side columns colliding with left-side names get ``suffix``.
    """
    right_key = right_key or key
    index: Dict[Any, List[Row]] = defaultdict(list)
    for row in right:
        if right_key not in row:
            raise ModelError(f"right row missing join key {right_key!r}")
        index[row[right_key]].append(row)
    out = []
    for row in left:
        if key not in row:
            raise ModelError(f"left row missing join key {key!r}")
        for match in index.get(row[key], ()):
            merged = dict(row)
            for col, value in match.items():
                if col == right_key:
                    continue
                merged[col + suffix if col in row else col] = value
            out.append(merged)
    return out


#: Aggregate functions usable in :func:`group_aggregate`.
AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
    "sum": sum,
    "min": min,
    "max": max,
    "count": len,
    "avg": lambda values: sum(values) / len(values),
}


def group_aggregate(
    rows: Iterable[Row],
    group_by: str,
    value_column: str,
    aggregate: str = "sum",
) -> List[Row]:
    """GROUP BY ``group_by`` applying ``aggregate`` over ``value_column``.

    Returns rows ``{group_by: key, aggregate: value}`` sorted by key.
    """
    if aggregate not in AGGREGATES:
        raise ModelError(
            f"unknown aggregate {aggregate!r}; choose from {sorted(AGGREGATES)}"
        )
    groups: Dict[Any, List[float]] = defaultdict(list)
    for row in rows:
        if group_by not in row or value_column not in row:
            raise ModelError(
                f"row missing {group_by!r} or {value_column!r}: {row}"
            )
        groups[row[group_by]].append(row[value_column])
    fn = AGGREGATES[aggregate]
    return [
        {group_by: key, aggregate: fn(values)}
        for key, values in sorted(groups.items())
    ]


def order_by(
    rows: Iterable[Row], column: str, descending: bool = False
) -> List[Row]:
    """Stable sort by one column."""
    rows = list(rows)
    for row in rows:
        if column not in row:
            raise ModelError(f"row missing sort column {column!r}")
    return sorted(rows, key=lambda r: r[column], reverse=descending)


def limit(rows: Sequence[Row], n: int) -> List[Row]:
    """First ``n`` rows."""
    if n < 0:
        raise ModelError("limit cannot be negative")
    return list(rows[:n])

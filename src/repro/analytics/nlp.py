"""Natural-language-processing kernels.

§IV.C.1 notes the "shift away from query languages towards data analysis
libraries and APIs targeting Machine Learning and Natural Language
Processing". These working kernels (tokenization, tf-idf, regex
extraction, n-grams) are the NLP building blocks used by the frameworks
and benchmark layers.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.errors import ModelError

_TOKEN_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> List[str]:
    """Lowercase word tokenization."""
    return _TOKEN_RE.findall(text.lower())


def word_counts(texts: Sequence[str]) -> Dict[str, int]:
    """Corpus-wide token counts (the canonical MapReduce example)."""
    counter: Counter = Counter()
    for text in texts:
        counter.update(tokenize(text))
    return dict(counter)


def term_frequencies(text: str) -> Dict[str, float]:
    """Normalized term frequencies of one document."""
    tokens = tokenize(text)
    if not tokens:
        return {}
    counts = Counter(tokens)
    total = len(tokens)
    return {term: count / total for term, count in counts.items()}


def inverse_document_frequencies(documents: Sequence[str]) -> Dict[str, float]:
    """Smoothed IDF over a corpus."""
    if not documents:
        raise ModelError("need at least one document")
    n = len(documents)
    doc_freq: Counter = Counter()
    for doc in documents:
        doc_freq.update(set(tokenize(doc)))
    return {
        term: math.log((1 + n) / (1 + freq)) + 1.0
        for term, freq in doc_freq.items()
    }


def tfidf_vectors(documents: Sequence[str]) -> List[Dict[str, float]]:
    """Per-document tf-idf sparse vectors."""
    idf = inverse_document_frequencies(documents)
    vectors = []
    for doc in documents:
        tf = term_frequencies(doc)
        vectors.append({term: freq * idf[term] for term, freq in tf.items()})
    return vectors


def cosine_similarity(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Cosine similarity of two sparse vectors (0 for empty inputs)."""
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(term, 0.0) for term, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def extract_pattern(texts: Sequence[str], pattern: str) -> List[Tuple[int, str]]:
    """Regex information extraction: (document index, match) pairs.

    This is the SystemT-style extraction primitive -- and the classic
    FPGA-acceleratable streaming kernel.
    """
    try:
        compiled = re.compile(pattern)
    except re.error as exc:
        raise ModelError(f"bad pattern: {exc}") from exc
    out = []
    for index, text in enumerate(texts):
        for match in compiled.finditer(text):
            out.append((index, match.group(0)))
    return out


def ngrams(tokens: Sequence[str], n: int) -> List[Tuple[str, ...]]:
    """All n-grams of a token sequence."""
    if n < 1:
        raise ModelError(f"n must be >= 1, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def top_terms(counts: Dict[str, int], k: int) -> List[Tuple[str, int]]:
    """The ``k`` most frequent terms, count-descending then lexicographic."""
    if k < 0:
        raise ModelError("k cannot be negative")
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

"""Graph-analytics kernels: PageRank, BFS, connected components.

Implemented directly on adjacency dictionaries (not via networkx) so the
kernels themselves are library code the benchmark suite measures; tests
cross-check against networkx.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set

from repro.errors import ModelError

#: Adjacency representation: node -> list of successor nodes.
Adjacency = Dict[Hashable, List[Hashable]]


def _check_graph(graph: Adjacency) -> None:
    if not graph:
        raise ModelError("empty graph")
    for node, successors in graph.items():
        for succ in successors:
            if succ not in graph:
                raise ModelError(
                    f"edge {node}->{succ} points outside the node set"
                )


def pagerank(
    graph: Adjacency,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> Dict[Hashable, float]:
    """Power-iteration PageRank with dangling-node redistribution."""
    _check_graph(graph)
    if not 0.0 < damping < 1.0:
        raise ModelError(f"damping must be in (0, 1), got {damping}")
    nodes = sorted(graph, key=repr)
    n = len(nodes)
    rank = {node: 1.0 / n for node in nodes}
    out_degree = {node: len(graph[node]) for node in nodes}
    for _ in range(max_iterations):
        dangling_mass = sum(
            rank[node] for node in nodes if out_degree[node] == 0
        )
        new_rank = {
            node: (1.0 - damping) / n + damping * dangling_mass / n
            for node in nodes
        }
        for node in nodes:
            if out_degree[node] == 0:
                continue
            share = damping * rank[node] / out_degree[node]
            for succ in graph[node]:
                new_rank[succ] += share
        delta = sum(abs(new_rank[node] - rank[node]) for node in nodes)
        rank = new_rank
        if delta < tolerance:
            break
    return rank


def bfs_distances(graph: Adjacency, source: Hashable) -> Dict[Hashable, int]:
    """Hop distances from ``source`` (unreachable nodes omitted)."""
    _check_graph(graph)
    if source not in graph:
        raise ModelError(f"unknown source: {source!r}")
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ in graph[node]:
            if succ not in distances:
                distances[succ] = distances[node] + 1
                frontier.append(succ)
    return distances


def connected_components(graph: Adjacency) -> List[Set[Hashable]]:
    """Weakly-connected components, largest first."""
    _check_graph(graph)
    undirected: Dict[Hashable, Set[Hashable]] = {node: set() for node in graph}
    for node, successors in graph.items():
        for succ in successors:
            undirected[node].add(succ)
            undirected[succ].add(node)
    seen: Set[Hashable] = set()
    components = []
    for start in sorted(graph, key=repr):
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in undirected[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(component)
    return sorted(components, key=len, reverse=True)


def degree_distribution(graph: Adjacency) -> Dict[int, int]:
    """Out-degree histogram: degree -> node count."""
    _check_graph(graph)
    histogram: Dict[int, int] = {}
    for successors in graph.values():
        degree = len(successors)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def triangle_count(graph: Adjacency) -> int:
    """Number of undirected triangles."""
    _check_graph(graph)
    neighbors: Dict[Hashable, Set[Hashable]] = {node: set() for node in graph}
    for node, successors in graph.items():
        for succ in successors:
            if succ != node:
                neighbors[node].add(succ)
                neighbors[succ].add(node)
    count = 0
    for node in graph:
        for a in neighbors[node]:
            if repr(a) <= repr(node):
                continue
            count += sum(
                1
                for b in neighbors[node] & neighbors[a]
                if repr(b) > repr(a)
            )
    return count

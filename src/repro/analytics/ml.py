"""Machine-learning kernels (numpy implementations).

These are real, working algorithms -- k-means, logistic regression,
linear regression, k-nearest-neighbours -- used both as library
functionality and as the computational payload of the benchmark suite
(R9) and the accelerated-building-block experiments (R10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def kmeans(
    points: np.ndarray,
    k: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++-style seeding.

    ``points`` is (n, d). Deterministic given ``seed``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ModelError("points must be a 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ModelError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)

    # k-means++ seeding.
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    for i in range(1, k):
        d2 = np.min(
            ((points[:, None, :] - centroids[None, :i, :]) ** 2).sum(-1), axis=1
        )
        total = d2.sum()
        if total <= 0:
            centroids[i] = points[rng.integers(n)]
        else:
            centroids[i] = points[rng.choice(n, p=d2 / total)]

    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iterations + 1):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = points[labels == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tolerance:
            break
    inertia = float(
        ((points - centroids[labels]) ** 2).sum()
    )
    return KMeansResult(centroids, labels, inertia, iteration)


def logistic_regression(
    features: np.ndarray,
    labels: np.ndarray,
    learning_rate: float = 0.1,
    epochs: int = 200,
    l2: float = 0.0,
) -> np.ndarray:
    """Batch gradient-descent logistic regression; returns weights (d+1,).

    The last weight is the intercept. Labels must be 0/1.
    """
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels, dtype=float)
    if features.ndim != 2 or labels.ndim != 1:
        raise ModelError("features must be 2-D and labels 1-D")
    if len(features) != len(labels):
        raise ModelError("features and labels length mismatch")
    if not set(np.unique(labels)) <= {0.0, 1.0}:
        raise ModelError("labels must be 0/1")
    x = np.hstack([features, np.ones((len(features), 1))])
    weights = np.zeros(x.shape[1])
    n = len(x)
    for _ in range(epochs):
        preds = 1.0 / (1.0 + np.exp(-np.clip(x @ weights, -30, 30)))
        gradient = x.T @ (preds - labels) / n + l2 * weights
        weights -= learning_rate * gradient
    return weights


def logistic_predict(features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """0/1 predictions from :func:`logistic_regression` weights."""
    features = np.asarray(features, dtype=float)
    x = np.hstack([features, np.ones((len(features), 1))])
    return (x @ weights > 0).astype(int)


def linear_regression(features: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Least-squares fit; returns weights (d+1,) with intercept last."""
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if len(features) != len(targets):
        raise ModelError("features and targets length mismatch")
    x = np.hstack([features, np.ones((len(features), 1))])
    weights, *_ = np.linalg.lstsq(x, targets, rcond=None)
    return weights


def knn_classify(
    train_x: np.ndarray,
    train_y: np.ndarray,
    query_x: np.ndarray,
    k: int = 5,
) -> np.ndarray:
    """k-nearest-neighbour majority-vote classification."""
    train_x = np.asarray(train_x, dtype=float)
    query_x = np.asarray(query_x, dtype=float)
    train_y = np.asarray(train_y)
    if k < 1 or k > len(train_x):
        raise ModelError(f"k must be in [1, {len(train_x)}], got {k}")
    out = np.empty(len(query_x), dtype=train_y.dtype)
    for i, q in enumerate(query_x):
        d2 = ((train_x - q) ** 2).sum(axis=1)
        nearest = train_y[np.argsort(d2, kind="stable")[:k]]
        values, counts = np.unique(nearest, return_counts=True)
        out[i] = values[counts.argmax()]
    return out

"""Accelerated building blocks (Recommendation 10).

R10: "identify often-required functional building blocks in existing
processing frameworks and ... replace these blocks with (partially)
hardware-accelerated implementations". A :class:`BuildingBlock` couples

- a *functional identity* (name + the pure-Python reference kernel),
- a *cost shape* (ops and bytes per record, serial fraction) used by the
  roofline model, and
- an *acceleration profile*: which device kinds implement the block and
  at what fraction of their tuned throughput.

The frameworks layer looks operators up here to decide offload; the E3
and E11 experiments sweep this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ModelError, RegistryError
from repro.node.device import ComputeDevice, DeviceKind
from repro.node.roofline import Kernel, execution_time_s


@dataclass(frozen=True)
class BlockCost:
    """Per-record resource footprint of a building block."""

    ops_per_record: float
    bytes_per_record: float
    serial_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.ops_per_record <= 0 or self.bytes_per_record <= 0:
            raise ModelError("per-record ops and bytes must be positive")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ModelError("serial fraction must be in [0, 1]")

    def kernel(self, name: str, n_records: int) -> Kernel:
        """The roofline kernel for processing ``n_records``."""
        if n_records < 1:
            raise ModelError("need at least one record")
        return Kernel(
            name=name,
            ops=self.ops_per_record * n_records,
            bytes_moved=self.bytes_per_record * n_records,
            serial_fraction=self.serial_fraction,
        )


@dataclass(frozen=True)
class BuildingBlock:
    """One accelerable framework operator.

    ``device_support`` maps :class:`DeviceKind` to an efficiency factor
    in (0, 1]: the fraction of the device's roofline the block's
    accelerated implementation achieves. Absent kinds cannot run the
    block (other than the CPU, which always can).

    ``device_cost`` optionally overrides the cost *shape* per device
    kind: the same logical block can have a fundamentally different
    operation count on different hardware (a regex is a ~100-op/byte
    branchy state machine on a CPU but a 1-op/byte NFA pipeline on an
    FPGA -- spatial hardware changes the algorithm, not just the rate).
    """

    name: str
    cost: BlockCost
    device_support: Dict[DeviceKind, float] = field(default_factory=dict)
    device_cost: Dict[DeviceKind, BlockCost] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, eff in self.device_support.items():
            if not 0.0 < eff <= 1.0:
                raise ModelError(
                    f"block {self.name}: efficiency for {kind.value} "
                    f"must be in (0, 1], got {eff}"
                )
        for kind in self.device_cost:
            if kind != DeviceKind.CPU and kind not in self.device_support:
                raise ModelError(
                    f"block {self.name}: cost override for unsupported "
                    f"kind {kind.value}"
                )

    def runs_on(self, device: ComputeDevice) -> bool:
        """Whether the block has an implementation for ``device``."""
        return device.kind == DeviceKind.CPU or device.kind in self.device_support

    def cost_for(self, kind: DeviceKind) -> BlockCost:
        """The cost shape on device kind ``kind``."""
        return self.device_cost.get(kind, self.cost)

    def time_s(self, device: ComputeDevice, n_records: int) -> float:
        """Execution time of the block over ``n_records`` on ``device``."""
        if not self.runs_on(device):
            raise ModelError(
                f"block {self.name} has no implementation for {device.kind.value}"
            )
        kernel = self.cost_for(device.kind).kernel(self.name, n_records)
        base = execution_time_s(kernel, device)
        efficiency = self.device_support.get(device.kind, 1.0)
        if device.kind == DeviceKind.CPU:
            efficiency = 1.0
        # Lower block efficiency stretches the parallel portion.
        overhead_free = base - device.launch_overhead_s
        return overhead_free / efficiency + device.launch_overhead_s

    def throughput_records_per_s(
        self, device: ComputeDevice, n_records: int = 1_000_000
    ) -> float:
        """Sustained record rate on ``device`` at a large batch size."""
        return n_records / self.time_s(device, n_records)


class BlockRegistry:
    """Name-indexed registry of building blocks."""

    def __init__(self) -> None:
        self._blocks: Dict[str, BuildingBlock] = {}

    def register(self, block: BuildingBlock) -> None:
        """Add a block; duplicates are an error."""
        if block.name in self._blocks:
            raise RegistryError(f"duplicate block: {block.name}")
        self._blocks[block.name] = block

    def get(self, name: str) -> BuildingBlock:
        """Look up a block by name."""
        if name not in self._blocks:
            raise RegistryError(f"unknown block: {name!r}")
        return self._blocks[name]

    def names(self) -> list:
        """Sorted registered names."""
        return sorted(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)


def default_blocks() -> BlockRegistry:
    """The R10 starter set, with 2016-plausible cost shapes.

    Efficiency factors encode which hardware each block maps well onto:
    regex streams onto FPGAs, dense linear algebra onto GPUs/ASICs,
    hash-heavy relational ops onto nothing exotic.
    """
    registry = BlockRegistry()
    registry.register(
        BuildingBlock(
            "filter-scan",
            BlockCost(ops_per_record=12, bytes_per_record=100),
            {DeviceKind.FPGA: 0.9, DeviceKind.GPU: 0.6},
        )
    )
    registry.register(
        BuildingBlock(
            "regex-extract",
            # CPU reference: ~100 ops/byte for a branchy multi-pattern NFA.
            BlockCost(ops_per_record=20_000, bytes_per_record=200),
            {DeviceKind.FPGA: 0.95},  # NFA pipelines: the FPGA sweet spot
            # On the FPGA the NFA is spatial: ~1 op/byte at line rate.
            device_cost={
                DeviceKind.FPGA: BlockCost(
                    ops_per_record=200, bytes_per_record=200
                )
            },
        )
    )
    registry.register(
        BuildingBlock(
            "hash-aggregate",
            BlockCost(
                ops_per_record=60, bytes_per_record=48, serial_fraction=0.02
            ),
            {DeviceKind.GPU: 0.5, DeviceKind.FPGA: 0.6},
        )
    )
    registry.register(
        BuildingBlock(
            "hash-join",
            BlockCost(
                ops_per_record=90, bytes_per_record=64, serial_fraction=0.03
            ),
            {DeviceKind.GPU: 0.55, DeviceKind.FPGA: 0.55},
        )
    )
    registry.register(
        BuildingBlock(
            "sort",
            BlockCost(
                ops_per_record=180, bytes_per_record=120, serial_fraction=0.01
            ),
            {DeviceKind.GPU: 0.7},
        )
    )
    registry.register(
        BuildingBlock(
            "dense-gemm",
            BlockCost(ops_per_record=4_000, bytes_per_record=32),
            {DeviceKind.GPU: 0.85, DeviceKind.ASIC: 0.95, DeviceKind.FPGA: 0.6},
        )
    )
    registry.register(
        BuildingBlock(
            "dnn-inference",
            BlockCost(ops_per_record=20_000, bytes_per_record=80),
            {
                DeviceKind.GPU: 0.8,
                DeviceKind.ASIC: 0.95,
                DeviceKind.FPGA: 0.65,
                DeviceKind.NEUROMORPHIC: 0.7,
            },
        )
    )
    registry.register(
        BuildingBlock(
            "compression",
            # CPU reference: ~20 ops/byte for LZ-class compression.
            BlockCost(ops_per_record=3_000, bytes_per_record=150),
            {DeviceKind.FPGA: 0.85, DeviceKind.ASIC: 0.9},
            # Streaming compressors on spatial hardware: ~2 ops/byte.
            device_cost={
                DeviceKind.FPGA: BlockCost(
                    ops_per_record=300, bytes_per_record=150
                ),
                DeviceKind.ASIC: BlockCost(
                    ops_per_record=300, bytes_per_record=150
                ),
            },
        )
    )
    registry.register(
        BuildingBlock(
            "feature-extract",
            BlockCost(ops_per_record=900, bytes_per_record=220),
            {DeviceKind.GPU: 0.65, DeviceKind.DSP: 0.8, DeviceKind.FPGA: 0.7},
        )
    )
    return registry


def best_device_for_block(
    block: BuildingBlock,
    devices,
    n_records: int = 1_000_000,
    objective: str = "time",
) -> ComputeDevice:
    """The device minimizing ``time`` or ``energy`` for one block batch."""
    if objective not in ("time", "energy"):
        raise ModelError(f"unknown objective: {objective!r}")
    candidates = [d for d in devices if block.runs_on(d)]
    if not candidates:
        raise ModelError(f"no device can run block {block.name}")

    def score(device: ComputeDevice) -> float:
        time = block.time_s(device, n_records)
        return time if objective == "time" else time * device.tdp_w

    return min(candidates, key=lambda d: (score(d), d.name))

"""Analytics building blocks: ML, NLP, relational and graph kernels,
plus the accelerated-building-block registry of Recommendation 10."""

from repro.analytics.bayes import (
    GaussianNaiveBayes,
    MultinomialNaiveBayes,
)
from repro.analytics.blocks import (
    BlockCost,
    BlockRegistry,
    BuildingBlock,
    best_device_for_block,
    default_blocks,
)
from repro.analytics.graph import (
    bfs_distances,
    connected_components,
    degree_distribution,
    pagerank,
    triangle_count,
)
from repro.analytics.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision_recall,
    train_test_split,
)
from repro.analytics.ml import (
    KMeansResult,
    kmeans,
    knn_classify,
    linear_regression,
    logistic_predict,
    logistic_regression,
)
from repro.analytics.nlp import (
    cosine_similarity,
    extract_pattern,
    inverse_document_frequencies,
    ngrams,
    term_frequencies,
    tfidf_vectors,
    tokenize,
    top_terms,
    word_counts,
)
from repro.analytics.relational import (
    AGGREGATES,
    group_aggregate,
    hash_join,
    limit,
    order_by,
    project,
    select,
)

__all__ = [
    "AGGREGATES",
    "BlockCost",
    "BlockRegistry",
    "BuildingBlock",
    "GaussianNaiveBayes",
    "KMeansResult",
    "MultinomialNaiveBayes",
    "accuracy",
    "best_device_for_block",
    "bfs_distances",
    "confusion_matrix",
    "connected_components",
    "cosine_similarity",
    "default_blocks",
    "degree_distribution",
    "extract_pattern",
    "f1_score",
    "group_aggregate",
    "hash_join",
    "inverse_document_frequencies",
    "kmeans",
    "knn_classify",
    "limit",
    "linear_regression",
    "logistic_predict",
    "logistic_regression",
    "ngrams",
    "order_by",
    "pagerank",
    "precision_recall",
    "project",
    "select",
    "term_frequencies",
    "tfidf_vectors",
    "tokenize",
    "top_terms",
    "train_test_split",
    "triangle_count",
    "word_counts",
]

"""Frozen pre-fast-path reference implementations for the perf harness.

This module is a verbatim copy of the engine kernel (``engine/sim.py``,
``engine/resources.py``) and flow solver (``network/flows.py``) as they
stood *before* the fast-path overhaul: per-event ``Event`` + closure
allocation in ``timeout()``, a fresh lambda per callback in
``_schedule_call``/``_flush``, a callback *list* on every event, and a
from-scratch pure-Python max-min re-solve per flow event.

It exists so that:

- the perf suite (:mod:`repro.perf`) can measure the production kernel
  against the exact pre-change code on the same machine in the same
  process, making the reported speedups ratios rather than wall-clock
  absolutes (robust to machine differences, so CI can gate on them);
- the determinism tests can assert that the fast-path kernel produces
  *identical* simulation results to the original.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

import networkx as nx

from repro.errors import ProcessFailure, SimulationError, TopologyError
from repro.network.routing import ecmp_path_for_flow, path_links
from repro.network.topology import Fabric

Process = Generator["Event", Any, Any]


class Event:
    """Pre-fast-path event: always carries a callback list."""

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exception",
                 "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def value(self) -> Any:
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._flush()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        self._flush()
        return self

    def cancel(self) -> None:
        if not self._triggered:
            self._cancelled = True

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim._schedule_call(lambda cb=callback: cb(self))


class ProcessHandle(Event):
    """Pre-fast-path process handle (no cached bound step)."""

    __slots__ = ("generator", "name", "_waiting_on", "spawned_at",
                 "finished_at", "steps")

    def __init__(self, sim: "Simulator", generator: Process,
                 name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self.spawned_at = sim.now
        self.finished_at: Optional[float] = None
        self.steps = 0

    def succeed(self, value: Any = None) -> "Event":
        self.finished_at = self.sim.now
        return super().succeed(value)

    def fail(self, exception: BaseException) -> "Event":
        self.finished_at = self.sim.now
        return super().fail(exception)

    def _step(self, fired: Optional[Event]) -> None:
        if self._triggered:
            return
        if fired is not None and fired is not self._waiting_on:
            return
        self._waiting_on = None
        sim = self.sim
        observability = sim.observability
        if observability is None:
            try:
                if fired is not None and fired._exception is not None:
                    target = self.generator.throw(fired._exception)
                else:
                    send_value = fired._value if fired is not None else None
                    target = self.generator.send(send_value)
            except StopIteration as stop:
                self.finished_at = sim._now
                Event.succeed(self, stop.value)
                return
            except Exception as exc:
                self._crash(exc)
                return
        else:
            observability._note_step(self)
            sim._active_process = self
            try:
                if fired is not None and fired._exception is not None:
                    target = self.generator.throw(fired._exception)
                else:
                    send_value = fired._value if fired is not None else None
                    target = self.generator.send(send_value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except Exception as exc:
                self._crash(exc)
                return
            finally:
                sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._step)

    def _finish(self, value: Any) -> None:
        self.succeed(value)
        observability = self.sim.observability
        if observability is not None:
            observability._note_process_end(self)

    def _crash(self, exc: BaseException) -> None:
        sim = self.sim
        observability = sim.observability
        if observability is not None:
            observability._note_process_error(self, exc)
        hook = sim.on_process_error
        if hook is not None and hook(self, exc):
            self.fail(exc)
            return
        raise ProcessFailure(
            f"process {self.name!r} failed at t={sim.now:g}: {exc!r}",
            process_name=self.name,
            sim_time=sim.now,
        ) from exc


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Simulator:
    """Pre-fast-path event loop: ``(when, seq, thunk)`` heap entries."""

    def __init__(self, start: float = 0.0, observability: Any = None) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._event_count = 0
        self.observability: Any = None
        self.on_event: Optional[Callable[[float, Any], None]] = None
        self.on_process_error: Optional[
            Callable[[ProcessHandle, BaseException], bool]
        ] = None
        self._active_process: Optional[ProcessHandle] = None
        if observability is not None:
            observability.attach(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def active_process(self) -> Optional[ProcessHandle]:
        return self._active_process

    def _schedule_at(self, when: float, call: Callable[[], None]) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), call))

    def _schedule_call(self, call: Callable[[], None]) -> None:
        self._schedule_at(self._now, call)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        evt = Event(self)
        self._schedule_at(self._now + delay, lambda: evt.succeed(value))
        return evt

    def spawn(self, generator: Process, name: str = "") -> ProcessHandle:
        handle = ProcessHandle(self, generator, name)
        self._schedule_call(lambda: handle._step(None))
        return handle

    def span(self, name: str, **tags: Any):
        observability = self.observability
        if observability is None:
            return _NULL_SPAN
        return observability.span(name, **tags)

    def run(self, until: Optional[float] = None) -> float:
        queue = self._queue
        on_event = self.on_event
        while queue:
            when, _seq, call = queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(queue)
            self._now = when
            self._event_count += 1
            if on_event is not None:
                on_event(when, call)
            call()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        return self._queue[0][0] if self._queue else None


class Resource:
    """Pre-fast-path counted resource (events via ``sim.event()``)."""

    def __init__(
        self, sim: Simulator, capacity: int = 1, name: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._created = sim.now
        self._busy_time = 0.0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return sum(1 for waiter in self._waiters if not waiter._cancelled)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def _publish(self) -> None:
        if self.name is None:
            return
        observability = self.sim.observability
        if observability is None:
            return
        now = self.sim.now
        registry = observability.registry
        registry.gauge(f"{self.name}.in_use").set(now, float(self._in_use))
        registry.gauge(f"{self.name}.queue_length").set(
            now, float(self.queue_length)
        )
        registry.gauge(f"{self.name}.utilization").set(now, self.utilization())

    def utilization(self) -> float:
        self._account()
        elapsed = self.sim.now - self._created
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    def acquire(self) -> Event:
        evt = self.sim.event()
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            evt.succeed(self)
        else:
            self._waiters.append(evt)
        if self.name is not None:
            self._publish()
        return evt

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without matching acquire")
        self._account()
        while self._waiters and self._waiters[0]._cancelled:
            self._waiters.popleft()
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1
        if self.name is not None:
            self._publish()


def reference_max_min_fair_rates(fabric: Fabric, flows: List[Any]) -> Dict[int, float]:
    """Pre-change pure-Python progressive filling (from-scratch scan)."""
    active: Dict[int, Any] = {}
    for flow in flows:
        if flow.path is None:
            raise TopologyError(f"flow {flow.flow_id}: path not assigned")
        active[flow.flow_id] = flow

    remaining_capacity: Dict[Tuple[str, str], float] = {}
    link_flows: Dict[Tuple[str, str], set] = {}
    for flow in active.values():
        for link in path_links(flow.path):
            if link not in remaining_capacity:
                a, b = link
                remaining_capacity[link] = (
                    fabric.link_rate_gbps(a, b) * 1e9 / 8.0
                )
                link_flows[link] = set()
            link_flows[link].add(flow.flow_id)

    rates: Dict[int, float] = {}
    unfrozen = set(active)
    while unfrozen:
        best_link, best_share = None, float("inf")
        for link, members in link_flows.items():
            live = members & unfrozen
            if not live:
                continue
            share = remaining_capacity[link] / len(live)
            if share < best_share:
                best_link, best_share = link, share
        if best_link is None:
            for fid in unfrozen:
                rates[fid] = float("inf")
            break
        for fid in sorted(link_flows[best_link] & unfrozen):
            rates[fid] = best_share
            unfrozen.discard(fid)
            for link in path_links(active[fid].path):
                remaining_capacity[link] -= best_share
                if remaining_capacity[link] < 0:
                    remaining_capacity[link] = 0.0
    return rates


def _reference_hosts_connected(fabric: Fabric) -> bool:
    """Frozen copy of the full component scan the naive analysis used."""
    hosts = fabric.hosts
    if len(hosts) < 2:
        return True
    for component in nx.connected_components(fabric.graph):
        if hosts[0] in component:
            return all(h in component for h in hosts)
    return False


def reference_single_switch_failure_impact(fabric: Fabric) -> Dict[str, float]:
    """Pre-change per-switch failure analysis: copy + recompute per switch.

    For every switch this clones the whole fabric graph, rescans
    connectivity, and recomputes bisection bandwidth from scratch (full
    host contraction plus max flow). The production version in
    :mod:`repro.network.failures` contracts once and reuses the baseline
    flow; this copy is frozen as its timing and equivalence reference.
    """
    baseline = fabric.bisection_bandwidth_gbps()
    worst: Dict[str, float] = {}
    for switch in fabric.switches:
        degraded = Fabric(
            name=f"{fabric.name}-degraded", graph=fabric.graph.copy()
        )
        degraded.graph.remove_node(switch)
        if not _reference_hosts_connected(degraded):
            fraction = 0.0
        else:
            fraction = degraded.bisection_bandwidth_gbps() / baseline
        role = fabric.role(switch)
        worst[role] = min(worst.get(role, 1.0), fraction)
    return worst


@dataclass
class ReferenceFlowSimulator:
    """Pre-change flow simulator: full Python re-solve at every event.

    Operates on the production :class:`repro.network.flows.Flow` objects,
    so results can be compared field-for-field with the incremental
    solver.
    """

    fabric: Fabric
    assign_paths: bool = True

    def run(self, flows: List[Any]) -> List[Any]:
        if not flows:
            return []
        for flow in flows:
            if self.assign_paths and flow.path is None:
                flow.path = ecmp_path_for_flow(
                    self.fabric, flow.src, flow.dst, flow.flow_id
                )
            elif flow.path is None:
                raise TopologyError(
                    f"flow {flow.flow_id}: no path and path assignment disabled"
                )

        pending = sorted(flows, key=lambda f: (f.start_s, f.flow_id))
        remaining: Dict[int, float] = {}
        active: Dict[int, Any] = {}
        now = 0.0
        next_arrival = 0

        while pending[next_arrival:] or active:
            while next_arrival < len(pending) and (
                not active or pending[next_arrival].start_s <= now
            ):
                flow = pending[next_arrival]
                if flow.start_s > now:
                    now = flow.start_s
                active[flow.flow_id] = flow
                remaining[flow.flow_id] = flow.size_bytes
                next_arrival += 1

            rates = reference_max_min_fair_rates(
                self.fabric, list(active.values())
            )

            time_to_finish = min(
                remaining[fid] / rates[fid] for fid in active
            )
            horizon = time_to_finish
            if next_arrival < len(pending):
                horizon = min(
                    horizon, pending[next_arrival].start_s - now
                )
            horizon = max(horizon, 0.0)

            for fid in list(active):
                remaining[fid] -= rates[fid] * horizon
            now += horizon

            for fid in sorted(active):
                if remaining[fid] <= 1e-6:
                    active[fid].finish_s = now
                    del active[fid]
                    del remaining[fid]
        return flows


def reference_fault_schedule_rates(
    fabric: Fabric, flows: List[Any], schedule: List[Tuple[str, Tuple]]
) -> List[Dict[int, float]]:
    """Pre-change fault handling: full reroute + full re-solve per event.

    ``schedule`` is a list of ``(method_name, args)`` fabric mutations
    (``fail_link``, ``restore_link``, ``fail_node``, ``restore_node``).
    After *every* mutation this reassigns every flow's ECMP path over
    the surviving topology and re-solves the whole fabric from scratch
    -- exactly what the library did before the incremental solver, and
    the allocation sequence that solver must reproduce bit for bit.
    Returns one ``{flow_id: rate}`` snapshot per schedule entry, plus
    the initial allocation at index 0.
    """
    def resolve() -> Dict[int, float]:
        for flow in flows:
            flow.path = ecmp_path_for_flow(
                fabric, flow.src, flow.dst, flow.flow_id
            )
        return reference_max_min_fair_rates(fabric, flows)

    snapshots = [resolve()]
    for method, args in schedule:
        getattr(fabric, method)(*args)
        snapshots.append(resolve())
    return snapshots

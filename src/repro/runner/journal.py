"""Write-ahead job journal: durable, checksummed execution records.

The journal is the runner's crash-recovery backbone: an append-only
JSONL file, written next to the result cache, in which every state
transition of a grid is recorded *before* the process moves on. Each
line is a self-verifying record -- the canonical JSON payload plus a
SHA-256 checksum prefix -- and every append is flushed and ``fsync``'d,
so the journal on disk is always a consistent prefix of execution
history no matter when the process dies (SIGKILL, OOM, power loss).

Record kinds written by :func:`repro.runner.execute_job`:

- ``grid-start`` -- the grid's identity (content-addressed ``job_id``,
  shard count, the canonical spec) opens the journal;
- ``shard-start`` -- a shard was handed to a worker (attempt-stamped);
- ``shard-done`` -- a shard reached a terminal state; the record embeds
  the full serialized :class:`~repro.runner.results.RunResult`, which
  is what resume replays;
- ``grid-done`` -- the sweep merged cleanly.

The service layer reuses the same machinery with ``job-accepted`` /
``job-done`` records (:mod:`repro.service.server`).

**Torn-tail semantics.** A crash can truncate the *final* record at any
byte offset. :func:`read_journal` tolerates exactly that case -- an
undecodable or checksum-failing tail record with nothing after it is
dropped and reported via :attr:`JournalReplay.torn_tail_offset`. A bad
record *followed by more data* is real corruption, not a crash
artifact, and raises :class:`~repro.errors.JournalError` naming the
byte offset; resume never silently skips interior records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import JournalError
from repro.runner.results import RunResult

#: Identifier of the journal line format.
JOURNAL_SCHEMA = "repro.runner/journal/v1"

#: Hex digits of the SHA-256 digest stored per record.
_CRC_HEX = 16


def _payload_json(record: Dict[str, Any]) -> str:
    """The canonical checksummed payload encoding (sorted, compact)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_CRC_HEX]


def encode_record(record: Dict[str, Any]) -> str:
    """One journal line (with trailing newline) for ``record``."""
    payload = _payload_json(record)
    return f"{_checksum(payload)} {payload}\n"


def decode_record(line: str) -> Dict[str, Any]:
    """Parse and checksum-verify one journal line.

    Raises ``ValueError`` on any malformation (missing separator,
    undecodable JSON, checksum mismatch); callers decide whether that
    is a tolerable torn tail or hard corruption.
    """
    crc, sep, payload = line.rstrip("\n").partition(" ")
    if not sep or len(crc) != _CRC_HEX:
        raise ValueError("malformed journal line: no checksum prefix")
    record = json.loads(payload)
    if not isinstance(record, dict):
        raise ValueError("journal payload is not an object")
    if _checksum(_payload_json(record)) != crc:
        raise ValueError("journal checksum mismatch")
    return record


class JournalWriter:
    """Append-only writer with per-record flush + fsync.

    ``mode`` is ``"w"`` to start a fresh journal (a clean, non-resumed
    run re-journals from scratch) or ``"a"`` to extend an existing one
    (resume). Opening in append mode first drops a torn final record
    left by a crash mid-append -- appending *after* a partial line
    would turn a tolerable torn tail into unreadable mid-file
    corruption. The file handle opens lazily on the first append, so
    constructing a writer for a grid that turns out fully cache-served
    still records its history once the first append happens.
    """

    def __init__(self, path: "str | Path", mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"journal mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self.mode = mode
        self._handle = None

    def _open(self) -> Any:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.mode == "a" and self.path.exists():
            torn = read_journal(self.path).torn_tail_offset
            if torn is not None:
                with open(self.path, "r+b") as handle:
                    handle.truncate(torn)
        return open(self.path, self.mode, encoding="utf-8")

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one record; returns the record written.

        The record only "happened" once this returns: the line is
        flushed and ``fsync``'d before control comes back, which is the
        write-ahead property resume relies on.
        """
        record = {"kind": kind, **fields}
        if self._handle is None:
            self._handle = self._open()
        self._handle.write(encode_record(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return record

    def close(self) -> None:
        """Close the underlying handle (appends re-open it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class JournalReplay:
    """The readable history of one journal file.

    ``records`` holds every checksum-verified record in append order;
    ``torn_tail_offset`` is the byte offset of a dropped torn final
    record (None when the file ended cleanly).
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    torn_tail_offset: Optional[int] = None

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """The records matching ``kind``, in append order."""
        return [r for r in self.records if r.get("kind") == kind]


def read_journal(path: "str | Path") -> JournalReplay:
    """Read and verify a journal, tolerating a torn final record.

    Returns an empty replay for a missing file (no history is valid
    history). Raises :class:`~repro.errors.JournalError` -- naming the
    byte offset -- when a bad record is *followed* by more data, which
    cannot be explained by a crash mid-append.
    """
    target = Path(path)
    try:
        blob = target.read_bytes()
    except FileNotFoundError:
        return JournalReplay()
    replay = JournalReplay()
    offset = 0
    remaining = blob
    while remaining:
        line, sep, rest = remaining.partition(b"\n")
        chunk = line + sep
        try:
            record = decode_record(chunk.decode("utf-8", errors="strict"))
            if not sep:
                # A record without its trailing newline never finished
                # its append; only acceptable at the very end.
                raise ValueError("journal record missing trailing newline")
        except ValueError as exc:
            if rest.strip():
                raise JournalError(
                    f"corrupt journal record in {target} at byte offset "
                    f"{offset}: {exc}",
                    offset=offset,
                ) from exc
            replay.torn_tail_offset = offset
            return replay
        replay.records.append(record)
        offset += len(chunk)
        remaining = rest
    return replay


def replay_grid(
    path: "str | Path", job_id: str, total: int
) -> Dict[int, RunResult]:
    """Completed-shard results recorded for grid ``job_id``.

    Validates the journal belongs to this exact grid (same
    content-addressed job id and shard count) and rebuilds a
    ``shard index -> RunResult`` map from the ``shard-done`` records;
    later records for the same index win (a resumed-then-interrupted
    journal can legitimately contain several ``grid-start`` marks).
    Returns an empty map when no journal exists. Raises
    :class:`~repro.errors.JournalError` on identity mismatch or rows
    that do not decode to results.
    """
    replay = read_journal(path)
    if not replay.records:
        return {}
    starts = replay.of_kind("grid-start")
    if not starts:
        raise JournalError(
            f"journal {path} has records but no grid-start", offset=0
        )
    for start in starts:
        if start.get("job_id") != job_id or start.get("total") != total:
            raise JournalError(
                f"journal {path} belongs to grid "
                f"{start.get('job_id')!r} ({start.get('total')} shards), "
                f"not {job_id!r} ({total} shards)"
            )
    done: Dict[int, RunResult] = {}
    for record in replay.of_kind("shard-done"):
        try:
            index = int(record["index"])
            result = RunResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"journal {path}: undecodable shard-done record: {exc}"
            ) from exc
        if not 0 <= index < total:
            raise JournalError(
                f"journal {path}: shard index {index} outside grid of "
                f"{total}"
            )
        done[index] = result
    return done


def journal_path(cache_root: "str | Path", job_id: str) -> Path:
    """Where grid ``job_id``'s journal lives next to the cache."""
    return Path(cache_root) / "journal" / f"{job_id}.jsonl"

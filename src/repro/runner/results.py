"""Result records for runnable experiments.

A :class:`RunResult` is the unit of output of one experiment shard --
one ``(experiment, seed, config)`` execution. It carries the headline
metrics the experiment produced plus the execution status (``ok``,
``error``, ``timeout`` or ``crashed``) and, for failed shards, the
captured traceback, so a sweep never dies with a half-written report.
``crashed`` is the hard-death state: the worker process executing the
shard died without reporting (SIGKILL, OOM) on enough attempts that the
pool quarantined the shard rather than keep feeding it workers.

A :class:`GridResult` is the merged output of a whole sweep. Its JSON
serialization is *canonical*: shards are ordered by grid position and
only deterministic fields are written, so the same grid produces
byte-identical ``results.json`` regardless of worker count or cache
state. Wall-clock timings and cache provenance are runtime-only
attributes, deliberately excluded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.atomicio import atomic_write_json

#: The terminal shard states. ``crashed`` means the shard repeatedly
#: killed its worker process and was quarantined by the pool.
RUN_STATUSES = ("ok", "error", "timeout", "crashed")

#: Identifier of the canonical merged-results document format.
RESULTS_SCHEMA = "repro.runner/results/v1"


@dataclass
class RunResult:
    """The outcome of one experiment shard.

    ``seed`` is the user-facing grid seed; entrypoints blend it into
    their own base seeds so seed 0 reproduces the benchmark-suite
    numbers exactly. ``cached`` and ``wall_s`` describe *this* process's
    view of the run (was it served from the on-disk cache, how long did
    it take) and are never serialized.
    """

    experiment_id: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None
    attempts: int = 1
    cached: bool = field(default=False, compare=False)
    wall_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.status not in RUN_STATUSES:
            raise ValueError(
                f"status must be one of {RUN_STATUSES}, got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        """Whether the shard completed without error or timeout."""
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-dict form (the ``results.json`` row).

        Excludes runtime-only fields (``cached``, ``wall_s``) so
        serialized results are identical whether recomputed or replayed
        from cache, at any worker count.
        """
        return {
            "experiment": self.experiment_id,
            "seed": self.seed,
            "config": dict(self.config),
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            experiment_id=record["experiment"],
            seed=int(record["seed"]),
            config=dict(record.get("config", {})),
            metrics=dict(record.get("metrics", {})),
            status=record.get("status", "ok"),
            error=record.get("error"),
            attempts=int(record.get("attempts", 1)),
        )

    def canonical_json(self) -> str:
        """Sorted-keys JSON of :meth:`to_dict` (cache payload format)."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass
class GridResult:
    """Merged results of one sweep, in grid order.

    ``stats`` holds runtime bookkeeping (cache hits, recomputes,
    retries); it is reported to the user but excluded from
    :meth:`write_json` so the artifact stays canonical.
    """

    results: List[RunResult] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def n_ok(self) -> int:
        """Number of shards that completed cleanly."""
        return sum(1 for r in self.results if r.ok)

    @property
    def failures(self) -> List[RunResult]:
        """The shards that errored or timed out, in grid order."""
        return [r for r in self.results if not r.ok]

    @property
    def all_ok(self) -> bool:
        """Whether every shard completed cleanly."""
        return not self.failures

    def result_for(self, experiment_id: str, seed: int = 0) -> RunResult:
        """The first result matching ``(experiment_id, seed)``.

        Raises ``KeyError`` when the grid holds no such shard.
        """
        for result in self.results:
            if result.experiment_id == experiment_id and result.seed == seed:
                return result
        raise KeyError(f"no result for ({experiment_id!r}, seed={seed})")

    def to_dict(self) -> Dict[str, Any]:
        """The canonical document written to ``results.json``."""
        return {
            "schema": RESULTS_SCHEMA,
            "n_runs": len(self.results),
            "n_ok": self.n_ok,
            "experiments": sorted({r.experiment_id for r in self.results}),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "GridResult":
        """Rebuild a grid from :meth:`to_dict` output.

        The header fields (``n_runs``, ``n_ok``, ``experiments``) are
        derived from the rows, so a round trip through
        :meth:`to_dict` -> :meth:`from_dict` -> :meth:`write_json`
        reproduces the serialized document byte for byte -- the property
        the service client relies on. Raises ``ValueError`` on a schema
        mismatch.
        """
        schema = document.get("schema")
        if schema != RESULTS_SCHEMA:
            raise ValueError(
                f"unknown results schema {schema!r}; expected {RESULTS_SCHEMA!r}"
            )
        return cls(
            results=[RunResult.from_dict(r) for r in document.get("results", [])]
        )

    def write_json(self, path: "str | Path") -> Path:
        """Atomically write the canonical merged document to ``path``.

        Routed through :func:`repro.core.atomicio.atomic_write_json` so
        an interrupted run never leaves a truncated ``results.json`` --
        the previous artifact survives until the new one is complete.
        """
        return atomic_write_json(Path(path), self.to_dict())

"""Process-pool shard execution with timeouts and bounded retries.

The pool fans a list of :class:`ShardSpec` out over up to ``jobs``
worker processes. Each shard names its entrypoint as a dotted
``"module:function"`` path -- the *child* resolves and imports it, so
specs stay trivially picklable and no callables cross the process
boundary. A shard that raises is captured as an ``error`` result with
its traceback; a shard that exceeds the per-run timeout is terminated
and recorded as ``timeout``; both are retried up to ``retries`` times
before the failure is accepted into the sweep.

Hard worker death is a third, distinct failure class: the child
process vanished (SIGKILL, OOM-kill, a segfault in native code) without
reporting a result, detected as EOF on the result pipe. The pool
contains it -- the dead worker's slot is simply relaunched for the next
queued attempt, sibling shards keep running -- and retries the shard
under the same ``retries`` budget. A shard that kills its worker
**twice** is quarantined as ``crashed`` immediately, whatever budget
remains: two hard deaths mean the shard itself is the bullet, and
feeding it more workers would poison the whole grid. Timeouts are never
confused with crashes; a timeout is the *parent* terminating the child,
recorded before the pipe closes.

Results are returned in grid order (by :attr:`ShardSpec.index`), never
completion order, so a multi-worker sweep merges identically to a
serial one. ``jobs=1`` executes inline in the calling process -- the
degenerate pool that anchors the determinism guarantee.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional

from repro.errors import RegistryError
from repro.runner.results import RunResult

#: Seconds between liveness polls of in-flight workers.
_POLL_INTERVAL_S = 0.05

#: Hard worker deaths a single shard may cause before it is quarantined
#: as ``crashed`` regardless of remaining retry budget.
_CRASH_QUARANTINE_AT = 2


@dataclass(frozen=True)
class ShardSpec:
    """One schedulable unit: (experiment, seed, config) plus grid index."""

    index: int
    experiment_id: str
    entrypoint: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)


def resolve_entrypoint(path: str) -> Callable[..., RunResult]:
    """Import a ``"module:function"`` path to its callable."""
    module_name, _, function_name = path.partition(":")
    if not module_name or not function_name:
        raise RegistryError(
            f"entrypoint must be 'module:function', got {path!r}"
        )
    module = importlib.import_module(module_name)
    fn = getattr(module, function_name, None)
    if fn is None:
        raise RegistryError(
            f"entrypoint {path!r}: {module_name} has no {function_name}"
        )
    return fn


def execute_shard(spec: ShardSpec) -> RunResult:
    """Run one shard to a :class:`RunResult`, capturing any traceback."""
    try:
        fn = resolve_entrypoint(spec.entrypoint)
        result = fn(dict(spec.config), spec.seed)
        if not isinstance(result, RunResult):
            raise TypeError(
                f"entrypoint {spec.entrypoint!r} returned "
                f"{type(result).__name__}, expected RunResult"
            )
        if result.experiment_id != spec.experiment_id:
            raise RegistryError(
                f"entrypoint {spec.entrypoint!r} returned a result for "
                f"{result.experiment_id!r}, expected {spec.experiment_id!r}"
            )
        return result
    except Exception:
        return RunResult(
            experiment_id=spec.experiment_id,
            seed=spec.seed,
            config=dict(spec.config),
            status="error",
            error=traceback.format_exc(),
        )


def _child_main(conn, spec: ShardSpec) -> None:
    """Worker body: execute the shard, ship the result back, exit."""
    try:
        result = execute_shard(spec)
        conn.send(result)
    finally:
        conn.close()


def _mp_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _InFlight:
    """Bookkeeping for one running worker process."""

    spec: ShardSpec
    attempt: int
    process: Any
    conn: Any
    started: float


def _failure(spec: ShardSpec, status: str, detail: str) -> RunResult:
    return RunResult(
        experiment_id=spec.experiment_id,
        seed=spec.seed,
        config=dict(spec.config),
        status=status,
        error=detail,
    )


def run_shards(
    shards: List[ShardSpec],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    on_complete: Optional[Callable[[ShardSpec, RunResult], None]] = None,
    on_start: Optional[Callable[[ShardSpec, int], None]] = None,
    on_crash: Optional[Callable[[ShardSpec, int], None]] = None,
) -> List[RunResult]:
    """Execute ``shards`` and return their results in grid order.

    ``timeout_s`` bounds each attempt's wall time (pooled mode only;
    inline ``jobs=1`` execution cannot preempt a running shard).
    ``retries`` is the number of *re*-attempts after a failure, so every
    shard runs at most ``retries + 1`` times. ``on_start`` /
    ``on_complete`` are progress hooks invoked in the parent.
    ``on_crash(spec, attempt)`` fires in the parent each time a worker
    process dies without reporting a result (pooled mode only: inline
    execution shares the caller's process, so a hard crash there takes
    the caller with it and cannot be contained).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")

    if jobs == 1:
        return _run_inline(shards, retries, on_complete, on_start)
    return _run_pooled(
        shards, jobs, timeout_s, retries, on_complete, on_start, on_crash
    )


def _run_inline(shards, retries, on_complete, on_start) -> List[RunResult]:
    results: List[RunResult] = []
    for spec in sorted(shards, key=lambda s: s.index):
        result = None
        for attempt in range(1, retries + 2):
            if on_start is not None:
                on_start(spec, attempt)
            started = time.perf_counter()
            result = execute_shard(spec)
            result.attempts = attempt
            result.wall_s = time.perf_counter() - started
            if result.ok:
                break
        if on_complete is not None:
            on_complete(spec, result)
        results.append(result)
    return results


def _run_pooled(
    shards, jobs, timeout_s, retries, on_complete, on_start, on_crash=None
) -> List[RunResult]:
    context = _mp_context()
    queue: List[tuple] = [
        (spec, 1) for spec in sorted(shards, key=lambda s: s.index)
    ]
    in_flight: List[_InFlight] = []
    done: Dict[int, RunResult] = {}
    crash_counts: Dict[int, int] = {}

    def launch(spec: ShardSpec, attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main, args=(child_conn, spec), daemon=True
        )
        if on_start is not None:
            on_start(spec, attempt)
        process.start()
        child_conn.close()
        in_flight.append(
            _InFlight(spec, attempt, process, parent_conn,
                      time.perf_counter())
        )

    def settle(flight: _InFlight, result: RunResult) -> None:
        """Record an attempt's outcome: requeue, or accept the result.

        A shard at the crash-quarantine threshold is accepted as its
        final ``crashed`` result even with retry budget left -- a shard
        that keeps killing workers must not keep consuming them.

        ``attempts`` on a non-crashed result excludes attempts whose
        worker was vaporized before reporting: an external SIGKILL is
        infrastructure noise, not a verdict from the shard, and counting
        it would make a chaos-interrupted grid serialize differently
        from the clean run (``attempts`` is a canonical results.json
        field). Crash events are still fully visible via ``on_crash``
        and the journal.
        """
        crashes = crash_counts.get(flight.spec.index, 0)
        if result.status == "crashed":
            result.attempts = flight.attempt
        else:
            result.attempts = max(1, flight.attempt - crashes)
        result.wall_s = time.perf_counter() - flight.started
        quarantined = (
            result.status == "crashed"
            and crash_counts.get(flight.spec.index, 0) >= _CRASH_QUARANTINE_AT
        )
        if not result.ok and not quarantined and flight.attempt <= retries:
            queue.append((flight.spec, flight.attempt + 1))
            return
        done[flight.spec.index] = result
        if on_complete is not None:
            on_complete(flight.spec, result)

    try:
        while queue or in_flight:
            while queue and len(in_flight) < jobs:
                spec, attempt = queue.pop(0)
                launch(spec, attempt)

            ready = connection_wait(
                [flight.conn for flight in in_flight],
                timeout=_POLL_INTERVAL_S,
            )
            now = time.perf_counter()
            finished: List[_InFlight] = []
            for flight in in_flight:
                if flight.conn in ready:
                    try:
                        result = flight.conn.recv()
                    except EOFError:
                        # Hard worker death: the child vanished (SIGKILL,
                        # OOM, segfault) without sending a result. This
                        # is a crash, never a timeout -- timeouts are
                        # parent-initiated terminations handled below.
                        flight.process.join()
                        index = flight.spec.index
                        crash_counts[index] = crash_counts.get(index, 0) + 1
                        if on_crash is not None:
                            on_crash(flight.spec, flight.attempt)
                        exitcode = flight.process.exitcode
                        cause = (
                            f"killed by signal {-exitcode}"
                            if exitcode is not None and exitcode < 0
                            else f"exit code {exitcode}"
                        )
                        result = _failure(
                            flight.spec, "crashed",
                            "worker process died before reporting a result "
                            f"({cause}, attempt {flight.attempt}, "
                            f"crash {crash_counts[index]} for this shard)",
                        )
                    finished.append(flight)
                    flight.process.join()
                    flight.conn.close()
                    settle(flight, result)
                elif (timeout_s is not None
                      and now - flight.started > timeout_s):
                    flight.process.terminate()
                    flight.process.join()
                    flight.conn.close()
                    finished.append(flight)
                    settle(flight, _failure(
                        flight.spec, "timeout",
                        f"shard exceeded the {timeout_s:g}s run timeout "
                        f"(attempt {flight.attempt})",
                    ))
            for flight in finished:
                in_flight.remove(flight)
    finally:
        for flight in in_flight:  # interrupted: leave no orphans
            flight.process.terminate()
            flight.process.join()
            flight.conn.close()

    return [done[index] for index in sorted(done)]

"""The runnable-experiment API: one ``SubmitRequest -> JobResult`` path.

:func:`execute_job` is the single execution core behind every way of
running experiments: the library calls (:func:`run_experiment`,
:func:`run_grid`), the ``python -m repro run`` CLI, and the experiment
service (:mod:`repro.service`) all build a typed
:class:`~repro.service.schema.SubmitRequest` and hand it here. The core
sweeps the ``(experiment x seed x config-override)`` grid through the
fork process pool with the on-disk result cache in front: shards whose
content-hash key (config + code fingerprint) is already cached are
served without recompute, everything else fans out over ``jobs``
workers with per-run timeouts and bounded retries. Progress heartbeats
are published through a
:class:`~repro.engine.observability.Registry`; each shard actually
handed to the pool increments the ``runner.pool_spawns`` counter, which
is how the service proves a repeat submission was served entirely from
cache.

When a ``cache_dir`` is configured the core also keeps a write-ahead
job journal (:mod:`repro.runner.journal`) next to the cache: grid
identity, every shard handoff, and every terminal shard result are
fsync'd to disk *before* execution moves on, so a run killed at any
instant -- parent or worker -- can be resumed with
``execute_job(..., resume=True)`` / ``run_grid(resume=True)`` /
``repro run --resume``. Resume replays journaled shard results (the
only durable record of *failed* shards, which the cache never stores)
plus cache hits, runs only the remainder, and merges to a
``results.json`` byte-identical to an uninterrupted run at any
``jobs`` count.

:func:`run_experiment` executes one registered experiment inline and
returns its :class:`~repro.runner.results.RunResult`; :func:`run_grid`
returns the merged :class:`~repro.runner.results.GridResult`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.observability import Registry
from repro.errors import RegistryError
from repro.reporting.experiments import EXPERIMENTS, Experiment
from repro.runner.cache import ResultCache, cache_key
from repro.runner.journal import (
    JOURNAL_SCHEMA,
    JournalWriter,
    journal_path,
    replay_grid,
)
from repro.runner.pool import ShardSpec, run_shards
from repro.runner.results import GridResult, RunResult

#: Default per-shard wall-clock budget for pooled sweeps.
DEFAULT_TIMEOUT_S = 600.0

#: Process-wide origin for gauge sample times: gauges require
#: time-ordered samples, and a registry may outlive one job (the
#: service shares one registry across every job it runs).
_GAUGE_EPOCH = time.monotonic()


def runnable_experiments() -> List[str]:
    """Ids of experiments with a registered entrypoint, registry order."""
    return [e.experiment_id for e in EXPERIMENTS if e.runnable]


def resolve_experiments(tokens: Union[str, Iterable[str]]) -> List[Experiment]:
    """Resolve user-supplied experiment tokens to registry entries.

    Accepts a single token or an iterable; ``"all"`` expands to every
    runnable experiment. Ids are case-insensitive and de-duplicated
    while preserving registry order. Unknown or non-runnable ids raise
    a :class:`~repro.errors.RegistryError` listing the runnable set.
    """
    if isinstance(tokens, str):
        tokens = [tokens]
    tokens = [token.strip() for token in tokens if token.strip()]
    if not tokens:
        raise RegistryError(
            f"no experiments requested; runnable: {runnable_experiments()}"
        )
    by_id = {e.experiment_id.upper(): e for e in EXPERIMENTS}
    wanted: List[Experiment] = []
    for token in tokens:
        if token.lower() == "all":
            wanted.extend(e for e in EXPERIMENTS if e.runnable)
            continue
        experiment = by_id.get(token.upper())
        if experiment is None:
            raise RegistryError(
                f"unknown experiment: {token!r}; "
                f"runnable: {runnable_experiments()}"
            )
        if not experiment.runnable:
            raise RegistryError(
                f"experiment {experiment.experiment_id!r} has no entrypoint; "
                f"runnable: {runnable_experiments()}"
            )
        wanted.append(experiment)
    seen = set()
    ordered = []
    for experiment in wanted:
        if experiment.experiment_id not in seen:
            seen.add(experiment.experiment_id)
            ordered.append(experiment)
    return ordered


def _as_seeds(seeds: Union[int, Iterable[int]]) -> List[int]:
    """``3`` -> ``[0, 1, 2]``; an iterable passes through validated."""
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"need at least one seed, got {seeds}")
        return list(range(seeds))
    out = [int(s) for s in seeds]
    if not out:
        raise ValueError("need at least one seed")
    return out


def build_shards(
    experiments: Sequence[Experiment],
    seeds: List[int],
    overrides: Sequence[Dict[str, Any]],
    base_configs: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[ShardSpec]:
    """The deterministic grid order: experiment, then override, then seed.

    ``base_configs`` optionally supplies a per-experiment config layered
    *under* each override (used for ``--quick`` problem sizes).
    """
    shards: List[ShardSpec] = []
    for experiment in experiments:
        base = dict((base_configs or {}).get(experiment.experiment_id, {}))
        for override in overrides:
            config = {**base, **override}
            for seed in seeds:
                shards.append(ShardSpec(
                    index=len(shards),
                    experiment_id=experiment.experiment_id,
                    entrypoint=experiment.entrypoint,
                    seed=seed,
                    config=config,
                ))
    return shards


def execute_job(
    request: "Any",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    registry: Optional[Registry] = None,
    progress: Optional[Callable[[str], None]] = None,
    resume: bool = False,
) -> "Any":
    """Execute one :class:`~repro.service.schema.SubmitRequest` to its
    :class:`~repro.service.schema.JobResult`.

    This is the single execution path shared by the library API, the
    CLI and the experiment service. ``jobs`` and ``cache_dir`` are
    *environment*, not job identity: they change how fast a grid runs
    and where shard results persist, never what the canonical results
    document contains. ``registry`` receives heartbeat metrics
    (``runner.*`` counters, an in-flight gauge, a per-run wall-time
    histogram, and the ``runner.pool_spawns`` shard-execution counter);
    ``progress`` receives human-readable one-liners.

    With ``cache_dir`` set (and the request not opting out of the cache
    via ``use_cache=False`` -- "store nothing" covers the journal too),
    a write-ahead journal of the grid is kept at
    :func:`~repro.runner.journal.journal_path`; ``resume=True`` replays
    it (validating it belongs to this exact grid) so shards already
    journaled as done are never re-executed. ``resume`` requires the
    cache -- the journal lives next to it.
    """
    from repro.runner.entrypoints import QUICK_CONFIGS
    from repro.service.schema import JobResult

    spec = request.job.canonical()
    resolved = resolve_experiments(list(spec.experiments))
    seed_list = list(spec.seeds)
    override_list = [dict(o) for o in spec.overrides]
    registry = registry if registry is not None else Registry()
    cache = (
        ResultCache(cache_dir, registry=registry)
        if cache_dir is not None and request.use_cache else None
    )
    if resume and cache is None:
        raise ValueError(
            "resume=True requires a cache_dir (with use_cache enabled): "
            "the job journal is kept next to the result cache"
        )

    shards = build_shards(
        resolved, seed_list, override_list,
        base_configs=QUICK_CONFIGS if spec.quick else None,
    )
    total = len(shards)
    by_experiment = {e.experiment_id: e for e in resolved}
    job_id = spec.job_id()

    results: Dict[int, RunResult] = {}
    journal: Optional[JournalWriter] = None
    if cache is not None:
        target = journal_path(cache_dir, job_id)
        if resume:
            results.update(replay_grid(target, job_id, total))
            registry.counter("runner.journal_replays").inc(len(results))
        journal = JournalWriter(target, mode="a" if resume else "w")
        journal.append(
            "grid-start", schema=JOURNAL_SCHEMA, job_id=job_id,
            total=total, spec=spec.to_dict(),
        )
    replayed = len(results)
    if progress is not None and replayed:
        progress(f"journal: {replayed}/{total} shards replayed")

    keys: Dict[int, str] = {}
    to_run: List[ShardSpec] = []
    for shard in shards:
        if cache is not None:
            key = cache_key(
                by_experiment[shard.experiment_id], shard.seed, shard.config
            )
            keys[shard.index] = key
            if shard.index in results:
                continue
            cached = cache.get(key)
            if cached is not None:
                results[shard.index] = cached
                registry.counter("runner.cache_hits").inc()
                continue
        elif shard.index in results:
            continue
        to_run.append(shard)

    done_count = len(results)
    if progress is not None and done_count > replayed:
        progress(
            f"cache: {done_count - replayed}/{total} shards replayed"
        )

    in_flight = 0
    gauge = registry.gauge("runner.in_flight")
    gauge.set(time.monotonic() - _GAUGE_EPOCH, 0)
    # Stats report per-job deltas: the registry may be shared across
    # jobs (the service keeps one for its whole lifetime).
    spawns_before = registry.counter("runner.pool_spawns").value
    retries_before = registry.counter("runner.retries").value
    crashes_before = registry.counter("runner.worker_crashes").value

    def on_start(spec_: ShardSpec, attempt: int) -> None:
        nonlocal in_flight
        registry.counter("runner.pool_spawns").inc()
        if journal is not None:
            journal.append(
                "shard-start", index=spec_.index,
                experiment=spec_.experiment_id, seed=spec_.seed,
                attempt=attempt,
            )
        if attempt > 1:
            registry.counter("runner.retries").inc()
            if progress is not None:
                progress(
                    f"retry {spec_.experiment_id} seed {spec_.seed} "
                    f"(attempt {attempt})"
                )
        in_flight += 1
        gauge.set(time.monotonic() - _GAUGE_EPOCH, in_flight)

    def on_complete(spec_: ShardSpec, result: RunResult) -> None:
        nonlocal in_flight, done_count
        in_flight -= 1
        done_count += 1
        gauge.set(time.monotonic() - _GAUGE_EPOCH, in_flight)
        registry.counter("runner.completed").inc()
        if result.status == "error":
            registry.counter("runner.errors").inc()
        elif result.status == "timeout":
            registry.counter("runner.timeouts").inc()
        elif result.status == "crashed":
            registry.counter("runner.quarantined").inc()
        registry.histogram("runner.run_wall_s").observe(result.wall_s)
        if journal is not None:
            journal.append(
                "shard-done", index=spec_.index, result=result.to_dict()
            )
        if progress is not None:
            progress(
                f"[{done_count}/{total}] {spec_.experiment_id} "
                f"seed {spec_.seed}: {result.status} "
                f"({result.wall_s:.2f}s, attempt {result.attempts})"
            )

    def on_crash(spec_: ShardSpec, attempt: int) -> None:
        registry.counter("runner.worker_crashes").inc()
        if progress is not None:
            progress(
                f"worker crash: {spec_.experiment_id} seed {spec_.seed} "
                f"(attempt {attempt}); respawning"
            )

    fresh = run_shards(
        to_run,
        jobs=jobs,
        timeout_s=spec.timeout_s,
        retries=spec.retries,
        on_complete=on_complete,
        on_start=on_start,
        on_crash=on_crash,
    )
    # run_shards returns grid order, matching to_run's ascending indexes.
    for shard, result in zip(sorted(to_run, key=lambda s: s.index), fresh):
        results[shard.index] = result
        if cache is not None and result.ok:
            cache.put(keys[shard.index], result)

    merged = [results[index] for index in sorted(results)]
    grid = GridResult(results=merged, stats={
        "scheduled": total,
        "recomputed": len(fresh),
        "cache_hits": cache.hits if cache is not None else 0,
        "journal_replayed": replayed,
        "pool_spawns": int(
            registry.counter("runner.pool_spawns").value - spawns_before
        ),
        "errors": sum(1 for r in merged if r.status == "error"),
        "timeouts": sum(1 for r in merged if r.status == "timeout"),
        "crashed": sum(1 for r in merged if r.status == "crashed"),
        "worker_crashes": int(
            registry.counter("runner.worker_crashes").value - crashes_before
        ),
        "retries": int(
            registry.counter("runner.retries").value - retries_before
        ),
    })
    if journal is not None:
        journal.append("grid-done", job_id=job_id, n_ok=grid.n_ok)
        journal.close()
    job_result = JobResult(
        job_id=job_id,
        status="ok" if grid.all_ok else "failed",
        document=grid.to_dict(),
        stats=dict(grid.stats),
    )
    # Runtime-only: the live GridResult, so library wrappers don't pay
    # a serialize/deserialize round trip.
    job_result.grid_live = grid
    return job_result


def _build_request(
    experiments: Union[str, Iterable[str]],
    seeds: Union[int, Iterable[int]],
    overrides: Optional[Sequence[Dict[str, Any]]],
    quick: bool,
    timeout_s: Optional[float],
    retries: int,
    use_cache: bool,
    client_id: str,
) -> "Any":
    """Assemble the typed request the execution core consumes."""
    from repro.service.schema import JobSpec, SubmitRequest

    resolved = resolve_experiments(experiments)
    spec = JobSpec(
        experiments=tuple(e.experiment_id for e in resolved),
        seeds=tuple(_as_seeds(seeds)),
        overrides=tuple(dict(o) for o in overrides) if overrides else ({},),
        quick=quick,
        timeout_s=timeout_s,
        retries=retries,
    )
    return SubmitRequest(job=spec, client_id=client_id, use_cache=use_cache)


def run_experiment(
    experiment_id: str,
    seed: int = 0,
    config: Optional[Dict[str, Any]] = None,
) -> RunResult:
    """Run one experiment inline and return its result.

    A single-shard job through the shared ``SubmitRequest -> JobResult``
    path: executes in the calling process with no cache, no timeout and
    no retries. Failures are captured in the result record
    (``result.status``/``result.error``), never raised.
    """
    request = _build_request(
        experiment_id, [seed], [dict(config)] if config else None,
        quick=False, timeout_s=None, retries=0,
        use_cache=False, client_id="library",
    )
    job = execute_job(request, jobs=1)
    return job.grid_live.results[0]


def run_grid(
    experiments: Union[str, Iterable[str]] = "all",
    seeds: Union[int, Iterable[int]] = 1,
    overrides: Optional[Sequence[Dict[str, Any]]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    retries: int = 1,
    registry: Optional[Registry] = None,
    progress: Optional[Callable[[str], None]] = None,
    quick: bool = False,
    resume: bool = False,
) -> GridResult:
    """Sweep experiments x seeds x config-overrides; return merged results.

    ``seeds`` is a count (``K`` -> seeds ``0..K-1``) or an explicit
    list. ``overrides`` is a sequence of config dicts, each crossed
    with every experiment and seed (default: one empty override).
    With ``cache_dir`` set and ``use_cache`` true, shards whose key is
    cached are replayed without recompute and fresh ``ok`` results are
    stored back. ``quick`` layers each experiment's reduced smoke-test
    problem size (:data:`~repro.runner.entrypoints.QUICK_CONFIGS`)
    under the overrides.

    ``resume=True`` (requires ``cache_dir``) replays this grid's
    write-ahead journal before consulting the cache, so a sweep killed
    mid-run -- parent or worker -- continues from its last fsync'd
    record and merges to the same canonical document an uninterrupted
    run produces.

    A thin wrapper over :func:`execute_job` -- the same typed-request
    path the service and CLI use -- returning the live
    :class:`~repro.runner.results.GridResult`.
    """
    request = _build_request(
        experiments, seeds, overrides,
        quick=quick, timeout_s=timeout_s, retries=retries,
        use_cache=use_cache, client_id="library",
    )
    job = execute_job(
        request, jobs=jobs, cache_dir=cache_dir,
        registry=registry, progress=progress, resume=resume,
    )
    return job.grid_live

"""Parallel experiment runner with result caching.

Turns the experiment registry into an execution API: every E-series
exhibit has a registered ``entrypoint(config, seed) -> RunResult``, and
this package fans ``(experiment x seed x config-override)`` grids out
over a process pool with deterministic per-shard seeding, an on-disk
content-hash result cache, per-run timeouts, bounded retries, and
progress heartbeats through the engine's metrics registry.

The package is crash-safe end to end: a write-ahead job journal
(:mod:`repro.runner.journal`) records every grid transition with
fsync'd, checksummed records, hard worker death is contained and
quarantined by the pool instead of poisoning the sweep, and
``run_grid(resume=True)`` / ``repro run --resume`` continue a killed
run to the byte-identical canonical results document.

Headline entry points:

- :func:`run_experiment` -- one experiment, inline, no cache.
- :func:`run_grid` -- the full sweep, parallel, cached and resumable.
- :func:`execute_job` -- the shared ``SubmitRequest -> JobResult``
  core the two above, the CLI and the experiment service all route
  through.
- ``python -m repro run <ids|all>`` -- the same from the CLI.
"""

from repro.runner.api import (
    DEFAULT_TIMEOUT_S,
    build_shards,
    execute_job,
    resolve_experiments,
    run_experiment,
    run_grid,
    runnable_experiments,
)
from repro.runner.cache import ResultCache, cache_key, code_fingerprint
from repro.runner.entrypoints import QUICK_CONFIGS
from repro.runner.journal import (
    JOURNAL_SCHEMA,
    JournalReplay,
    JournalWriter,
    journal_path,
    read_journal,
    replay_grid,
)
from repro.runner.pool import (
    ShardSpec,
    execute_shard,
    resolve_entrypoint,
    run_shards,
)
from repro.runner.results import GridResult, RunResult

__all__ = [
    "DEFAULT_TIMEOUT_S",
    "GridResult",
    "JOURNAL_SCHEMA",
    "JournalReplay",
    "JournalWriter",
    "QUICK_CONFIGS",
    "ResultCache",
    "RunResult",
    "ShardSpec",
    "build_shards",
    "cache_key",
    "code_fingerprint",
    "execute_job",
    "execute_shard",
    "journal_path",
    "read_journal",
    "replay_grid",
    "resolve_entrypoint",
    "resolve_experiments",
    "run_experiment",
    "run_grid",
    "run_shards",
    "runnable_experiments",
]

"""Runnable entry points for the E-series experiments.

Each ``run_eN(config, seed)`` wraps the computation that used to live
only inside ``benchmarks/test_bench_*.py`` and returns a
:class:`~repro.runner.results.RunResult` whose ``metrics`` carry the
exhibit's headline numbers. The benchmark files are now thin asserts
over these metrics, and the same functions back ``python -m repro run``.

Conventions:

- ``config`` holds *overrides*; each entrypoint merges them over its
  defaults (the benchmark suite's historical problem sizes) and records
  the merged, effective config in the result.
- ``seed`` is the grid seed. Entrypoints add it to their legacy base
  seed, so seed 0 reproduces the benchmark numbers bit for bit and
  different experiments at the same grid seed stay decorrelated.
  Purely analytic exhibits ignore the seed (and say so here).
- Everything imports lazily inside the function body, keeping
  ``import repro.runner`` cheap and cycle-free.

``QUICK_CONFIGS`` maps each experiment to a reduced problem size for
smoke tests and ``python -m repro run --quick``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.runner.results import RunResult

#: Per-experiment reduced problem sizes for smoke runs.
QUICK_CONFIGS: Dict[str, Dict[str, Any]] = {
    "E1": {},
    "E2": {"n_requests": 800, "sla_requests": 400},
    "E3": {},
    "E4": {},
    "E5": {},
    "E6": {},
    "E7": {},
    "E8": {"n_demands": 600},
    "E9": {},
    "E10": {},
    "E11": {"n_docs": 600},
    "E12": {"scale": 4},
    "E13": {},
    "E14": {"n_events": 20_000},
    "E15": {},
    "E16": {},
    "X12": {"n_requests": 600, "n_reads": 400, "n_jobs": 10},
    "X14": {"k": 8, "n_requests": 8_000, "duration_s": 2e-3, "shards": 2},
    "X15": {"n_requests": 3_000},
    "X16": {"inner_seeds": 2, "probe_sleep_s": 0.1, "service_sleep_s": 1.0},
    "X17": {"search_horizon_s": 0.8, "memory_horizon_s": 1.0},
}


def _merge(defaults: Dict[str, Any], config: Mapping[str, Any]) -> Dict[str, Any]:
    """Overrides over defaults; unknown keys are kept (and recorded)."""
    merged = dict(defaults)
    merged.update(config)
    return merged


def _result(
    experiment_id: str,
    seed: int,
    config: Dict[str, Any],
    metrics: Dict[str, Any],
) -> RunResult:
    """Assemble the ``ok`` result for one entrypoint."""
    return RunResult(
        experiment_id=experiment_id,
        seed=seed,
        config=config,
        metrics=metrics,
    )


def run_e1(config: Mapping[str, Any], seed: int) -> RunResult:
    """E1: survey headline counts, sector mix and the four Key Findings."""
    from repro.survey import (
        generate_corpus,
        headline_counts,
        key_findings,
        sector_mix,
    )

    cfg = _merge({"n_interviews": 89, "n_companies": 70}, config)
    corpus = generate_corpus(
        n_interviews=cfg["n_interviews"],
        n_companies=cfg["n_companies"],
        seed=619_788 + seed,
    )
    counts = headline_counts(corpus)
    metrics: Dict[str, Any] = {
        "n_interviews": counts["n_interviews"],
        "n_companies": counts["n_companies"],
    }
    for sector, n in sorted(sector_mix(corpus).items()):
        metrics[f"sector_mix.{sector}"] = n
    findings = key_findings(corpus)
    metrics["findings_hold"] = all(f.holds for f in findings)
    for finding in findings:
        metrics[f"finding{finding.finding_id}.holds"] = finding.holds
        for stat, value in sorted(finding.statistics.items()):
            metrics[f"finding{finding.finding_id}.{stat}"] = value
    return _result("E1", seed, cfg, metrics)


def run_e2(config: Mapping[str, Any], seed: int) -> RunResult:
    """E2: Catapult tail-latency reduction and iso-SLA throughput gain."""
    from repro.workloads import max_qps_within_sla, tail_latency_reduction

    cfg = _merge(
        {
            "qps": 2_000.0,
            "n_requests": 12_000,
            "sla_s": 0.012,
            "sla_requests": 4_000,
        },
        config,
    )
    run_seed = 2016 + seed
    point = tail_latency_reduction(
        cfg["qps"], n_requests=cfg["n_requests"], seed=run_seed
    )
    base_qps = max_qps_within_sla(
        cfg["sla_s"], accelerated=False, n_requests=cfg["sla_requests"],
        seed=run_seed, qps_hi=20_000,
    )
    accel_qps = max_qps_within_sla(
        cfg["sla_s"], accelerated=True, n_requests=cfg["sla_requests"],
        seed=run_seed, qps_hi=20_000,
    )
    metrics = {
        "p50_cpu_s": point["p50_cpu_s"],
        "p50_fpga_s": point["p50_fpga_s"],
        "p99_cpu_s": point["p99_cpu_s"],
        "p99_fpga_s": point["p99_fpga_s"],
        "tail_reduction": point["tail_reduction"],
        "iso_sla_qps_cpu": base_qps,
        "iso_sla_qps_fpga": accel_qps,
        "iso_sla_gain": accel_qps / base_qps,
    }
    return _result("E2", seed, cfg, metrics)


def run_e3(config: Mapping[str, Any], seed: int) -> RunResult:
    """E3: per-block accelerator speedups vs CPU (analytic; seed unused)."""
    from repro.analytics import default_blocks
    from repro.node import arria10_fpga, inference_asic, nvidia_k80, xeon_e5

    cfg = _merge({"batch": 50_000_000}, config)
    batch = cfg["batch"]
    registry = default_blocks()
    cpu = xeon_e5()
    devices = [nvidia_k80(), arria10_fpga(), inference_asic()]
    metrics: Dict[str, Any] = {}
    for name in registry.names():
        block = registry.get(name)
        cpu_rate = block.throughput_records_per_s(cpu, batch)
        best = 1.0
        for device in devices:
            if block.runs_on(device):
                gain = block.throughput_records_per_s(device, batch) / cpu_rate
                metrics[f"gain.{name}.{device.name}"] = gain
                best = max(best, gain)
        metrics[f"best_gain.{name}"] = best
    fpga = arria10_fpga()
    for name in ("regex-extract", "dnn-inference", "compression"):
        block = registry.get(name)
        cpu_energy = block.time_s(cpu, batch) * cpu.tdp_w
        fpga_energy = block.time_s(fpga, batch) * fpga.tdp_w
        metrics[f"energy_gain.{name}"] = cpu_energy / fpga_energy
    return _result("E3", seed, cfg, metrics)


def run_e4(config: Mapping[str, Any], seed: int) -> RunResult:
    """E4: GPGPU NPV vs utilization and breakevens (analytic)."""
    from dataclasses import replace

    from repro.econ import (
        AcceleratorInvestment,
        breakeven_speedup,
        breakeven_utilization,
    )
    from repro.mc import npv_utilization_sweep

    cfg = _merge(
        {
            "hardware_usd": 50_000.0,
            "port_effort_person_months": 9.0,
            "speedup": 4.0,
            "baseline_compute_value_usd_per_year": 250_000.0,
            "accelerator_power_w": 2_400.0,
            "horizon_years": 3,
        },
        config,
    )
    investment = AcceleratorInvestment(
        hardware_usd=cfg["hardware_usd"],
        port_effort_person_months=cfg["port_effort_person_months"],
        speedup=cfg["speedup"],
        baseline_compute_value_usd_per_year=(
            cfg["baseline_compute_value_usd_per_year"]
        ),
        accelerator_power_w=cfg["accelerator_power_w"],
        utilization=0.5,
        horizon_years=cfg["horizon_years"],
    )
    metrics: Dict[str, Any] = {}
    utilizations = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9)
    # One batch NPV call; bit-for-bit equal to the scalar per-point
    # sweep, so cached results.json is unchanged.
    for utilization, value in zip(
        utilizations, npv_utilization_sweep(investment, utilizations)
    ):
        metrics[f"npv_usd.{utilization:g}"] = float(value)
    breakeven = breakeven_utilization(investment)
    metrics["breakeven_utilization"] = breakeven
    for utilization in (0.15, 0.3, 0.6):
        k_star = breakeven_speedup(replace(investment, utilization=utilization))
        metrics[f"breakeven_speedup.{utilization:g}"] = (
            k_star if k_star is not None else None
        )
    return _result("E4", seed, cfg, metrics)


def run_e5(config: Mapping[str, Any], seed: int) -> RunResult:
    """E5: SoC-vs-SiP unit cost, crossover volume, upgrade cost (analytic)."""
    from repro.econ import PROCESS_CATALOG, euroserver_reference_design
    from repro.mc import cost_per_unit_curve

    cfg = _merge({"advanced_node": "16nm", "mature_node": "28nm"}, config)
    design = euroserver_reference_design(
        PROCESS_CATALOG[cfg["advanced_node"]],
        PROCESS_CATALOG[cfg["mature_node"]],
    )
    metrics: Dict[str, Any] = {}
    volumes = (1e4, 1e5, 1e6, 1e7, 1e8)
    # One vectorized sweep (unit costs and NRE aggregated once);
    # bit-for-bit equal to per-volume cost_per_unit_at_volume calls.
    soc_curve, sip_curve = cost_per_unit_curve(design, volumes)
    for volume, soc, sip in zip(volumes, soc_curve, sip_curve):
        metrics[f"usd_per_unit.soc.{volume:.0e}"] = float(soc)
        metrics[f"usd_per_unit.sip.{volume:.0e}"] = float(sip)
    metrics["crossover_volume"] = design.crossover_volume()
    upgrade = design.interface_upgrade_cost_usd("network-io")
    metrics["upgrade_usd.soc"] = upgrade["soc"]
    metrics["upgrade_usd.sip"] = upgrade["sip"]
    return _result("E5", seed, cfg, metrics)


def run_e6(config: Mapping[str, Any], seed: int) -> RunResult:
    """E6: branded / white-box / bare-metal fleet TCO sweep (analytic)."""
    from repro.network import (
        bare_metal_switch,
        branded_switch,
        fleet_tco_usd,
        white_box_switch,
    )

    cfg = _merge({"fleets": [50, 200, 1_000, 5_000, 20_000]}, config)
    models = {
        "branded": branded_switch(),
        "white-box": white_box_switch(),
        "bare-metal": bare_metal_switch(),
    }
    metrics: Dict[str, Any] = {}
    for fleet in cfg["fleets"]:
        per_switch = {
            name: fleet_tco_usd(model, fleet) / fleet
            for name, model in models.items()
        }
        for name, usd in per_switch.items():
            metrics[f"tco_usd_per_switch.{fleet}.{name}"] = usd
        metrics[f"winner.{fleet}"] = min(per_switch, key=per_switch.get)
    return _result("E6", seed, cfg, metrics)


def run_e7(config: Mapping[str, Any], seed: int) -> RunResult:
    """E7: SDN vs legacy policy rollout across fabric sizes (analytic)."""
    from repro.network import LegacyManagement, SdnController, fat_tree, leaf_spine

    cfg = _merge({"n_rules": 10}, config)
    fabrics = {
        "small": leaf_spine(4, 8, 4),
        "medium": fat_tree(8),
        "large": fat_tree(10),
    }
    legacy = LegacyManagement()
    metrics: Dict[str, Any] = {}
    for label, fabric in fabrics.items():
        controller = SdnController(fabric)
        n_switches = len(fabric.switches)
        sdn_s = controller.policy_rollout_s(cfg["n_rules"])
        legacy_s = legacy.policy_rollout_s(n_switches)
        metrics[f"switches.{label}"] = n_switches
        metrics[f"sdn_rollout_s.{label}"] = sdn_s
        metrics[f"legacy_rollout_s.{label}"] = legacy_s
        metrics[f"speedup.{label}"] = legacy_s / sdn_s
    return _result("E7", seed, cfg, metrics)


def run_e8(config: Mapping[str, Any], seed: int) -> RunResult:
    """E8: converged-vs-composable stranding and refresh cost."""
    from repro.cluster import (
        ResourceVector,
        skewed_demand_stream,
        stranding_experiment,
        upgrade_cost_comparison,
    )
    from repro.engine import RandomStream

    cfg = _merge(
        {"n_demands": 3_000, "n_servers": 24, "n_refresh_servers": 1_000},
        config,
    )
    rng = RandomStream(20_160_318 + seed)
    demands = skewed_demand_stream(cfg["n_demands"], rng)
    stranding = stranding_experiment(
        demands,
        n_servers=cfg["n_servers"],
        server_capacity=ResourceVector(32, 256, 4.0),
    )
    metrics: Dict[str, Any] = {}
    for arch in ("converged", "composable"):
        stats = stranding[arch]
        metrics[f"placed.{arch}"] = int(stats["placed"])
        metrics[f"core_util.{arch}"] = stats["cores"]
        metrics[f"mem_util.{arch}"] = stats["memory_gb"]
        metrics[f"storage_util.{arch}"] = stats["storage_tb"]
    metrics["placement_advantage"] = (
        metrics["placed.composable"] / metrics["placed.converged"]
    )
    for dim in ("cores", "memory_gb", "storage_tb"):
        comparison = upgrade_cost_comparison(cfg["n_refresh_servers"], dim)
        metrics[f"refresh_usd.converged.{dim}"] = comparison["converged_usd"]
        metrics[f"refresh_usd.composable.{dim}"] = comparison["composable_usd"]
        metrics[f"refresh_savings.{dim}"] = comparison["savings_fraction"]
    return _result("E8", seed, cfg, metrics)


def run_e9(config: Mapping[str, Any], seed: int) -> RunResult:
    """E9: Ethernet generation roadmap and 400GbE forecast (analytic)."""
    from repro.core import commodity_year_forecast
    from repro.core.technology import get_technology
    from repro.network import commodity_generation, generations_by_year

    cfg = _merge({"funded_multiplier": 1.8}, config)
    metrics: Dict[str, Any] = {}
    for generation in generations_by_year():
        metrics[f"standard_year.{generation.name}"] = generation.standard_year
        metrics[f"volume_year.{generation.name}"] = generation.volume_year
        metrics[f"usd_per_gbps.{generation.name}"] = generation.usd_per_gbps
        metrics[f"gbps_per_w.{generation.name}"] = generation.gbps_per_w
        metrics[f"photonic.{generation.name}"] = generation.photonic
    tech = get_technology("400gbe")
    metrics["forecast_400gbe.unfunded"] = commodity_year_forecast(
        tech.trl_2016, 1.0
    )
    metrics["forecast_400gbe.funded"] = commodity_year_forecast(
        tech.trl_2016, cfg["funded_multiplier"]
    )
    metrics["commodity_2016"] = commodity_generation(2016).name
    return _result("E9", seed, cfg, metrics)


def run_e10(config: Mapping[str, Any], seed: int) -> RunResult:
    """E10: FIFO / greedy-EFT / HEFT makespans on a mixed pool (analytic)."""
    from repro.node import arria10_fpga, nvidia_k80, xeon_e5
    from repro.scheduler import Executor, HeterogeneousScheduler, fork_join_job

    cfg = _merge({"width": 10, "work": 8_000_000}, config)
    scheduler = HeterogeneousScheduler([
        Executor("cpu0", "hostA", xeon_e5()),
        Executor("cpu1", "hostB", xeon_e5()),
        Executor("gpu0", "hostA", nvidia_k80()),
        Executor("fpga0", "hostB", arria10_fpga()),
    ])
    job = fork_join_job(
        "analytics", cfg["width"], "dense-gemm", "hash-aggregate", cfg["work"]
    )
    metrics = {
        "makespan_s.fifo": scheduler.fifo(job).makespan_s,
        "makespan_s.greedy_eft": scheduler.greedy_eft(job).makespan_s,
        "makespan_s.heft": scheduler.heft(job).makespan_s,
    }
    metrics["heft_speedup"] = (
        metrics["makespan_s.fifo"] / metrics["makespan_s.heft"]
    )
    return _result("E10", seed, cfg, metrics)


def run_e11(config: Mapping[str, Any], seed: int) -> RunResult:
    """E11: cpu-only vs greedy-offload dataflow pipeline end to end."""
    from repro.cluster import uniform_cluster
    from repro.frameworks import (
        BatchExecutor,
        PartitionedDataset,
        Plan,
        cpu_only,
        greedy_time,
    )
    from repro.network import leaf_spine
    from repro.node import accelerated_server, arria10_fpga, xeon_e5
    from repro.workloads import zipf_documents

    cfg = _merge({"n_docs": 4_000, "n_partitions": 8}, config)
    cluster = uniform_cluster(
        leaf_spine(2, 2, 2),
        lambda: accelerated_server(xeon_e5(), arria10_fpga()),
    )
    docs = zipf_documents(cfg["n_docs"], 40, seed=3 + seed)
    dataset = PartitionedDataset.from_records(
        docs, cfg["n_partitions"], record_bytes=240
    )
    plan = (
        Plan.source()
        .map(lambda s: s, block="regex-extract", label="extract")
        .filter(lambda s: "data" in s, block="filter-scan", label="select")
        .map(lambda s: (s.split()[0], 1), block="filter-scan", label="pair")
        .reduce_by_key(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]),
                       label="aggregate")
    )
    base = BatchExecutor(cluster, policy=cpu_only()).run(plan, dataset)
    offloaded = BatchExecutor(cluster, policy=greedy_time()).run(plan, dataset)
    metrics = {
        "sim_time_s.cpu_only": base.sim_time_s,
        "sim_time_s.greedy_time": offloaded.sim_time_s,
        "energy_j.cpu_only": base.energy_j,
        "energy_j.greedy_time": offloaded.energy_j,
        "gain": base.sim_time_s / offloaded.sim_time_s,
        "records_match": sorted(offloaded.records) == sorted(base.records),
        "n_output_records": len(offloaded.records),
    }
    return _result("E11", seed, cfg, metrics)


def run_e12(config: Mapping[str, Any], seed: int) -> RunResult:
    """E12: the R9 suite across four architectures (analytic)."""
    from repro.cluster import uniform_cluster
    from repro.frameworks import cpu_only, greedy_energy, greedy_time
    from repro.network import leaf_spine
    from repro.node import (
        accelerated_server,
        arria10_fpga,
        commodity_server,
        nvidia_k80,
        xeon_e5,
    )
    from repro.workloads import compare_architectures

    cfg = _merge({"scale": 20}, config)
    fabric = lambda: leaf_spine(2, 2, 2)  # noqa: E731 - tiny local factory
    configurations = {
        "cpu": (
            uniform_cluster(fabric(), lambda: commodity_server(xeon_e5())),
            cpu_only(),
        ),
        "cpu+gpu": (
            uniform_cluster(
                fabric(), lambda: accelerated_server(xeon_e5(), nvidia_k80())
            ),
            greedy_time(),
        ),
        "cpu+fpga": (
            uniform_cluster(
                fabric(), lambda: accelerated_server(xeon_e5(), arria10_fpga())
            ),
            greedy_time(),
        ),
        "cpu+fpga-energy": (
            uniform_cluster(
                fabric(), lambda: accelerated_server(xeon_e5(), arria10_fpga())
            ),
            greedy_energy(),
        ),
    }
    results = compare_architectures(configurations, cfg["scale"])
    metrics: Dict[str, Any] = {}
    outputs_agree = True
    for arch, scores in results.items():
        for score in scores:
            metrics[f"sim_time_s.{arch}.{score.benchmark}"] = score.sim_time_s
            metrics[f"energy_j.{arch}.{score.benchmark}"] = score.energy_j
    for score in results["cpu"]:
        counts = {
            arch: next(
                s for s in results[arch] if s.benchmark == score.benchmark
            ).n_output_records
            for arch in results
        }
        if len(set(counts.values())) != 1:
            outputs_agree = False
    metrics["outputs_agree"] = outputs_agree
    return _result("E12", seed, cfg, metrics)


def run_e13(config: Mapping[str, Any], seed: int) -> RunResult:
    """E13: 2016 market concentration and lock-in economics (analytic)."""
    from repro.ecosystem import MARKETS_2016, concentration_report, lock_in_premium

    cfg = _merge({"annual_license_usd": 250_000.0}, config)
    metrics: Dict[str, Any] = {}
    for row in concentration_report():
        market = row["market"]
        metrics[f"leader.{market}"] = row["leader"]
        metrics[f"leader_share.{market}"] = row["leader_share"]
        metrics[f"hhi.{market}"] = row["hhi"]
    market = MARKETS_2016["gpgpu-top500"]
    for kloc in (50.0, 200.0, 1_000.0):
        premium = lock_in_premium(
            market, kloc, annual_license_usd=cfg["annual_license_usd"]
        )
        metrics[f"years_protected.{kloc:g}kloc"] = premium["years_protected"]
    return _result("E13", seed, cfg, metrics)


def run_e14(config: Mapping[str, Any], seed: int) -> RunResult:
    """E14: science-stream trigger rates across devices."""
    from repro.node import arria10_fpga, nvidia_k80, xeon_e5
    from repro.workloads import convergence_comparison

    cfg = _merge({"n_events": 500_000}, config)
    comparison = convergence_comparison(
        [xeon_e5(), nvidia_k80(), arria10_fpga()], cfg["n_events"]
    )
    cpu_rate = comparison["xeon-e5"].sustainable_rate_hz
    metrics: Dict[str, Any] = {}
    for name, report in sorted(comparison.items()):
        metrics[f"rate_hz.{name}"] = report.sustainable_rate_hz
        metrics[f"vs_cpu.{name}"] = report.sustainable_rate_hz / cpu_rate
    metrics["triggered_agree"] = (
        len({r.n_triggered for r in comparison.values()}) == 1
    )
    metrics["n_triggered"] = comparison["xeon-e5"].n_triggered
    return _result("E14", seed, cfg, metrics)


def run_e15(config: Mapping[str, Any], seed: int) -> RunResult:
    """E15: programming-model coverage and porting economics (analytic)."""
    from repro.node import (
        AbstractionMatrix,
        PortingStrategy,
        ProgrammingModel,
        achievable_throughput_fraction,
        default_registry,
        port_effort_person_months,
    )

    cfg = _merge({"n_kernels": 10}, config)
    devices = list(default_registry())
    matrix = AbstractionMatrix(devices)
    metrics: Dict[str, Any] = {"n_devices": len(devices)}
    for model in ProgrammingModel:
        per_device = matrix.coverage(model)
        metrics[f"devices_reached.{model.value}"] = sum(
            1 for v in per_device.values() if v > 0
        )
        metrics[f"mean_efficiency.{model.value}"] = (
            sum(per_device.values()) / len(per_device)
        )
    best_model, reached, _ = matrix.best_universal_model()
    metrics["best_universal_model"] = best_model.value
    metrics["best_universal_reached"] = reached
    metrics["fragmentation_index"] = matrix.fragmentation_index()
    for name in ("cpu_only", "portable_kernel", "native_everywhere"):
        strategy = PortingStrategy(name)
        metrics[f"port_effort_pm.{name}"] = port_effort_person_months(
            strategy, cfg["n_kernels"], devices
        )
        metrics[f"mean_throughput_frac.{name}"] = sum(
            achievable_throughput_fraction(strategy, d) for d in devices
        ) / len(devices)
    return _result("E15", seed, cfg, metrics)


def run_e16(config: Mapping[str, Any], seed: int) -> RunResult:
    """E16: recommendation ranking and the funding portfolio."""
    from repro.core import (
        RECOMMENDATIONS,
        greedy_portfolio,
        optimize_portfolio,
        score_all,
    )
    from repro.survey import generate_corpus

    cfg = _merge({"budgets_meur": [50.0, 100.0, 200.0, 335.0]}, config)
    corpus = generate_corpus(seed=619_788 + seed)
    scored = score_all(corpus)
    metrics: Dict[str, Any] = {
        "n_recommendations": len(scored),
        "ranking": [s.recommendation.rec_id for s in scored],
    }
    for entry in scored:
        rec_id = entry.recommendation.rec_id
        metrics[f"evidence.R{rec_id}"] = entry.evidence_score
        metrics[f"strategic.R{rec_id}"] = entry.strategic_score
        metrics[f"urgency.R{rec_id}"] = entry.urgency_score
        metrics[f"priority.R{rec_id}"] = entry.priority
    for budget in cfg["budgets_meur"]:
        exact = optimize_portfolio(scored, budget)
        greedy = greedy_portfolio(scored, budget)
        metrics[f"knapsack_priority.{budget:g}"] = exact.total_priority
        metrics[f"greedy_priority.{budget:g}"] = greedy.total_priority
        metrics[f"funded.{budget:g}"] = list(exact.rec_ids)
    metrics["full_budget_funds_all"] = (
        len(optimize_portfolio(scored, cfg["budgets_meur"][-1]).selected)
        == len(RECOMMENDATIONS)
    )
    return _result("E16", seed, cfg, metrics)


def run_x12(config: Mapping[str, Any], seed: int) -> RunResult:
    """X12: workloads under injected faults, resilience policies on/off."""
    from repro.workloads import chaos_exhibit

    cfg = _merge(
        {"n_requests": 4_000, "n_reads": 2_500, "n_jobs": 24}, config
    )
    metrics = chaos_exhibit(
        n_requests=cfg["n_requests"],
        n_reads=cfg["n_reads"],
        n_jobs=cfg["n_jobs"],
        seed=seed,
    )
    return _result("X12", seed, cfg, metrics)


def run_x14(config: Mapping[str, Any], seed: int) -> RunResult:
    """X14: 10k-switch fabric transport, sharded conservative-time DES.

    The flagship scale exhibit: a k=90 fat-tree (10,125 switches,
    182,250 hosts) carrying a million-request transport workload under a
    fault schedule, simulated across ``shards`` worker processes by
    :func:`repro.workloads.fabricsim.simulate_fabric_sharded`. With
    ``shards=1`` the same workload runs on the true single-process
    engine, and the merged trace is bit-for-bit identical either way --
    set ``trace_out`` to write the canonical trace for a byte-level
    comparison (the CI equivalence step).
    """
    from pathlib import Path

    from repro.engine.faults import FaultSpec
    from repro.engine.sharded import canonical_trace_lines
    from repro.workloads.fabricsim import (
        FabricWorkload,
        simulate_fabric,
        simulate_fabric_sharded,
    )

    cfg = _merge(
        {
            "fabric": "fat-tree",
            "k": 90,
            "n_requests": 1_000_000,
            "duration_s": 4e-3,
            "shards": 4,
            "inline": False,
            "with_faults": True,
            "trace_out": "",
        },
        config,
    )
    duration = float(cfg["duration_s"])
    fault_specs = ()
    if cfg["with_faults"]:
        # Targets chosen to exist for every even k >= 4 (quick runs use
        # k=8), including links on the pod-aligned boundary cut so the
        # cross-shard invalidation path is always exercised.
        fault_specs = (
            FaultSpec(
                kind="link-flap",
                targets=(("agg0-0", "core0-0"), ("agg1-1", "core1-0")),
                mtbf_s=duration / 3.0,
                mttr_s=duration / 4.0,
                end_s=duration,
            ),
            FaultSpec(
                kind="switch-crash",
                targets=("agg2-0",),
                mtbf_s=duration / 2.0,
                mttr_s=duration / 3.0,
                end_s=duration,
            ),
        )
    workload = FabricWorkload(
        fabric=cfg["fabric"],
        k=cfg["k"],
        n_requests=cfg["n_requests"],
        duration_s=duration,
        seed=101_250 + seed,
        fault_specs=fault_specs,
    )
    shards = int(cfg["shards"])
    if shards == 1:
        run = simulate_fabric(workload)
    else:
        run = simulate_fabric_sharded(
            workload, shards, inline=bool(cfg["inline"])
        )
    if cfg["trace_out"]:
        out_path = Path(cfg["trace_out"])
        if out_path.parent != Path("."):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        with out_path.open("w") as handle:
            handle.writelines(canonical_trace_lines(run.records))
    metrics: Dict[str, Any] = dict(run.metrics)
    metrics["engine"] = run.diagnostics["engine"]
    metrics["switches"] = run.diagnostics["switches"]
    metrics["hosts"] = run.diagnostics["hosts"]
    for key in ("shards", "rounds", "boundary_events", "lookahead_us"):
        if key in run.diagnostics:
            metrics[key] = run.diagnostics[key]
    return _result("X14", seed, cfg, metrics)


def run_x15(config: Mapping[str, Any], seed: int) -> RunResult:
    """X15: the experiment service under millions-of-users traffic.

    Models the tentpole service's admission queue, coalescing and
    result cache in the DES engine at planetary request volume, with
    spine-uplink faults degrading the workers' fabric -- comparing the
    ``open``, ``bounded`` and ``fair`` admission policies on served
    P99 and shed rate (:func:`repro.workloads.service_exhibit`).
    """
    from repro.workloads.servicesim import service_exhibit

    cfg = _merge(
        {
            "n_requests": 50_000,
            "arrival_rate_hz": 2_000.0,
            "n_workers": 8,
            "queue_cap": 48,
            "per_client_cap": 4,
        },
        config,
    )
    metrics = service_exhibit(
        n_requests=cfg["n_requests"],
        seed=seed,
        overrides={
            "arrival_rate_hz": cfg["arrival_rate_hz"],
            "n_workers": cfg["n_workers"],
            "queue_cap": cfg["queue_cap"],
            "per_client_cap": cfg["per_client_cap"],
        },
    )
    return _result("X15", seed, cfg, metrics)


def run_x16(config: Mapping[str, Any], seed: int) -> RunResult:
    """X16: the self-chaos harness -- crash-safety on the real stack.

    In its default mode this runs the full kill schedule of
    :func:`repro.workloads.self_chaos_exhibit`: SIGKILL pool workers
    mid-shard, SIGKILL a real ``repro run`` subprocess mid-grid and
    resume it from the write-ahead journal, SIGKILL a real
    ``repro serve`` mid-job and recover it on restart -- reporting
    byte-identity and containment verdicts as metrics.

    With ``probe=True`` the entrypoint is instead the trivial
    deterministic shard the harness uses as its *inner* workload
    (:func:`repro.workloads.selfchaos.probe_metrics`), so X16 can drive
    itself through the registry without recursion.
    """
    from repro.workloads.selfchaos import (
        CHAOS_DEFAULTS,
        probe_metrics,
        self_chaos_exhibit,
    )

    cfg = _merge(
        {"probe": False, "sleep_s": 0.0, "crash_marker_dir": None,
         **CHAOS_DEFAULTS},
        config,
    )
    if cfg["probe"]:
        return _result("X16", seed, cfg, probe_metrics(cfg, seed))
    metrics = self_chaos_exhibit(
        seed=seed,
        overrides={key: cfg[key] for key in CHAOS_DEFAULTS},
    )
    return _result("X16", seed, cfg, metrics)


def run_x17(config: Mapping[str, Any], seed: int) -> RunResult:
    """X17: the chaos x load matrix -- X12's claims under real traffic.

    Re-measures the Catapult-style hedging tail recovery and the
    disaggregated-fabric availability gain under every
    :data:`repro.workloads.scenario.TRAFFIC_REGIMES` traffic shape
    (steady, diurnal, flash crowd, heavy tail), with each regime's
    arrival trace generated as a :mod:`repro.mc.traffic` batch draw and
    bulk-injected via ``Simulator.schedule_batch``
    (:func:`repro.workloads.chaos_load_exhibit`).
    """
    from repro.workloads.scenario import chaos_load_exhibit

    cfg = _merge(
        {
            "base_qps": 700.0,
            "search_horizon_s": 4.0,
            "base_read_hz": 400.0,
            "memory_horizon_s": 5.0,
        },
        config,
    )
    metrics = chaos_load_exhibit(
        base_qps=cfg["base_qps"],
        search_horizon_s=cfg["search_horizon_s"],
        base_read_hz=cfg["base_read_hz"],
        memory_horizon_s=cfg["memory_horizon_s"],
        seed=seed,
    )
    return _result("X17", seed, cfg, metrics)

"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by the SHA-256 of the run's full identity:
experiment id, grid seed, the user-supplied config overrides, and a
*code fingerprint* -- a hash over the source files of the experiment's
implementing modules, its entrypoint module and the library version.
Editing any implementing module therefore invalidates exactly the
experiments that depend on it; changing a config override invalidates
exactly that shard.

Only ``ok`` results are ever stored: errors and timeouts always
recompute, so a transient failure cannot poison future sweeps.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.atomicio import atomic_write_text
from repro.errors import RegistryError
from repro.runner.results import RunResult

#: Memoized module-name -> source-hash entries (source files do not
#: change within a process lifetime).
_MODULE_HASHES: Dict[str, str] = {}


def _module_source_hash(module_name: str) -> str:
    """SHA-256 hex digest of ``module_name``'s source file."""
    cached = _MODULE_HASHES.get(module_name)
    if cached is not None:
        return cached
    spec = importlib.util.find_spec(module_name)
    if spec is None or spec.origin is None:
        raise RegistryError(
            f"cannot fingerprint module {module_name!r}: no source file"
        )
    digest = hashlib.sha256(Path(spec.origin).read_bytes()).hexdigest()
    _MODULE_HASHES[module_name] = digest
    return digest


def code_fingerprint(experiment: "Any") -> str:
    """Fingerprint of the code an experiment's result depends on.

    Hashes the library version, the experiment's implementing modules
    (from the registry) and its entrypoint's defining module, so cached
    results survive unrelated edits but never stale ones.
    """
    import repro

    parts = [f"version={repro.__version__}"]
    modules = set(experiment.modules)
    if experiment.entrypoint:
        modules.add(experiment.entrypoint.split(":", 1)[0])
    for module_name in sorted(modules):
        parts.append(f"{module_name}={_module_source_hash(module_name)}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def cache_key(
    experiment: "Any", seed: int, config: Dict[str, Any]
) -> str:
    """The content-hash key identifying one shard's result."""
    identity = json.dumps(
        {
            "experiment": experiment.experiment_id,
            "seed": seed,
            "config": config,
            "code": code_fingerprint(experiment),
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed :class:`RunResult` records.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fanned out so huge
    sweeps do not produce a single million-entry directory). Corrupt or
    partially written entries read as misses and are *quarantined*:
    renamed to ``<key>.corrupt`` so the evidence survives for forensics
    instead of being silently shadowed, with the
    ``runner.cache_corrupt`` counter incremented on the optional
    ``registry``. The next ``put`` for the key writes a fresh entry.
    """

    def __init__(
        self, root: "str | Path", registry: Optional[Any] = None
    ) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.registry = registry

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside as ``.corrupt`` and count it.

        Concurrent readers race here: both can read the same corrupt
        bytes, but only one rename can win. The loser's
        ``FileNotFoundError`` means the entry is *already* quarantined
        -- that is success, not failure, so it must neither raise nor
        count the quarantine twice.
        """
        try:
            path.replace(path.with_suffix(".corrupt"))
        except FileNotFoundError:
            # Another reader quarantined this entry first.
            return
        except OSError:  # unwritable parent: the read still misses
            return
        self.quarantined += 1
        if self.registry is not None:
            self.registry.counter("runner.cache_corrupt").inc()

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None on a miss.

        A present-but-undecodable entry is quarantined (renamed to
        ``<key>.corrupt``) rather than left in place or deleted, then
        reported as a miss.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            record = json.loads(text)
            result = RunResult.from_dict(record)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store an ``ok`` result; failed shards are never cached.

        Written via :func:`repro.core.atomicio.atomic_write_text`
        (pid-unique temp + fsync + rename), so concurrent writers of
        the same key cannot collide on a scratch file and a crash
        mid-write can never leave a truncated entry.
        """
        if not result.ok:
            return
        atomic_write_text(self._path(key), result.canonical_json() + "\n")

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

"""Hyperscale fabric transport workload -- the sharded-DES reference.

A :class:`FabricWorkload` describes a fat-tree or leaf-spine fabric, a
batch of host-to-host request packets, and an optional
:class:`~repro.engine.faults.FaultSpec` schedule. The same workload runs
two ways:

- :func:`simulate_fabric` -- one :class:`~repro.engine.sim.Simulator`
  holds the whole fabric (the PR-2/PR-6 fast kernel, single process);
- :func:`simulate_fabric_sharded` -- the fabric is cut by
  :func:`~repro.engine.sharded.partition.partition_fabric` and each
  shard runs its own simulator under the conservative window protocol of
  :class:`~repro.engine.sharded.coordinator.ShardedSimulation`.

Both produce the *identical* canonical trace and metrics, bit for bit,
at any shard count -- the equivalence gate pinned in
``tests/test_engine_sharded.py``. The design constraints that make that
possible (and that any other sharded workload must respect):

- **Determinism is workload-owned.** Every trace record carries a
  workload-assigned key ``seq = rid * 16 + hop`` that is globally unique
  and engine-independent; traces are canonicalized by sorting on
  ``(when, seq)``, never by kernel pop order.
- **Confluence.** Packet transits share no mutable state with each
  other, so same-timestamp transits commute; the only shared state is
  fabric up/down status, driven by a :class:`FaultInjector` replicated
  in full (same seed, same per-target forked streams) in every shard, so
  every simulator observes the identical fault timeline.
- **Closed float paths.** A packet's hop times are the same sequence of
  float additions in either engine, and boundary events carry the exact
  float ``when`` across shards; ECMP choices and latency jitter hash the
  ``(rid, hop)`` pair instead of drawing from engine-order-dependent
  streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.faults import FaultInjector, FaultSpec
from repro.engine.randomness import RandomStream
from repro.engine.sharded.coordinator import ShardedSimulation
from repro.engine.sharded.partition import ShardPlan, partition_fabric
from repro.engine.sharded.sync import (
    BoundaryEvent,
    TraceRecord,
    exclusive_until,
    trace_digest,
)
from repro.engine.sim import Simulator
from repro.errors import SimulationError
from repro.network.topology import Fabric, fat_tree, leaf_spine

#: Trace record kinds emitted by the transport workload.
KIND_HOP = "hop"
KIND_DELIVER = "deliver"
KIND_DROP = "drop"

#: ``seq = rid * _SEQ_STRIDE + hop`` -- hop counts must stay below this.
_SEQ_STRIDE = 16

_INV32 = 2.0 ** -32


def _mix(a: int, b: int) -> int:
    """A 32-bit avalanche hash of two small ints (deterministic ECMP)."""
    x = (a * 2654435761 + b * 2246822519 + 3266489917) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 2654435769) & 0xFFFFFFFF
    x ^= x >> 13
    return x


@dataclass(frozen=True)
class FabricWorkload:
    """A declarative fabric-transport scenario (engine-agnostic).

    ``n_requests`` packets travel between uniform random distinct host
    pairs, entering the fabric at uniform random times in ``[0,
    duration_s)``. Per-hop latency is the tier's base latency times
    ``1 + jitter * u`` with ``u`` a deterministic per-``(rid, hop)``
    hash in ``[0, 1)`` -- jitter only ever *adds* latency, so tier base
    latencies remain a valid conservative lookahead. ``fault_specs``
    compose a :class:`~repro.engine.faults.FaultInjector` schedule into
    the run; routing is hop-by-hop ECMP over currently-up links, and a
    packet with no surviving next hop is dropped.
    """

    fabric: str = "fat-tree"
    k: int = 8
    n_spines: int = 4
    n_leaves: int = 8
    hosts_per_leaf: int = 8
    n_requests: int = 10_000
    duration_s: float = 2e-3
    seed: int = 0
    edge_latency_s: float = 2e-6
    agg_latency_s: float = 8e-6
    core_latency_s: float = 25e-6
    jitter: float = 0.25
    max_hops: int = 12
    fault_specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.fabric not in ("fat-tree", "leaf-spine"):
            raise SimulationError(
                f"unknown fabric kind {self.fabric!r}; expected "
                f"'fat-tree' or 'leaf-spine'"
            )
        if self.n_requests < 1:
            raise SimulationError("n_requests must be >= 1")
        if self.duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        if min(self.edge_latency_s, self.agg_latency_s,
               self.core_latency_s) <= 0:
            raise SimulationError("tier latencies must be positive")
        if self.jitter < 0:
            raise SimulationError("jitter must be >= 0")
        if not 1 <= self.max_hops <= _SEQ_STRIDE - 1:
            raise SimulationError(
                f"max_hops must be in [1, {_SEQ_STRIDE - 1}]"
            )
        object.__setattr__(self, "fault_specs", tuple(self.fault_specs))
        for spec in self.fault_specs:
            if spec.end_s is None and spec.max_faults is None:
                raise SimulationError(
                    f"{spec.kind} spec needs end_s or max_faults: an "
                    f"unbounded fault process never quiesces, so the "
                    f"simulation would not terminate"
                )


@dataclass(frozen=True)
class FabricRunResult:
    """One fabric-transport run: canonical trace + split metrics.

    ``metrics`` is strictly engine-independent (the equivalence gate
    compares it verbatim between engines); ``diagnostics`` carries
    engine-specific facts -- events processed, barrier rounds, boundary
    event counts -- that legitimately differ between the single-process
    and sharded drivers.
    """

    records: List[TraceRecord] = field(repr=False)
    metrics: Dict[str, Any]
    diagnostics: Dict[str, Any]


def build_fabric(workload: FabricWorkload) -> Fabric:
    """The workload's fabric, freshly built with all elements up."""
    if workload.fabric == "fat-tree":
        return fat_tree(workload.k)
    return leaf_spine(
        workload.n_spines, workload.n_leaves, workload.hosts_per_leaf
    )


def _fabric_view(fabric: Fabric) -> Fabric:
    """A fabric sharing ``fabric``'s graph with private up/down state.

    Every simulator gets its own view so fault mutations at one shard's
    virtual time never leak into another shard mid-window; the
    structural graph itself is immutable during a run and safely shared
    (copy-on-write across forked workers).
    """
    return Fabric(name=fabric.name, graph=fabric.graph)


class _Tables:
    """Precomputed name/coordinate tables for structural ECMP routing."""

    __slots__ = (
        "kind", "coords", "hosts", "tors", "aggs", "cores_row",
        "leaves", "spines",
    )

    def __init__(self, workload: FabricWorkload) -> None:
        self.kind = workload.fabric
        coords: Dict[str, tuple] = {}
        hosts: List[str] = []
        if workload.fabric == "fat-tree":
            k = workload.k
            half = k // 2
            self.cores_row = [
                [f"core{i}-{j}" for j in range(half)] for i in range(half)
            ]
            for i in range(half):
                for j in range(half):
                    coords[f"core{i}-{j}"] = (3, i, j)
            self.tors = []
            self.aggs = []
            for p in range(k):
                self.aggs.append([f"agg{p}-{a}" for a in range(half)])
                self.tors.append([f"tor{p}-{t}" for t in range(half)])
                for a in range(half):
                    coords[f"agg{p}-{a}"] = (2, p, a)
                for t in range(half):
                    coords[f"tor{p}-{t}"] = (1, p, t)
                    for h in range(half):
                        host = f"host{p}-{t}-{h}"
                        coords[host] = (0, p, t, h)
                        hosts.append(host)
            self.leaves = self.spines = ()
        else:
            self.spines = [f"spine{s}" for s in range(workload.n_spines)]
            self.leaves = [f"leaf{l}" for l in range(workload.n_leaves)]
            for s in range(workload.n_spines):
                coords[f"spine{s}"] = (3, s)
            for l in range(workload.n_leaves):
                coords[f"leaf{l}"] = (1, l)
                for h in range(workload.hosts_per_leaf):
                    host = f"host{l}-{h}"
                    coords[host] = (0, l, h)
                    hosts.append(host)
            self.tors = self.aggs = self.cores_row = ()
        self.coords = coords
        self.hosts = hosts

    def base_latency(self, workload: FabricWorkload, a: str, b: str) -> float:
        """Base (jitter-free) latency of the ``a``--``b`` link by tier."""
        tiers = frozenset((self.coords[a][0], self.coords[b][0]))
        if tiers == frozenset((0, 1)):
            return workload.edge_latency_s
        if tiers == frozenset((1, 2)):
            return workload.agg_latency_s
        return workload.core_latency_s


class _ShardContext:
    """Per-simulator mutable state shared by every in-flight transit."""

    __slots__ = (
        "sim", "fabric", "tables", "coords", "dst_names", "records",
        "outbox", "owner", "shard_id", "record_hops", "jitter",
        "max_hops", "edge_latency_s", "agg_latency_s", "core_latency_s",
        "next_hop",
    )

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        tables: _Tables,
        workload: FabricWorkload,
        dst_names: List[str],
        owner: Optional[Dict[str, int]],
        shard_id: int,
        record_hops: bool,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.tables = tables
        self.coords = tables.coords
        self.dst_names = dst_names
        self.records: List[TraceRecord] = []
        self.outbox: List[BoundaryEvent] = []
        self.owner = owner
        self.shard_id = shard_id
        self.record_hops = record_hops
        self.jitter = workload.jitter
        self.max_hops = workload.max_hops
        self.edge_latency_s = workload.edge_latency_s
        self.agg_latency_s = workload.agg_latency_s
        self.core_latency_s = workload.core_latency_s
        self.next_hop = (
            self._next_hop_fat_tree
            if workload.fabric == "fat-tree"
            else self._next_hop_leaf_spine
        )

    def _up(self, a: str, b: str) -> bool:
        fabric = self.fabric
        key = (a, b) if a <= b else (b, a)
        return (
            key not in fabric._down_links
            and a not in fabric._down_nodes
            and b not in fabric._down_nodes
        )

    def _next_hop_fat_tree(self, node, dst, rid, hop):
        coords = self.coords
        c = coords[node]
        d = coords[dst]
        tier = c[0]
        fabric = self.fabric
        faulty = bool(fabric._down_links or fabric._down_nodes)
        tables = self.tables
        if tier == 0:
            nxt = tables.tors[c[1]][c[2]]
            if faulty and not self._up(node, nxt):
                return None
            return nxt, self.edge_latency_s
        if tier == 1:
            pod = c[1]
            if d[1] == pod and d[2] == c[2]:
                if faulty and not self._up(node, dst):
                    return None
                return dst, self.edge_latency_s
            ups = tables.aggs[pod]
            latency = self.agg_latency_s
        elif tier == 2:
            pod = c[1]
            if d[1] == pod:
                nxt = tables.tors[pod][d[2]]
                if faulty and not self._up(node, nxt):
                    return None
                return nxt, self.agg_latency_s
            ups = tables.cores_row[c[2]]
            latency = self.core_latency_s
        else:
            nxt = tables.aggs[d[1]][c[1]]
            if faulty and not self._up(node, nxt):
                return None
            return nxt, self.core_latency_s
        if faulty:
            ups = [up for up in ups if self._up(node, up)]
            if not ups:
                return None
        return ups[_mix(rid, hop << 1) % len(ups)], latency

    def _next_hop_leaf_spine(self, node, dst, rid, hop):
        coords = self.coords
        c = coords[node]
        d = coords[dst]
        tier = c[0]
        fabric = self.fabric
        faulty = bool(fabric._down_links or fabric._down_nodes)
        tables = self.tables
        if tier == 0:
            nxt = tables.leaves[c[1]]
            if faulty and not self._up(node, nxt):
                return None
            return nxt, self.edge_latency_s
        if tier == 1:
            if d[1] == c[1]:
                if faulty and not self._up(node, dst):
                    return None
                return dst, self.edge_latency_s
            ups = tables.spines
            if faulty:
                ups = [up for up in ups if self._up(node, up)]
                if not ups:
                    return None
            return ups[_mix(rid, hop << 1) % len(ups)], self.core_latency_s
        nxt = tables.leaves[d[1]]
        if faulty and not self._up(node, nxt):
            return None
        return nxt, self.core_latency_s


class _Transit:
    """One packet's journey, hop by hop, as a reschedulable callable."""

    __slots__ = ("ctx", "rid", "node", "hop")

    def __init__(self, ctx: _ShardContext, rid: int, node: str,
                 hop: int) -> None:
        self.ctx = ctx
        self.rid = rid
        self.node = node
        self.hop = hop

    def __call__(self) -> None:
        ctx = self.ctx
        rid = self.rid
        node = self.node
        hop = self.hop
        now = ctx.sim._now
        dst = ctx.dst_names[rid]
        if node == dst:
            ctx.records.append(
                (now, rid * _SEQ_STRIDE + hop, KIND_DELIVER, node)
            )
            return
        if hop >= ctx.max_hops:
            ctx.records.append(
                (now, rid * _SEQ_STRIDE + hop, KIND_DROP, node)
            )
            return
        step = ctx.next_hop(node, dst, rid, hop)
        if step is None:
            ctx.records.append(
                (now, rid * _SEQ_STRIDE + hop, KIND_DROP, node)
            )
            return
        nxt, base = step
        when = now + base * (
            1.0 + ctx.jitter * (_mix(rid, (hop << 1) | 1) * _INV32)
        )
        if ctx.record_hops:
            ctx.records.append(
                (now, rid * _SEQ_STRIDE + hop, KIND_HOP, node)
            )
        next_hop_index = hop + 1
        owner = ctx.owner
        if owner is not None:
            dest_shard = owner[nxt]
            if dest_shard != ctx.shard_id:
                ctx.outbox.append(BoundaryEvent(
                    when,
                    rid * _SEQ_STRIDE + next_hop_index,
                    dest_shard,
                    (rid, nxt, next_hop_index),
                ))
                return
        self.node = nxt
        self.hop = next_hop_index
        ctx.sim._schedule_at(when, self)


def _generate_requests(workload: FabricWorkload, n_hosts: int):
    """Vectorized (src, dst, start) draws -- one batch, every engine."""
    if n_hosts < 2:
        raise SimulationError("fabric transport needs at least 2 hosts")
    gen = RandomStream(workload.seed, "fabric-transport").fork(
        "requests"
    ).numpy
    src = gen.integers(0, n_hosts, size=workload.n_requests)
    offset = gen.integers(1, n_hosts, size=workload.n_requests)
    dst = (src + offset) % n_hosts
    start = gen.uniform(0.0, workload.duration_s, size=workload.n_requests)
    return src, dst, start


def _install_faults(
    workload: FabricWorkload, sim: Simulator, fabric: Fabric
) -> Optional[FaultInjector]:
    if not workload.fault_specs:
        return None
    injector = FaultInjector(sim, seed=workload.seed, fabric=fabric)
    for spec in workload.fault_specs:
        injector.install(spec)
    return injector


def _schedule_requests(ctx, tables, src, start, rids) -> None:
    hosts = tables.hosts
    sim = ctx.sim
    schedule = sim._schedule_at
    for rid in rids:
        schedule(float(start[rid]), _Transit(ctx, rid, hosts[src[rid]], 0))


def summarize(
    records: List[TraceRecord],
    starts: np.ndarray,
    n_requests: int,
) -> Dict[str, Any]:
    """Engine-independent end metrics from a canonical trace.

    A pure function of the sorted record list and the request start
    times, so identical traces always yield identical metrics -- the
    second half of the bit-for-bit equivalence contract.
    """
    delivered = 0
    dropped = 0
    hops_total = 0
    latencies: List[float] = []
    for when, seq, kind, _node in records:
        if kind == KIND_DELIVER:
            delivered += 1
            hops_total += seq & (_SEQ_STRIDE - 1)
            latencies.append(float(when - starts[seq // _SEQ_STRIDE]))
        elif kind == KIND_DROP:
            dropped += 1
    latencies.sort()
    count = len(latencies)

    def _quantile(q: float) -> float:
        if not count:
            return 0.0
        return latencies[min(count - 1, int(q * count))]

    return {
        "n_requests": n_requests,
        "delivered": delivered,
        "dropped": dropped,
        "availability": delivered / n_requests,
        "mean_hops": hops_total / delivered if delivered else 0.0,
        "p50_latency_us": _quantile(0.50) * 1e6,
        "p99_latency_us": _quantile(0.99) * 1e6,
        "max_latency_us": (latencies[-1] if count else 0.0) * 1e6,
        "t_end_s": records[-1][0] if records else 0.0,
        "trace_records": len(records),
        "trace_sha256": trace_digest(records),
    }


def simulate_fabric(
    workload: FabricWorkload, record_hops: bool = False
) -> FabricRunResult:
    """Run the workload on one single-process simulator (the reference).

    With ``record_hops`` every forwarding decision is recorded, not just
    terminal deliver/drop events -- the high-detail mode the equivalence
    tests compare hop-for-hop.
    """
    fabric = build_fabric(workload)
    tables = _Tables(workload)
    src, dst, start = _generate_requests(workload, len(tables.hosts))
    sim = Simulator()
    dst_names = [tables.hosts[i] for i in dst.tolist()]
    ctx = _ShardContext(
        sim, fabric, tables, workload, dst_names,
        owner=None, shard_id=0, record_hops=record_hops,
    )
    injector = _install_faults(workload, sim, fabric)
    _schedule_requests(ctx, tables, src, start, range(workload.n_requests))
    sim.run()
    records = ctx.records
    records.sort()
    metrics = summarize(records, start, workload.n_requests)
    metrics["fault_events"] = 0 if injector is None else len(injector.events)
    diagnostics = {
        "engine": "single",
        "events_processed": sim.events_processed,
        "switches": len(fabric.switches),
        "hosts": len(tables.hosts),
    }
    return FabricRunResult(
        records=records, metrics=metrics, diagnostics=diagnostics
    )


@dataclass
class _FabricShardAdapter:
    """Builds one :class:`_FabricShardRuntime` per shard (picklable)."""

    workload: FabricWorkload
    plan: ShardPlan
    fabric: Fabric
    record_hops: bool

    def build_runtime(self, shard_id: int) -> "_FabricShardRuntime":
        """The coordinator's per-shard construction hook."""
        return _FabricShardRuntime(self, shard_id)


class _FabricShardRuntime:
    """One shard's simulator + context behind the coordinator protocol."""

    def __init__(self, adapter: _FabricShardAdapter, shard_id: int) -> None:
        workload = adapter.workload
        tables = _Tables(workload)
        fabric = _fabric_view(adapter.fabric)
        src, dst, start = _generate_requests(workload, len(tables.hosts))
        self.sim = Simulator()
        dst_names = [tables.hosts[i] for i in dst.tolist()]
        self.ctx = _ShardContext(
            self.sim, fabric, tables, workload, dst_names,
            owner=adapter.plan.owner, shard_id=shard_id,
            record_hops=adapter.record_hops,
        )
        self.injector = _install_faults(workload, self.sim, fabric)
        owner = adapter.plan.owner
        host_owner = np.array(
            [owner[host] for host in tables.hosts], dtype=np.int64
        )
        rids = np.nonzero(host_owner[src] == shard_id)[0].tolist()
        _schedule_requests(self.ctx, tables, src, start, rids)

    def next_time(self) -> Optional[float]:
        """Earliest pending event time in this shard's calendar."""
        return self.sim.peek()

    def schedule_incoming(self, events: List[BoundaryEvent]) -> None:
        """Admit boundary arrivals delivered at the window barrier."""
        ctx = self.ctx
        schedule = self.sim._schedule_at
        for event in events:
            rid, node, hop = event.payload
            schedule(event.when, _Transit(ctx, rid, node, hop))

    def advance(self, window_end: float) -> List[BoundaryEvent]:
        """Process everything strictly before ``window_end``."""
        if math.isinf(window_end):
            self.sim.run()
        else:
            self.sim.run(until=exclusive_until(window_end))
        outbox = list(self.ctx.outbox)
        self.ctx.outbox.clear()
        return outbox

    def finalize(self):
        """Sorted shard-local records plus per-shard diagnostics."""
        records = self.ctx.records
        records.sort()
        metrics = {
            "events_processed": self.sim.events_processed,
            "fault_events": (
                0 if self.injector is None else len(self.injector.events)
            ),
        }
        return records, metrics


def simulate_fabric_sharded(
    workload: FabricWorkload,
    shards: int,
    inline: bool = False,
    record_hops: bool = False,
) -> FabricRunResult:
    """Run the workload sharded; bit-for-bit equal to the reference.

    ``shards`` picks the cut width (pod-aligned for fat-trees,
    leaf-aligned for leaf-spine). ``inline`` keeps every shard in this
    process (determinism debugging and tests); the default forks one
    worker process per shard, exchanging boundary events over pipes in
    the :mod:`repro.runner.pool` style.
    """
    fabric = build_fabric(workload)
    tables = _Tables(workload)

    def latency_fn(a: str, b: str) -> float:
        return tables.base_latency(workload, a, b)

    plan = partition_fabric(fabric, shards, latency_fn)
    adapter = _FabricShardAdapter(workload, plan, fabric, record_hops)
    outcome = ShardedSimulation(adapter, plan, inline=inline).run()
    _src, _dst, start = _generate_requests(workload, len(tables.hosts))
    metrics = summarize(outcome.records, start, workload.n_requests)
    metrics["fault_events"] = outcome.shard_metrics[0]["fault_events"]
    diagnostics = {
        "engine": "sharded-inline" if inline else "sharded-fork",
        "shards": outcome.n_shards,
        "rounds": outcome.rounds,
        "boundary_events": outcome.boundary_events,
        "events_processed": sum(
            m["events_processed"] for m in outcome.shard_metrics
        ),
        "boundary_links": len(plan.boundary_links),
        "lookahead_us": (
            plan.lookahead_s * 1e6
            if not math.isinf(plan.lookahead_s) else None
        ),
        "switches": len(fabric.switches),
        "hosts": len(tables.hosts),
    }
    return FabricRunResult(
        records=outcome.records, metrics=metrics, diagnostics=diagnostics
    )

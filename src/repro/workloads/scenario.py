"""Chaos x load matrix (X17): headline claims under realistic traffic.

X12 established the headline resilience numbers -- hedging's Catapult-
style tail recovery and the disaggregated fabric's availability gain --
under open-loop *constant-rate* arrivals. The roadmap's provisioning
argument (SS III.B) is precisely that constant-rate load is the wrong
yardstick, so this module re-measures both claims under the
:mod:`repro.mc.traffic` scenario library's regimes:

- ``steady`` -- the X12 baseline shape (constant-rate Poisson);
- ``diurnal`` -- one full sinusoidal day compressed into the horizon;
- ``flash_crowd`` -- a ramp/hold/decay burst to 4x the base rate;
- ``heavy_tail`` -- MMPP-correlated bursts plus Pareto service times.

Each regime's full arrival trace is generated up front as a batch draw
(:func:`~repro.mc.traffic.scenario_trace`) and fed into the simulator
through :meth:`~repro.engine.sim.Simulator.schedule_batch`, the bulk-
injection fast path -- the chaos machinery (straggler and link-flap
schedules from :mod:`repro.engine.faults`, hedging and deadline/retry
from :mod:`repro.engine.resilience`) is the same as X12's. The exhibit
reports a winner per regime x claim, so the matrix shows where the
resilience policies keep paying off and where realistic load erodes
them. Everything is deterministic given the seed; request counts vary
by regime because thinning accepts a random number of arrivals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine import (
    FaultInjector,
    FaultSpec,
    RandomStream,
    Resource,
    RetryPolicy,
    Simulator,
    hedge,
    retry,
    with_deadline,
)
from repro.engine.faults import LINK_FLAP, STRAGGLER
from repro.errors import FaultError, ModelError, RetryExhausted, TopologyError
from repro.mc.traffic import FlashCrowd, ScenarioSpec, scenario_trace
from repro.workloads.chaos import (
    MEMORY_POLICIES,
    SEARCH_POLICIES,
    latency_summary,
)

#: Traffic regimes of the chaos x load matrix, in exhibit order.
TRAFFIC_REGIMES = ("steady", "diurnal", "flash_crowd", "heavy_tail")


def regime_spec(
    regime: str,
    base_rate_hz: float,
    horizon_s: float,
    session_median_s: float = 2.0e-3,
    session_sigma: float = 0.35,
    n_clients: int = 1,
    client_skew: float = 0.0,
) -> ScenarioSpec:
    """The :class:`~repro.mc.traffic.ScenarioSpec` for one regime.

    Regime shapes scale with the horizon so quick runs exercise the same
    structure: ``diurnal`` fits one full period into the horizon,
    ``flash_crowd`` ramps to 4x a quarter of the way in, ``heavy_tail``
    alternates MMPP burst/calm intervals and switches the session family
    to Pareto (scale chosen so the mean stays comparable to the
    lognormal regimes while the tail goes heavy).
    """
    if regime not in TRAFFIC_REGIMES:
        raise ModelError(
            f"unknown traffic regime {regime!r}; expected one of "
            f"{TRAFFIC_REGIMES}"
        )
    common: Dict[str, Any] = {
        "base_rate_hz": base_rate_hz,
        "horizon_s": horizon_s,
        "session_median_s": session_median_s,
        "session_sigma": session_sigma,
        "n_clients": n_clients,
        "client_skew": client_skew,
    }
    if regime == "diurnal":
        return ScenarioSpec(
            diurnal_amplitude=0.6, diurnal_period_s=horizon_s, **common
        )
    if regime == "flash_crowd":
        return ScenarioSpec(
            flash_crowds=(
                FlashCrowd(
                    start_s=0.25 * horizon_s,
                    ramp_s=0.05 * horizon_s,
                    peak_multiplier=4.0,
                    decay_s=0.10 * horizon_s,
                    hold_s=0.05 * horizon_s,
                ),
            ),
            **common,
        )
    if regime == "heavy_tail":
        return ScenarioSpec(
            burst_multiplier=3.0,
            burst_mean_s=0.04 * horizon_s,
            calm_mean_s=0.16 * horizon_s,
            session_tail="pareto",
            session_shape=1.6,
            session_scale_s=0.6 * session_median_s,
            **common,
        )
    return ScenarioSpec(**common)


def run_search_load(
    regime: str,
    policy: str,
    base_qps: float = 700.0,
    horizon_s: float = 4.0,
    n_replicas: int = 6,
    replica_slots: int = 4,
    service_median_s: float = 2.0e-3,
    service_sigma: float = 0.35,
    hedge_delay_s: float = 8.0e-3,
    sla_s: float = 0.025,
    straggler_slowdown: float = 12.0,
    straggler_mtbf_s: float = 0.8,
    straggler_mttr_s: float = 0.25,
    seed: int = 0,
) -> Dict[str, Any]:
    """X12's replicated-search-under-stragglers part, scenario-driven.

    The full trace -- arrival times, primary-replica placement, base
    service times -- comes from one :func:`scenario_trace` batch and is
    bulk-injected with ``schedule_batch``; the straggler schedule and
    the hedging policy are X12's. Returns per-policy headline metrics.
    """
    if policy not in SEARCH_POLICIES:
        raise ModelError(
            f"unknown search policy {policy!r}; expected one of "
            f"{SEARCH_POLICIES}"
        )
    spec = regime_spec(
        regime, base_qps, horizon_s,
        session_median_s=service_median_s, session_sigma=service_sigma,
        n_clients=n_replicas, client_skew=0.6,
    )
    trace = scenario_trace(
        spec, RandomStream(seed, "load").fork("search").seed
    )
    times = trace["times_s"]
    n_requests = len(times)
    if n_requests == 0:
        raise ModelError("scenario produced no arrivals; widen the horizon")
    placement = trace["client_ids"]
    base_service = trace["session_lengths_s"]

    sim = Simulator()
    injector = FaultInjector(sim, seed=seed + 101)
    replicas = [f"replica{i}" for i in range(n_replicas)]
    injector.install(
        FaultSpec(
            kind=STRAGGLER,
            targets=tuple(replicas[1::2]),
            mtbf_s=straggler_mtbf_s,
            mttr_s=straggler_mttr_s,
            slowdown=straggler_slowdown,
            end_s=horizon_s,
        )
    )
    pools = {
        name: Resource(sim, capacity=replica_slots) for name in replicas
    }
    latencies: List[float] = []
    copies_launched = [0]

    def serve_on(replica: str, base_s: float):
        copies_launched[0] += 1
        yield pools[replica].acquire()
        try:
            yield sim.timeout(base_s * injector.slowdown(replica))
        finally:
            pools[replica].release()
        return replica

    def request(arrived_s: float, primary: int, base_s: float):
        if policy == "off":
            yield from serve_on(replicas[primary], base_s)
        else:
            copy = [0]

            def attempt():
                replica = replicas[(primary + copy[0]) % n_replicas]
                copy[0] += 1
                return serve_on(replica, base_s)

            yield from hedge(
                sim, attempt, delay_s=hedge_delay_s, max_copies=2,
                name="load.hedge",
            )
        latencies.append(sim.now - arrived_s)

    def admit(index: int) -> None:
        sim.spawn(
            request(sim.now, int(placement[index]), float(base_service[index])),
            name=f"load.search{index}",
        )

    sim.schedule_batch(times, admit)
    sim.run()
    if len(latencies) != n_requests:
        raise ModelError("not all scenario search requests completed")
    summary = latency_summary(latencies)
    within_sla = sum(1 for latency in latencies if latency <= sla_s)
    return {
        "policy": policy,
        "n_requests": n_requests,
        "availability": within_sla / n_requests,
        "copies_per_request": copies_launched[0] / n_requests,
        "n_faults": len(injector.events),
        **summary,
    }


def run_memory_load(
    regime: str,
    policy: str,
    base_rate_hz: float = 400.0,
    horizon_s: float = 5.0,
    read_bytes: float = 1.0e6,
    base_latency_s: float = 1.0e-4,
    deadline_s: float = 1.3e-3,
    sla_s: float = 3.0e-3,
    flap_mtbf_s: float = 0.6,
    flap_mttr_s: float = 0.35,
    max_attempts: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """X12's disaggregated-memory part under scenario-shaped read load.

    Reads arrive on a scenario trace (bulk-injected) while the primary
    pool's uplinks flap; ``"resilient"`` wraps each read in a deadline
    plus jittered retries failing over to the replica pool, ``"off"``
    issues one read and gives up when no path exists -- X12 mechanics,
    scenario arrivals.
    """
    if policy not in MEMORY_POLICIES:
        raise ModelError(
            f"unknown memory policy {policy!r}; expected one of "
            f"{MEMORY_POLICIES}"
        )
    from repro.network.routing import ecmp_paths, path_bottleneck_gbps
    from repro.network.topology import disaggregated_fabric

    spec = regime_spec(regime, base_rate_hz, horizon_s)
    times = scenario_trace(
        spec, RandomStream(seed, "load").fork("memory").seed
    )["times_s"]
    n_reads = len(times)
    if n_reads == 0:
        raise ModelError("scenario produced no arrivals; widen the horizon")

    n_spines = 4
    fabric = disaggregated_fabric(
        n_cpu_pools=2, n_mem_pools=2, n_storage_pools=1, n_spines=n_spines,
        pool_gbps=10.0,
    )
    sim = Simulator()
    injector = FaultInjector(sim, seed=seed + 202, fabric=fabric)
    injector.install(
        FaultSpec(
            kind=LINK_FLAP,
            targets=tuple(
                (f"spine{s}", "mem-pool0") for s in range(n_spines)
            ),
            mtbf_s=flap_mtbf_s,
            mttr_s=flap_mttr_s,
            end_s=horizon_s,
        )
    )
    backoff = RandomStream(seed, "load.memory.backoff")
    retry_policy = RetryPolicy(
        max_attempts=max_attempts, base_delay_s=2.5e-4, multiplier=2.0,
        jitter=0.3,
    )
    latencies: List[float] = []
    failures = [0]
    attempts_issued = [0]

    def transfer_duration_s(pool: str) -> float:
        attempts_issued[0] += 1
        try:
            paths = ecmp_paths(fabric, "cpu-pool0", pool)
        except TopologyError as exc:
            raise FaultError(f"{pool} unreachable: {exc}") from exc
        gbps = path_bottleneck_gbps(fabric, paths[0])
        effective_gbps = gbps * len(paths) / n_spines
        return base_latency_s + read_bytes * 8.0 / (effective_gbps * 1e9)

    def request(arrived_s: float):
        if policy == "off":
            try:
                duration = transfer_duration_s("mem-pool0")
            except FaultError:
                failures[0] += 1
                return
            yield sim.timeout(duration)
            latencies.append(sim.now - arrived_s)
            return

        attempt_no = [0]

        def attempt():
            pool = "mem-pool0" if attempt_no[0] % 2 == 0 else "mem-pool1"
            attempt_no[0] += 1

            def bounded():
                duration = transfer_duration_s(pool)
                yield with_deadline(sim, sim.timeout(duration), deadline_s)
                return pool

            return bounded()

        try:
            yield from retry(
                sim, attempt, retry_policy, rng=backoff, name="load.retry"
            )
        except RetryExhausted:
            failures[0] += 1
            return
        latencies.append(sim.now - arrived_s)

    def admit(index: int) -> None:
        sim.spawn(request(sim.now), name=f"load.read{index}")

    sim.schedule_batch(times, admit)
    sim.run()
    completed = len(latencies)
    if completed + failures[0] != n_reads:
        raise ModelError("scenario memory reads lost by the harness")
    within_sla = sum(1 for latency in latencies if latency <= sla_s)
    metrics: Dict[str, Any] = {
        "policy": policy,
        "n_reads": n_reads,
        "completed": completed,
        "failed": failures[0],
        "availability": within_sla / n_reads,
        "attempts_per_read": attempts_issued[0] / n_reads,
        "n_faults": len(injector.events),
    }
    if completed:
        metrics.update(latency_summary(latencies))
    return metrics


def chaos_load_exhibit(
    base_qps: float = 700.0,
    search_horizon_s: float = 4.0,
    base_read_hz: float = 400.0,
    memory_horizon_s: float = 5.0,
    seed: int = 0,
    search_overrides: Optional[Dict[str, Any]] = None,
    memory_overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The full chaos x load matrix; returns the X17 metrics.

    For every traffic regime the two X12 claims are re-measured and a
    winner declared: ``search.<regime>.winner`` is the policy with the
    lower p99 (the Catapult tail claim), ``memory.<regime>.winner`` the
    policy with the higher within-SLA availability (the dependable-
    fabric claim). Headline aggregates:

    - ``search.p99_recovery.min`` / ``.max``: the weakest and strongest
      tail recovery across regimes -- how robust the 29%-class claim is
      to realistic load.
    - ``memory.availability_gain.min`` / ``.max``: same for the
      disaggregation availability gain.
    - ``search.regimes_won_by_hedging`` /
      ``memory.regimes_won_by_resilience``: the matrix row sums.
    """
    search_kw = dict(search_overrides or {})
    memory_kw = dict(memory_overrides or {})
    metrics: Dict[str, Any] = {}
    recoveries: List[float] = []
    gains: List[float] = []
    search_wins = 0
    memory_wins = 0

    for regime in TRAFFIC_REGIMES:
        parts = {
            policy: run_search_load(
                regime, policy, base_qps=base_qps, horizon_s=search_horizon_s,
                seed=seed, **search_kw,
            )
            for policy in SEARCH_POLICIES
        }
        for policy, part in parts.items():
            for key, value in part.items():
                if key != "policy":
                    metrics[f"search.{regime}.{policy}.{key}"] = value
        recovery = 1.0 - parts["hedged"]["p99_s"] / parts["off"]["p99_s"]
        winner = "hedged" if parts["hedged"]["p99_s"] < parts["off"]["p99_s"] else "off"
        metrics[f"search.{regime}.p99_recovery"] = recovery
        metrics[f"search.{regime}.winner"] = winner
        recoveries.append(recovery)
        search_wins += winner == "hedged"

        parts = {
            policy: run_memory_load(
                regime, policy, base_rate_hz=base_read_hz,
                horizon_s=memory_horizon_s, seed=seed, **memory_kw,
            )
            for policy in MEMORY_POLICIES
        }
        for policy, part in parts.items():
            for key, value in part.items():
                if key != "policy":
                    metrics[f"memory.{regime}.{policy}.{key}"] = value
        gain = (
            parts["resilient"]["availability"] - parts["off"]["availability"]
        )
        winner = (
            "resilient"
            if parts["resilient"]["availability"] > parts["off"]["availability"]
            else "off"
        )
        metrics[f"memory.{regime}.availability_gain"] = gain
        metrics[f"memory.{regime}.winner"] = winner
        gains.append(gain)
        memory_wins += winner == "resilient"

    metrics["search.p99_recovery.min"] = min(recoveries)
    metrics["search.p99_recovery.max"] = max(recoveries)
    metrics["search.regimes_won_by_hedging"] = search_wins
    metrics["memory.availability_gain.min"] = min(gains)
    metrics["memory.availability_gain.max"] = max(gains)
    metrics["memory.regimes_won_by_resilience"] = memory_wins
    return metrics

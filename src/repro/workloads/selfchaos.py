"""Self-chaos harness (X16): crash-safety proven on the real stack.

Every other exhibit models a system; this one attacks the reproduction
stack itself. The harness drives the *actual* runner, journal, cache
and service through a deterministic kill schedule and reports whether
the crash-recovery invariants documented in ``DESIGN.md`` held:

- **Containment** -- a pool worker SIGKILLed mid-shard is respawned
  and its shard retried; a shard that kills its worker twice is
  quarantined as ``crashed``; sibling shards are untouched
  (:func:`repro.runner.run_shards`).
- **Worker-kill byte identity** -- a grid whose workers each die once
  to SIGKILL merges to the byte-identical ``results.json`` of an
  undisturbed run (crash respawns are infrastructure noise, not shard
  verdicts, so they never leak into ``attempts``).
- **Parent-kill resume** -- a ``python -m repro run`` subprocess is
  SIGKILLed after the write-ahead journal records its first completed
  shard; ``run_grid(resume=True)`` on the same cache replays the
  journal and merges to the byte-identical document.
- **Service recovery** -- a ``python -m repro serve`` subprocess is
  SIGKILLed right after accepting a job; a restart on the same cache
  directory re-admits the journaled job and completes it, and
  resubmitting already-completed work is fully cache-served (zero pool
  spawns, zero recomputes).

The harness submits *itself* as the inner workload: ``X16`` with
``probe=True`` is a trivial deterministic shard (optionally sleeping,
optionally SIGKILLing its own worker once via a marker directory), so
the chaos grids exercise the registry path end to end without
recursion. All reported metrics are deterministic booleans and counts;
wall-clock timing influences *when* kills land, never the verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceError
from repro.runner.journal import read_journal
from repro.runner.pool import ShardSpec, run_shards
from repro.runner.results import GridResult, RunResult

#: Knobs of the full exhibit (overridable via ``run_x16`` config).
CHAOS_DEFAULTS: Dict[str, Any] = {
    "inner_seeds": 3,       # seeds per inner grid
    "jobs": 2,              # pool width of the inner grids
    "probe_sleep_s": 0.2,   # per-shard sleep: the kill window
    "service_sleep_s": 2.0, # shard sleep of the job the service loses
    "kill_after_done": 1,   # journalled shard-dones before parent kill
    "deadline_s": 120.0,    # watchdog for every external wait
}


def probe_metrics(config: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """The X16 *probe* shard: trivial, deterministic, optionally lethal.

    ``sleep_s`` stretches the shard so kill schedules have a window to
    land in. ``crash_marker_dir`` arms crash-once mode: the first
    execution per seed drops a marker file and SIGKILLs its own worker
    process; the retry finds the marker and completes normally. The
    returned metrics depend only on ``seed``.
    """
    marker_dir = config.get("crash_marker_dir")
    if marker_dir:
        marker = Path(marker_dir) / f"seed-{seed}.crashed"
        if not marker.exists():
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.write_text("crashed once\n")
            os.kill(os.getpid(), signal.SIGKILL)
    sleep_s = float(config.get("sleep_s") or 0.0)
    if sleep_s > 0:
        time.sleep(sleep_s)
    digest = hashlib.sha256(f"x16-probe:{seed}".encode("utf-8")).hexdigest()
    return {"probe": 1, "checksum": int(digest[:8], 16)}


def _chaos_shard(config: Dict[str, Any], seed: int) -> RunResult:
    """Containment-phase shard entrypoint (resolved by dotted path).

    ``mode`` selects the behaviour: ``crash-always`` SIGKILLs the
    worker on every attempt, ``crash-once`` only until its marker file
    exists, ``fine`` completes immediately.
    """
    mode = config.get("mode", "fine")
    if mode == "crash-always":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "crash-once":
        marker = Path(config["marker_dir"]) / f"shard-{seed}.crashed"
        if not marker.exists():
            marker.write_text("crashed once\n")
            os.kill(os.getpid(), signal.SIGKILL)
    return RunResult(
        experiment_id="X16", seed=seed, config=dict(config),
        metrics={"mode": mode, "survived": 1},
    )


def _canonical(grid: GridResult) -> str:
    """The exact bytes ``GridResult.write_json`` would produce."""
    return json.dumps(grid.to_dict(), indent=2, sort_keys=True) + "\n"


def _subprocess_env() -> Dict[str, str]:
    """Environment for ``python -m repro`` children.

    Prepends this package's ``src`` directory to ``PYTHONPATH`` so the
    harness works both installed and straight from a checkout.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _phase_containment(tmp: Path) -> Dict[str, Any]:
    """Worker-crash containment on the raw pool (no cache, no journal)."""
    marker_dir = tmp / "contain-markers"
    marker_dir.mkdir(parents=True, exist_ok=True)
    entry = f"{__name__}:_chaos_shard"
    shards = [
        ShardSpec(index=0, experiment_id="X16", entrypoint=entry, seed=0,
                  config={"mode": "crash-once",
                          "marker_dir": str(marker_dir)}),
        ShardSpec(index=1, experiment_id="X16", entrypoint=entry, seed=1,
                  config={"mode": "crash-always"}),
        ShardSpec(index=2, experiment_id="X16", entrypoint=entry, seed=2,
                  config={"mode": "fine"}),
    ]
    crashes = []
    results = run_shards(
        shards, jobs=3, retries=3,
        on_crash=lambda spec, attempt: crashes.append(spec.index),
    )
    recovered, lethal, sibling = results
    return {
        # crash-once: respawned, retried, and the respawn is excluded
        # from the recorded attempts (infrastructure noise).
        "contained_crash_recovered": bool(
            recovered.ok and recovered.attempts == 1
        ),
        # crash-always: quarantined as `crashed` after its second kill,
        # with retry budget left over.
        "contained_quarantined": bool(
            lethal.status == "crashed" and lethal.attempts == 2
        ),
        "contained_sibling_ok": bool(sibling.ok),
        "contained_worker_crashes": len(crashes),  # 1 + 2
    }


def _phase_worker_kill(tmp: Path, cfg: Mapping[str, Any]) -> Dict[str, Any]:
    """Byte identity of a grid whose workers each die once to SIGKILL."""
    from repro.runner.api import run_grid

    seeds = int(cfg["inner_seeds"])
    jobs = max(2, int(cfg["jobs"]))  # crash-once inline would kill *us*
    marker_dir = tmp / "kill-markers"
    marker_dir.mkdir(parents=True, exist_ok=True)
    probe = {
        "probe": True, "sleep_s": 0.0,
        "crash_marker_dir": str(marker_dir),
    }
    chaos = run_grid("X16", seeds=seeds, overrides=[probe], jobs=jobs,
                     cache_dir=None, use_cache=False)
    calm = run_grid("X16", seeds=seeds, overrides=[probe], jobs=jobs,
                    cache_dir=None, use_cache=False)
    return {
        "worker_kill_crashes": chaos.stats["worker_crashes"],  # one/seed
        "worker_kill_all_ok": bool(chaos.all_ok),
        "worker_kill_byte_identical": _canonical(chaos) == _canonical(calm),
    }


def _count_journalled_done(journal_dir: Path) -> int:
    """Completed-shard records across every grid journal in the dir."""
    if not journal_dir.exists():
        return 0
    done = 0
    for path in journal_dir.glob("*.jsonl"):
        done = max(done, len(read_journal(path).of_kind("shard-done")))
    return done


def _phase_parent_kill(tmp: Path, cfg: Mapping[str, Any]) -> Dict[str, Any]:
    """SIGKILL a real ``repro run`` mid-grid; resume to identical bytes."""
    from repro.runner.api import run_grid

    seeds = int(cfg["inner_seeds"])
    jobs = max(2, int(cfg["jobs"]))
    sleep_s = float(cfg["probe_sleep_s"])
    kill_after = int(cfg["kill_after_done"])
    deadline_s = float(cfg["deadline_s"])
    probe = {"probe": True, "sleep_s": sleep_s}

    clean = run_grid("X16", seeds=seeds, overrides=[probe], jobs=jobs,
                     cache_dir=None, use_cache=False)

    cache_dir = tmp / "run-cache"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run", "X16",
         "--seeds", str(seeds), "--jobs", str(jobs),
         "--cache-dir", str(cache_dir),
         "--out-dir", str(tmp / "run-out"),
         "--set", "probe=true", "--set", f"sleep_s={sleep_s}"],
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    killed = False
    deadline = time.monotonic() + deadline_s
    journal_dir = cache_dir / "journal"
    while time.monotonic() < deadline and proc.poll() is None:
        if _count_journalled_done(journal_dir) >= kill_after:
            proc.kill()
            killed = True
            break
        time.sleep(0.02)
    if proc.poll() is None and not killed:
        proc.kill()  # watchdog: never leak the child
    proc.wait(timeout=30)

    resumed = run_grid("X16", seeds=seeds, overrides=[probe], jobs=jobs,
                       cache_dir=str(cache_dir), resume=True)
    return {
        "parent_killed_mid_grid": killed,
        "parent_kill_replayed_from_journal": bool(
            resumed.stats["journal_replayed"] >= kill_after
        ),
        "parent_kill_byte_identical": _canonical(resumed) == _canonical(clean),
    }


def _start_serve(
    cache_dir: Path, deadline_s: float
) -> "tuple[subprocess.Popen, int]":
    """Launch ``python -m repro serve --port 0``; return (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(cache_dir)],
        env=_subprocess_env(),
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    deadline = time.monotonic() + deadline_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("event") == "ready":
            return proc, int(record["port"])
    proc.kill()
    proc.wait(timeout=30)
    raise ServiceError(
        "serve subprocess never printed its ready line", code="connection"
    )


def _phase_service_kill(tmp: Path, cfg: Mapping[str, Any]) -> Dict[str, Any]:
    """SIGKILL a real service mid-job; restart, recover, resubmit."""
    from repro.client import ServiceClient

    deadline_s = float(cfg["deadline_s"])
    cache_dir = tmp / "svc-cache"
    metrics: Dict[str, Any] = {}

    first, port = _start_serve(cache_dir, deadline_s)
    second: Optional[subprocess.Popen] = None
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", client_id="x16")
        client.wait_until_ready(timeout_s=deadline_s)
        done_env = client.submit("X16", seeds=1, overrides=[{"probe": True}])
        done_res = client.result(done_env["job_id"], timeout_s=deadline_s)
        metrics["service_first_job_ok"] = bool(done_res.ok)

        # Submit a slow job and SIGKILL the service right after its 202:
        # the job-accepted record is fsync'd before the response, so the
        # restart MUST re-admit it.
        lost_env = client.submit("X16", seeds=1, overrides=[{
            "probe": True, "sleep_s": float(cfg["service_sleep_s"]),
        }])
        first.kill()
        first.wait(timeout=30)

        second, port = _start_serve(cache_dir, deadline_s)
        client = ServiceClient(f"http://127.0.0.1:{port}", client_id="x16")
        client.wait_until_ready(timeout_s=deadline_s)
        lost_res = client.result(lost_env["job_id"], timeout_s=deadline_s)
        counters = client.metrics().get("metrics", {}).get("counters", {})
        metrics["service_job_recovered"] = (
            int(counters.get("service.jobs_recovered", 0)) == 1
        )
        metrics["service_recovered_job_ok"] = bool(lost_res.ok)

        # Resubmitting the already-completed first job must be fully
        # cache-served: zero pool spawns, zero recomputes.
        again_env = client.submit("X16", seeds=1,
                                  overrides=[{"probe": True}])
        again_res = client.result(again_env["job_id"], timeout_s=deadline_s)
        metrics["service_resubmit_cache_served"] = bool(
            again_res.ok
            and again_res.stats.get("pool_spawns") == 0
            and again_res.stats.get("recomputed") == 0
        )
        try:
            client.shutdown()
        except ServiceError:
            pass  # the socket may drop as the server stops: that's a stop
        second.wait(timeout=30)
    finally:
        for proc in (first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    return metrics


def self_chaos_exhibit(
    seed: int = 0, overrides: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Run the full X16 kill schedule; return the invariant verdicts.

    ``overrides`` updates :data:`CHAOS_DEFAULTS`. The headline metric is
    ``byte_identical`` -- both SIGKILL scenarios (worker and parent)
    merged to the canonical document of an undisturbed run. ``seed`` is
    accepted for grid-protocol uniformity; the verdicts are seed-
    independent by design.
    """
    import tempfile

    cfg = dict(CHAOS_DEFAULTS)
    cfg.update(overrides or {})
    metrics: Dict[str, Any] = {"chaos_seed": int(seed)}
    with tempfile.TemporaryDirectory(prefix="repro-x16-") as scratch:
        tmp = Path(scratch)
        metrics.update(_phase_containment(tmp))
        metrics.update(_phase_worker_kill(tmp, cfg))
        metrics.update(_phase_parent_kill(tmp, cfg))
        metrics.update(_phase_service_kill(tmp, cfg))
    metrics["byte_identical"] = bool(
        metrics["worker_kill_byte_identical"]
        and metrics["parent_kill_byte_identical"]
    )
    return metrics

"""Workload generators and the benchmark suite (Recommendation 9).

Seeded synthetic data (Zipf text, clickstreams, relational tables,
sensor/science streams, web graphs), the five-workload standard suite,
the Catapult-style search service (E2), the HPC/Big Data convergence
trigger pipeline (E14), the experiment-service admission model under
planetary traffic (X15), the self-chaos crash-recovery harness that
SIGKILLs the reproduction stack itself (X16) and the chaos x load
matrix re-measuring the resilience claims under scenario-generated
traffic (X17).
"""

from repro.workloads.chaos import (
    chaos_exhibit,
    latency_summary,
    run_memory_chaos,
    run_scheduler_chaos,
    run_search_chaos,
)
from repro.workloads.edge import (
    EdgeScenario,
    PlacementReport,
    WanLink,
    best_placement,
    evaluate_placements,
)
from repro.workloads.fabricsim import (
    FabricRunResult,
    FabricWorkload,
    simulate_fabric,
    simulate_fabric_sharded,
)
from repro.workloads.generator import (
    clickstream,
    gaussian_blobs,
    sales_table,
    science_events,
    sensor_readings,
    web_graph,
    zipf_documents,
)
from repro.workloads.scenario import (
    TRAFFIC_REGIMES,
    chaos_load_exhibit,
    regime_spec,
    run_memory_load,
    run_search_load,
)
from repro.workloads.search import (
    SearchRunResult,
    SearchServiceConfig,
    max_qps_within_sla,
    run_search_service,
    tail_latency_reduction,
)
from repro.workloads.selfchaos import (
    CHAOS_DEFAULTS,
    probe_metrics,
    self_chaos_exhibit,
)
from repro.workloads.servicesim import (
    ADMISSION_POLICIES,
    run_service_traffic,
    service_exhibit,
)
from repro.workloads.streams import (
    TriggerReport,
    convergence_comparison,
    run_trigger_pipeline,
)
from repro.workloads.suite import (
    BenchmarkDefinition,
    BenchmarkScore,
    compare_architectures,
    run_suite,
    standard_suite,
)

__all__ = [
    "ADMISSION_POLICIES",
    "BenchmarkDefinition",
    "BenchmarkScore",
    "CHAOS_DEFAULTS",
    "EdgeScenario",
    "FabricRunResult",
    "FabricWorkload",
    "PlacementReport",
    "SearchRunResult",
    "SearchServiceConfig",
    "TRAFFIC_REGIMES",
    "TriggerReport",
    "WanLink",
    "best_placement",
    "chaos_exhibit",
    "chaos_load_exhibit",
    "clickstream",
    "compare_architectures",
    "convergence_comparison",
    "evaluate_placements",
    "gaussian_blobs",
    "latency_summary",
    "max_qps_within_sla",
    "probe_metrics",
    "regime_spec",
    "run_memory_chaos",
    "run_memory_load",
    "run_scheduler_chaos",
    "run_search_chaos",
    "run_search_load",
    "run_search_service",
    "run_service_traffic",
    "run_suite",
    "run_trigger_pipeline",
    "sales_table",
    "science_events",
    "self_chaos_exhibit",
    "sensor_readings",
    "service_exhibit",
    "simulate_fabric",
    "simulate_fabric_sharded",
    "standard_suite",
    "tail_latency_reduction",
    "web_graph",
    "zipf_documents",
]

"""Edge vs data-center placement (R11's "edge computing and cloud
computing environments calling for heterogeneous hardware platforms").

§III frames IoT as "enabled by and dependent on the tremendous data
collections and compute capacities in the back-end machines"; R11 adds
edge heterogeneity. This module models the canonical trade: process a
sensor stream *at the edge* (weak device, no WAN cost) or *in the data
center* (strong devices, WAN transfer and latency), or *split* (filter at
the edge, aggregate centrally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analytics.blocks import BlockRegistry, default_blocks
from repro.errors import ModelError
from repro.node.device import ComputeDevice


@dataclass(frozen=True)
class WanLink:
    """The constrained edge-to-datacenter uplink."""

    rate_mbps: float = 50.0
    rtt_s: float = 0.03
    usd_per_gb: float = 0.08  # metered backhaul

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0 or self.rtt_s < 0 or self.usd_per_gb < 0:
            raise ModelError("invalid WAN parameters")

    def transfer_time_s(self, size_bytes: float) -> float:
        """Serialization plus one propagation delay."""
        if size_bytes < 0:
            raise ModelError("negative transfer size")
        return size_bytes * 8.0 / (self.rate_mbps * 1e6) + self.rtt_s

    def transfer_cost_usd(self, size_bytes: float) -> float:
        """Metered backhaul cost."""
        return size_bytes / 1e9 * self.usd_per_gb


@dataclass(frozen=True)
class EdgeScenario:
    """One placement decision's inputs.

    ``n_events`` events of ``event_bytes`` arrive at the edge per batch;
    the filter stage passes ``selectivity`` of them; the aggregate stage
    runs on whatever survives.
    """

    n_events: int
    event_bytes: float
    selectivity: float
    filter_block: str = "filter-scan"
    aggregate_block: str = "hash-aggregate"

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ModelError("need at least one event")
        if self.event_bytes <= 0:
            raise ModelError("event size must be positive")
        if not 0.0 < self.selectivity <= 1.0:
            raise ModelError("selectivity must be in (0, 1]")


@dataclass
class PlacementReport:
    """Latency and cost of one placement strategy."""

    strategy: str
    latency_s: float
    wan_bytes: float
    wan_cost_usd: float
    energy_j: float


def evaluate_placements(
    scenario: EdgeScenario,
    edge_device: ComputeDevice,
    dc_device: ComputeDevice,
    wan: WanLink = WanLink(),
    blocks: BlockRegistry = None,
) -> Dict[str, PlacementReport]:
    """Latency/cost of edge-only, dc-only, and split placements."""
    registry = blocks or default_blocks()
    filter_block = registry.get(scenario.filter_block)
    aggregate_block = registry.get(scenario.aggregate_block)
    n = scenario.n_events
    survivors = max(1, int(n * scenario.selectivity))
    raw_bytes = n * scenario.event_bytes
    filtered_bytes = survivors * scenario.event_bytes

    reports: Dict[str, PlacementReport] = {}

    # Edge-only: both stages on the weak device, nothing crosses the WAN
    # except the final aggregate (negligible, ignored).
    edge_time = filter_block.time_s(edge_device, n) + aggregate_block.time_s(
        edge_device, survivors
    )
    reports["edge-only"] = PlacementReport(
        strategy="edge-only",
        latency_s=edge_time,
        wan_bytes=0.0,
        wan_cost_usd=0.0,
        energy_j=edge_time * edge_device.tdp_w,
    )

    # DC-only: ship everything, process on the strong device.
    dc_compute = filter_block.time_s(dc_device, n) + aggregate_block.time_s(
        dc_device, survivors
    )
    reports["dc-only"] = PlacementReport(
        strategy="dc-only",
        latency_s=wan.transfer_time_s(raw_bytes) + dc_compute,
        wan_bytes=raw_bytes,
        wan_cost_usd=wan.transfer_cost_usd(raw_bytes),
        energy_j=dc_compute * dc_device.tdp_w,
    )

    # Split: filter at the edge, ship survivors, aggregate in the DC.
    split_edge = filter_block.time_s(edge_device, n)
    split_dc = aggregate_block.time_s(dc_device, survivors)
    reports["split"] = PlacementReport(
        strategy="split",
        latency_s=split_edge + wan.transfer_time_s(filtered_bytes) + split_dc,
        wan_bytes=filtered_bytes,
        wan_cost_usd=wan.transfer_cost_usd(filtered_bytes),
        energy_j=split_edge * edge_device.tdp_w + split_dc * dc_device.tdp_w,
    )
    return reports


def best_placement(
    scenario: EdgeScenario,
    edge_device: ComputeDevice,
    dc_device: ComputeDevice,
    wan: WanLink = WanLink(),
    objective: str = "latency",
) -> PlacementReport:
    """The winning strategy under ``objective`` in {latency, wan_cost}."""
    if objective not in ("latency", "wan_cost"):
        raise ModelError(f"unknown objective: {objective!r}")
    reports = evaluate_placements(scenario, edge_device, dc_device, wan)

    def score(report: PlacementReport) -> float:
        if objective == "latency":
            return report.latency_s
        return report.wan_cost_usd

    return min(reports.values(), key=lambda r: (score(r), r.strategy))

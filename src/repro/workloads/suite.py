"""The standard benchmark suite (Recommendation 9).

R9: "It is difficult for Industry to assess the benefits of using novel
hardware. We propose establishing benchmarks to compare current and novel
architectures using Big Data applications." This module *is* that
proposal: a fixed set of Big Data workloads, each defined as a dataflow
plan plus a seeded dataset, runnable unchanged on any simulated cluster
so architectures can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analytics import kmeans, tokenize
from repro.cluster.machine import Cluster
from repro.errors import ModelError
from repro.frameworks import (
    BatchExecutor,
    OffloadPolicy,
    PartitionedDataset,
    Plan,
    cpu_only,
)
from repro.workloads.generator import (
    gaussian_blobs,
    sales_table,
    web_graph,
    zipf_documents,
)


@dataclass
class BenchmarkDefinition:
    """One suite entry.

    Batch entries supply a dataset factory and a plan factory; entries
    with their own execution model (streaming) supply ``runner`` instead:
    ``runner(cluster, policy, scale) -> (sim_time_s, energy_j, n_out)``.
    """

    name: str
    description: str
    make_dataset: Optional[Callable[[int], PartitionedDataset]] = None
    make_plan: Optional[Callable[[], Plan]] = None
    runner: Optional[Callable] = None

    def __post_init__(self) -> None:
        batch_style = self.make_dataset is not None and self.make_plan is not None
        if batch_style == (self.runner is not None):
            raise ModelError(
                f"benchmark {self.name}: provide dataset+plan or a runner, "
                "not both / neither"
            )


@dataclass
class BenchmarkScore:
    """One (benchmark, architecture) measurement."""

    benchmark: str
    architecture: str
    sim_time_s: float
    energy_j: float
    n_output_records: int

    @property
    def records_per_joule(self) -> float:
        """Energy efficiency of the run."""
        if self.energy_j <= 0:
            return float("inf")
        return self.n_output_records / self.energy_j


def _wordcount_dataset(scale: int) -> PartitionedDataset:
    docs = zipf_documents(200 * scale, 40, seed=9)
    return PartitionedDataset.from_records(docs, 8, record_bytes=240)


def _wordcount_plan() -> Plan:
    return (
        Plan.source()
        .flat_map(tokenize, block="regex-extract", label="tokenize")
        .map(lambda w: (w, 1), block="filter-scan", label="pair")
        .reduce_by_key(
            lambda kv: kv[0],
            lambda a, b: (a[0], a[1] + b[1]),
            label="count",
        )
    )


def _sort_dataset(scale: int) -> PartitionedDataset:
    rows = sales_table(2_000 * scale, seed=11)
    return PartitionedDataset.from_records(rows, 8, record_bytes=120)


def _sort_plan() -> Plan:
    return Plan.source().sort_by(lambda r: (-r["amount"], r["order_id"]),
                                 label="terasort")


def _query_dataset(scale: int) -> PartitionedDataset:
    rows = sales_table(2_000 * scale, seed=13)
    return PartitionedDataset.from_records(rows, 8, record_bytes=120)


def _query_plan() -> Plan:
    return (
        Plan.source()
        .filter(lambda r: r["region"] == "EU", block="filter-scan",
                label="where-eu")
        .map(lambda r: (r["sector"], r["amount"]), block="filter-scan",
             label="project")
        .reduce_by_key(
            lambda kv: kv[0],
            lambda a, b: (a[0], a[1] + b[1]),
            label="sum-by-sector",
        )
    )


def _kmeans_dataset(scale: int) -> PartitionedDataset:
    points, _ = gaussian_blobs(500 * scale, seed=17)
    return PartitionedDataset.from_records(
        [tuple(p) for p in points], 8, record_bytes=64
    )


def _kmeans_plan() -> Plan:
    import numpy as np

    def cluster_partition(kv):
        # One Lloyd iteration per partition batch (the heavy kernel).
        key, records = kv
        arr = np.asarray([point for _, point in records])
        result = kmeans(arr, k=min(5, len(arr)), max_iterations=5, seed=0)
        return (key, result.inertia)

    return (
        Plan.source()
        .map(lambda p: (hash(p) % 8, p), block="feature-extract",
             label="featurize")
        .group_by_key(lambda kv: kv[0], label="partition")
        .map(cluster_partition, block="dense-gemm", label="lloyd")
    )


def _pagerank_dataset(scale: int) -> PartitionedDataset:
    graph = web_graph(300 * scale, seed=19)
    edges = [(src, dst) for src, dsts in graph.items() for dst in dsts]
    return PartitionedDataset.from_records(edges, 8, record_bytes=32)


def _pagerank_plan() -> Plan:
    return (
        Plan.source()
        .map(lambda e: (e[0], e[1]), block="filter-scan", label="parse")
        .group_by_key(lambda kv: kv[0], label="adjacency")
        .map(lambda kv: (kv[0], len(kv[1])), block="hash-aggregate",
             label="degree")
    )


def _streaming_runner(cluster: Cluster, policy, scale: int):
    """Windowed sensor aggregation on the best streaming device.

    Device choice follows the offload policy's spirit: cpu_only pins the
    host CPU; other policies pick the fastest capable device on the
    first server (streaming engines pin operators to devices).
    """
    from repro.analytics.blocks import default_blocks
    from repro.frameworks.offload import OffloadPolicy
    from repro.frameworks.streaming import (
        StreamRecord,
        StreamingExecutor,
        TumblingWindow,
    )
    from repro.workloads.generator import sensor_readings

    readings = sensor_readings(2_000 * scale, seed=29)
    records = [
        StreamRecord(r["time_s"], r["sensor"], r["value"]) for r in readings
    ]
    server = cluster.server_at(cluster.hosts[0])
    block = default_blocks().get("hash-aggregate")
    device = policy.choose(block, server, len(records))
    executor = StreamingExecutor(
        device,
        TumblingWindow(1.0),
        aggregate_fn=lambda values: sum(values) / len(values),
    )
    report = executor.run(records)
    return report.sim_time_s, report.energy_j, len(report.results)


def standard_suite() -> List[BenchmarkDefinition]:
    """The six-workload R9 suite (five batch + one streaming)."""
    return [
        BenchmarkDefinition(
            "wordcount", "Zipf text tokenize + count", _wordcount_dataset,
            _wordcount_plan,
        ),
        BenchmarkDefinition(
            "terasort", "global sort of sales records", _sort_dataset,
            _sort_plan,
        ),
        BenchmarkDefinition(
            "sql-query", "filter/project/aggregate relational query",
            _query_dataset, _query_plan,
        ),
        BenchmarkDefinition(
            "kmeans", "feature extraction + clustering", _kmeans_dataset,
            _kmeans_plan,
        ),
        BenchmarkDefinition(
            "pagerank-prep", "edge list to ranked adjacency",
            _pagerank_dataset, _pagerank_plan,
        ),
        BenchmarkDefinition(
            "stream-windows", "tumbling-window sensor aggregation",
            runner=_streaming_runner,
        ),
    ]


def run_suite(
    cluster: Cluster,
    architecture_name: str,
    policy: Optional[OffloadPolicy] = None,
    scale: int = 1,
    benchmarks: Optional[List[BenchmarkDefinition]] = None,
) -> List[BenchmarkScore]:
    """Run every suite benchmark on ``cluster``; returns one score each."""
    if scale < 1:
        raise ModelError(f"scale must be >= 1, got {scale}")
    policy = policy or cpu_only()
    executor = BatchExecutor(cluster, policy=policy)
    scores = []
    for definition in benchmarks or standard_suite():
        if definition.runner is not None:
            sim_time, energy, n_out = definition.runner(
                cluster, policy, scale
            )
        else:
            dataset = definition.make_dataset(scale)
            result = executor.run(definition.make_plan(), dataset)
            sim_time = result.sim_time_s
            energy = result.energy_j
            n_out = result.n_output_records
        scores.append(
            BenchmarkScore(
                benchmark=definition.name,
                architecture=architecture_name,
                sim_time_s=sim_time,
                energy_j=energy,
                n_output_records=n_out,
            )
        )
    return scores


def compare_architectures(
    configurations: Dict[str, tuple],
    scale: int = 1,
) -> Dict[str, List[BenchmarkScore]]:
    """Side-by-side suite runs: name -> (cluster, policy)."""
    if not configurations:
        raise ModelError("need at least one architecture")
    return {
        name: run_suite(cluster, name, policy=policy, scale=scale)
        for name, (cluster, policy) in configurations.items()
    }

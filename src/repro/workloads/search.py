"""Catapult-style search-ranking service (experiment E2).

The paper's flagship evidence for Big Data hardware specialization is
Microsoft's Catapult deployment: FPGA acceleration of Bing ranking
yielding "a 29% reduction in tail latency". This module reproduces the
*mechanism* with a discrete-event model of a ranking service:

- requests arrive Poisson at a configurable QPS;
- a pool of CPU workers runs feature extraction (lognormal service);
- document ranking then runs either on the same CPU worker (baseline,
  long and variable) or on a pipelined FPGA (accelerated: the CPU worker
  is released early and the FPGA stage is fast and near-deterministic).

Offloading shortens and de-variances the critical stage *and* frees CPU
workers, which is exactly where P99 improvements come from. The E2 bench
reports the paper-vs-measured P99 reduction at iso-throughput and the
throughput gain at iso-SLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine import Observability, RandomStream, Resource, Simulator
from repro.errors import ModelError


@dataclass(frozen=True)
class SearchServiceConfig:
    """Service-time and capacity parameters (2016-plausible magnitudes)."""

    n_cpu_workers: int = 16
    frontend_median_s: float = 3.0e-3
    frontend_sigma: float = 0.4
    cpu_rank_median_s: float = 2.0e-3
    cpu_rank_sigma: float = 0.55
    fpga_rank_s: float = 0.8e-3
    fpga_pipeline_slots: int = 8
    fpga_jitter_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.n_cpu_workers < 1 or self.fpga_pipeline_slots < 1:
            raise ModelError("worker and slot counts must be >= 1")
        if min(
            self.frontend_median_s, self.cpu_rank_median_s, self.fpga_rank_s
        ) <= 0:
            raise ModelError("service times must be positive")


@dataclass
class SearchRunResult:
    """Latency samples of one simulated run."""

    latencies_s: List[float]
    qps: float
    accelerated: bool

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds."""
        import numpy as np

        if not self.latencies_s:
            raise ModelError("run produced no samples")
        return float(np.percentile(self.latencies_s, q))

    @property
    def p50_s(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p99_s(self) -> float:
        """The Catapult metric: 99th-percentile latency."""
        return self.percentile(99)


def run_search_service(
    qps: float,
    n_requests: int,
    accelerated: bool,
    config: SearchServiceConfig = SearchServiceConfig(),
    seed: int = 2016,
    observability: Optional[Observability] = None,
) -> SearchRunResult:
    """Simulate ``n_requests`` through the service at ``qps``.

    With an :class:`~repro.engine.Observability` attached the run emits
    per-stage spans (request/frontend/rank), worker-pool gauges and a
    latency histogram; without one the instrumentation is free.
    """
    if qps <= 0:
        raise ModelError(f"qps must be positive, got {qps}")
    if n_requests < 1:
        raise ModelError("need at least one request")
    sim = Simulator(observability=observability)
    arrivals = RandomStream(seed, "arrivals")
    service = RandomStream(seed, "service")
    cpu_pool = Resource(
        sim, capacity=config.n_cpu_workers, name="search.cpu_pool"
    )
    fpga_pool = Resource(
        sim, capacity=config.fpga_pipeline_slots, name="search.fpga_pool"
    )
    latencies: List[float] = []

    def request(sim, arrived_s: float):
        with sim.span("search.request", subsystem="workloads.search"):
            yield cpu_pool.acquire()
            with sim.span("search.frontend", subsystem="workloads.search"):
                yield sim.timeout(
                    service.lognormal(
                        config.frontend_median_s, config.frontend_sigma
                    )
                )
            if accelerated:
                # Hand off to the FPGA and free the CPU worker immediately.
                cpu_pool.release()
                with sim.span("search.fpga_rank", subsystem="workloads.search"):
                    yield fpga_pool.acquire()
                    yield sim.timeout(
                        service.lognormal(
                            config.fpga_rank_s, config.fpga_jitter_sigma
                        )
                    )
                    fpga_pool.release()
            else:
                with sim.span("search.cpu_rank", subsystem="workloads.search"):
                    yield sim.timeout(
                        service.lognormal(
                            config.cpu_rank_median_s, config.cpu_rank_sigma
                        )
                    )
                cpu_pool.release()
            latencies.append(sim.now - arrived_s)

    def source(sim):
        for _ in range(n_requests):
            sim.spawn(request(sim, sim.now), name="search.request")
            yield sim.timeout(arrivals.exponential(1.0 / qps))

    sim.spawn(source(sim), name="search.source")
    sim.run()
    if len(latencies) != n_requests:
        raise ModelError("not all requests completed")
    if observability is not None:
        registry = observability.registry
        registry.counter("search.requests").inc(len(latencies))
        histogram = registry.histogram("search.latency_s")
        for latency in latencies:
            histogram.observe(latency)
    return SearchRunResult(latencies, qps, accelerated)


def tail_latency_reduction(
    qps: float,
    n_requests: int = 20_000,
    config: SearchServiceConfig = SearchServiceConfig(),
    seed: int = 2016,
) -> dict:
    """The E2 headline: P99 with and without the FPGA at iso-throughput."""
    baseline = run_search_service(qps, n_requests, False, config, seed)
    accelerated = run_search_service(qps, n_requests, True, config, seed)
    reduction = 1.0 - accelerated.p99_s / baseline.p99_s
    return {
        "qps": qps,
        "p99_cpu_s": baseline.p99_s,
        "p99_fpga_s": accelerated.p99_s,
        "p50_cpu_s": baseline.p50_s,
        "p50_fpga_s": accelerated.p50_s,
        "tail_reduction": reduction,
    }


def max_qps_within_sla(
    sla_p99_s: float,
    accelerated: bool,
    n_requests: int = 10_000,
    config: SearchServiceConfig = SearchServiceConfig(),
    seed: int = 2016,
    qps_lo: float = 100.0,
    qps_hi: float = 50_000.0,
    tolerance: float = 0.02,
) -> float:
    """Highest sustainable QPS whose P99 stays under ``sla_p99_s``.

    Bisection on offered load; the Catapult deployment's second claim was
    serving ~2x the throughput at equivalent tail latency.
    """
    if sla_p99_s <= 0:
        raise ModelError("SLA must be positive")

    def meets(qps: float) -> bool:
        result = run_search_service(qps, n_requests, accelerated, config, seed)
        return result.p99_s <= sla_p99_s

    if not meets(qps_lo):
        raise ModelError(f"SLA unattainable even at {qps_lo} qps")
    if meets(qps_hi):
        return qps_hi
    lo, hi = qps_lo, qps_hi
    while hi / lo > 1.0 + tolerance:
        mid = (lo * hi) ** 0.5
        if meets(mid):
            lo = mid
        else:
            hi = mid
    return lo

"""HPC / Big Data convergence workload (Recommendation 2, experiment E14).

R2 points at "large scientific experiments, including the Large Hadron
Collider and Square Kilometer Array [that] involve processing huge
streams of data and are increasingly adopting Big Data technologies".
This module runs a detector-event trigger pipeline (filter -> window ->
aggregate) on the streaming engine and reports the sustainable ingest
rate per node for different devices -- the dual-purpose-hardware argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ModelError
from repro.frameworks.streaming import (
    StreamRecord,
    StreamingExecutor,
    TumblingWindow,
)
from repro.node.device import ComputeDevice
from repro.workloads.generator import science_events


@dataclass
class TriggerReport:
    """Outcome of running the trigger pipeline on one device."""

    device: str
    n_events: int
    n_triggered: int
    n_windows: int
    sim_time_s: float
    sustainable_rate_hz: float

    @property
    def trigger_fraction(self) -> float:
        """Fraction of events passing the energy cut."""
        if self.n_events == 0:
            return 0.0
        return self.n_triggered / self.n_events


def run_trigger_pipeline(
    device: ComputeDevice,
    n_events: int = 20_000,
    energy_cut_gev: float = 10.0,
    window_s: float = 0.01,
    seed: int = 23,
) -> TriggerReport:
    """Filter events above ``energy_cut_gev``, window them per channel.

    The per-event cost is charged as the ``filter-scan`` block (the L1
    trigger); windowed aggregation as ``hash-aggregate``.
    """
    if n_events < 1:
        raise ModelError("need at least one event")
    if energy_cut_gev <= 0:
        raise ModelError("energy cut must be positive")
    events = science_events(n_events, seed=seed)
    triggered = [e for e in events if e["energy_gev"] >= energy_cut_gev]
    records = [
        StreamRecord(e["time_s"], e["channel"] % 16, e["energy_gev"])
        for e in triggered
    ]
    executor = StreamingExecutor(
        device,
        TumblingWindow(window_s),
        aggregate_fn=lambda values: (len(values), max(values)),
        block="hash-aggregate",
    )
    report = executor.run(records)
    # Ingest cost: every raw event passes the L1 filter block.
    from repro.analytics.blocks import default_blocks

    filter_time = default_blocks().get("filter-scan").time_s(device, n_events)
    total_time = filter_time + report.sim_time_s
    return TriggerReport(
        device=device.name,
        n_events=n_events,
        n_triggered=len(triggered),
        n_windows=len(report.results),
        sim_time_s=total_time,
        sustainable_rate_hz=n_events / total_time,
    )


def convergence_comparison(
    devices: List[ComputeDevice], n_events: int = 500_000
) -> Dict[str, TriggerReport]:
    """Trigger-pipeline sustainable rates across a device list.

    ``n_events`` defaults to a batch large enough that accelerator launch
    overhead amortizes -- the regime LHC/SKA triggers actually run in.
    """
    if not devices:
        raise ModelError("need at least one device")
    return {
        device.name: run_trigger_pipeline(device, n_events=n_events)
        for device in devices
    }

"""X15: the experiment service modelled under planetary-scale traffic.

The tentpole service (:mod:`repro.service`) admits jobs through a
bounded queue, coalesces identical content-addressed submissions, and
serves repeats from the result cache. Those mechanisms are sized for
one machine; the paper's premise is *millions of users*. This module
closes the loop by modelling the same service shape in the DES engine
at a scale no real deployment of the reproduction could reach:
open-loop Poisson arrivals from a large client population, a
Zipf-popular catalogue of job keys (popular grids are submitted by many
users), a worker pool for grid execution, and a composable-rack fabric
whose spine uplinks flap underneath the workers -- a degraded fabric
stretches every in-flight execution, which is precisely when an
unbounded admission queue destroys tail latency.

Three admission policies are compared:

- ``"open"``    -- no admission control: every miss queues, nothing is
  shed; under spine faults the queue grows without bound and P99 is
  dominated by queueing delay.
- ``"bounded"`` -- the service's bounded queue: a miss arriving with
  ``queue_cap`` requests already waiting is shed with an explicit
  ``429``-equivalent; waiting work is bounded, so served requests keep
  a bounded tail.
- ``"fair"``    -- bounded plus the per-client in-flight cap, which
  stops a single heavy client from consuming the whole queue; shed
  concentrates on the heaviest clients.

Coalescing and the completed-result cache apply identically under all
three policies (they are what make the offered load survivable at all);
the policies differ only in what happens to cache-missing arrivals when
the pool is saturated. Headline metrics per policy: served P50/P99/P999
latency, shed rate, coalesce rate, cache-hit rate and the number of
executions actually run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine import FaultInjector, FaultSpec, RandomStream, Resource, Simulator
from repro.engine.faults import LINK_FLAP
from repro.errors import ModelError, TopologyError
from repro.mc.traffic import poisson_inter_arrivals
from repro.network.routing import ecmp_paths
from repro.network.topology import disaggregated_fabric
from repro.workloads.chaos import latency_summary

#: The admission policies X15 sweeps.
ADMISSION_POLICIES = ("open", "bounded", "fair")

#: Latency of serving a completed job straight from the result cache.
CACHE_SERVE_S = 2.0e-4


def run_service_traffic(
    policy: str,
    n_requests: int = 50_000,
    arrival_rate_hz: float = 2_000.0,
    n_workers: int = 8,
    queue_cap: int = 48,
    per_client_cap: int = 4,
    n_clients: int = 100,
    client_skew: float = 1.5,
    n_job_kinds: int = 6_000,
    popularity_skew: float = 1.05,
    service_median_s: float = 0.008,
    service_sigma: float = 0.8,
    spine_mtbf_s: float = 2.0,
    spine_mttr_s: float = 1.2,
    seed: int = 0,
) -> Dict[str, Any]:
    """One admission policy under open-loop traffic with spine faults.

    Arrivals are Poisson at ``arrival_rate_hz``; each request is a
    ``(client, job_kind)`` draw -- clients Zipf-skewed (a few heavy
    users), job kinds Zipf-skewed (popular grids recur). A request whose
    kind has already completed is served from cache in
    :data:`CACHE_SERVE_S`; one whose kind is in flight coalesces onto
    the running execution; otherwise the policy decides: admit to the
    ``n_workers``-slot pool (queueing if busy) or shed. Execution time
    is lognormal, stretched by the surviving-ECMP-path fraction of the
    ``cpu-pool0 -> mem-pool0`` fabric route sampled at service start
    (spine uplinks flap with the given MTBF/MTTR), so fault windows and
    admission pressure interact the way they would in production.

    Returns the policy's metrics dict; deterministic in ``seed`` alone.
    """
    if policy not in ADMISSION_POLICIES:
        raise ModelError(
            f"unknown admission policy {policy!r}; expected one of "
            f"{ADMISSION_POLICIES}"
        )
    n_spines = 4
    fabric = disaggregated_fabric(
        n_cpu_pools=2, n_mem_pools=2, n_storage_pools=1, n_spines=n_spines,
        pool_gbps=10.0,
    )
    sim = Simulator()
    injector = FaultInjector(sim, seed=seed + 1_515, fabric=fabric)
    horizon_s = n_requests / arrival_rate_hz
    injector.install(
        FaultSpec(
            kind=LINK_FLAP,
            targets=tuple(
                (f"spine{s}", "mem-pool0") for s in range(n_spines)
            ),
            mtbf_s=spine_mtbf_s,
            mttr_s=spine_mttr_s,
            end_s=horizon_s,
        )
    )

    # Arrival generation goes through the scenario library's constant-
    # rate fast path: one exponential batch from the same seeded stream,
    # stream-equivalent to the per-request scalar draws it replaced, so
    # registered metrics stay byte-identical at the default spec.
    inter_arrivals = poisson_inter_arrivals(
        arrival_rate_hz, n_requests, RandomStream(seed, "service.arrivals")
    )
    service = RandomStream(seed, "service.exec")
    clients = RandomStream(seed, "service.clients").zipf_indices(
        n_clients, client_skew, size=n_requests
    )
    kinds = RandomStream(seed, "service.kinds").zipf_indices(
        n_job_kinds, popularity_skew, size=n_requests
    )

    pool = Resource(sim, capacity=n_workers)
    completed: set = set()
    in_flight: Dict[int, Any] = {}  # job kind -> completion event
    client_load: Dict[int, int] = {}  # client -> queued+running requests

    served_latencies: List[float] = []
    counts = {
        "cache_hits": 0, "coalesced": 0, "executed": 0, "shed": 0,
        "shed_client_cap": 0,
    }
    waiting = [0]  # cache-missing requests admitted but not yet serving

    def degradation() -> float:
        """Service-time stretch from the fabric state at service start.

        The full spine set gives factor 1.0; each dead uplink removes an
        ECMP path and concentrates the pool's load on the survivors. An
        unreachable pool stalls execution hardest (double the worst
        reachable stretch) but never loses the job -- the service's
        executor retries transfers internally.
        """
        try:
            paths = ecmp_paths(fabric, "cpu-pool0", "mem-pool0")
        except TopologyError:
            return 2.0 * n_spines
        return n_spines / len(paths)

    def execute(kind: int, client: int, arrived_s: float):
        """One real grid execution; coalesced waiters ride its event."""
        waiting[0] += 1
        yield pool.acquire()
        waiting[0] -= 1
        try:
            duration = (
                service.lognormal(service_median_s, service_sigma)
                * degradation()
            )
            yield sim.timeout(duration)
        finally:
            pool.release()
        counts["executed"] += 1
        completed.add(kind)
        event = in_flight.pop(kind)
        event.succeed()
        client_load[client] -= 1
        served_latencies.append(sim.now - arrived_s)

    def coalesce(kind: int, arrived_s: float):
        yield in_flight[kind]
        served_latencies.append(sim.now - arrived_s)

    def cache_serve(arrived_s: float):
        yield sim.timeout(CACHE_SERVE_S)
        served_latencies.append(sim.now - arrived_s)

    def admit(index: int) -> None:
        kind = int(kinds[index])
        client = int(clients[index])
        if kind in completed:
            counts["cache_hits"] += 1
            sim.spawn(cache_serve(sim.now), name=f"svc.cached{index}")
            return
        if kind in in_flight:
            counts["coalesced"] += 1
            sim.spawn(coalesce(kind, sim.now), name=f"svc.join{index}")
            return
        if policy in ("bounded", "fair") and waiting[0] >= queue_cap:
            counts["shed"] += 1
            return
        if policy == "fair" and client_load.get(client, 0) >= per_client_cap:
            counts["shed"] += 1
            counts["shed_client_cap"] += 1
            return
        in_flight[kind] = sim.event()
        client_load[client] = client_load.get(client, 0) + 1
        sim.spawn(execute(kind, client, sim.now), name=f"svc.exec{index}")

    def source():
        for index in range(n_requests):
            admit(index)
            yield sim.timeout(inter_arrivals[index])

    sim.spawn(source(), name="svc.source")
    sim.run()

    n_served = len(served_latencies)
    if n_served + counts["shed"] != n_requests:
        raise ModelError(
            f"request accounting broken: {n_served} served + "
            f"{counts['shed']} shed != {n_requests}"
        )
    summary = latency_summary(served_latencies)
    return {
        "policy": policy,
        "n_requests": n_requests,
        "served": n_served,
        "executed": counts["executed"],
        "shed_rate": counts["shed"] / n_requests,
        "shed_client_cap": counts["shed_client_cap"],
        "coalesce_rate": counts["coalesced"] / n_requests,
        "cache_hit_rate": counts["cache_hits"] / n_requests,
        "n_faults": len(injector.events),
        **summary,
    }


def service_exhibit(
    n_requests: int = 50_000,
    seed: int = 0,
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """X15: sweep the three admission policies; returns merged metrics.

    Headline comparisons:

    - ``p99_improvement``: fraction of the open-admission P99 that the
      bounded queue removes for served requests (the paper's case for
      admission control over infinite buffering).
    - ``bounded.shed_rate`` / ``fair.shed_rate``: the price of that
      tail, paid in explicit sheds rather than silent queueing.
    - ``fair.shed_client_cap``: how much of fair's shedding the
      per-client cap absorbs (load concentrated on heavy clients).
    - ``execution_savings``: fraction of all requests that never ran a
      grid thanks to coalescing plus the completed-result cache --
      identical machinery to the live service's job table.
    """
    kwargs = dict(overrides or {})
    metrics: Dict[str, Any] = {}
    for policy in ADMISSION_POLICIES:
        part = run_service_traffic(
            policy, n_requests=n_requests, seed=seed, **kwargs
        )
        for key, value in part.items():
            if key != "policy":
                metrics[f"{policy}.{key}"] = value
    metrics["p99_improvement"] = (
        1.0 - metrics["bounded.p99_s"] / metrics["open.p99_s"]
    )
    metrics["fair_extra_shed"] = (
        metrics["fair.shed_rate"] - metrics["bounded.shed_rate"]
    )
    metrics["execution_savings"] = 1.0 - (
        metrics["open.executed"] / metrics["open.n_requests"]
    )
    return metrics

"""Synthetic data generators for the benchmark suite.

Recommendation 8 notes the difficulty of accessing training data in
Europe; every workload in this library therefore ships with a seeded
synthetic generator: Zipf-distributed text, clickstreams, relational
tables, IoT sensor readings and web-like graphs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.randomness import RandomStream
from repro.errors import ModelError

#: A compact wordlist; Zipf sampling makes frequency realistic.
_WORDLIST = [
    "data", "big", "cloud", "server", "network", "query", "stream",
    "latency", "storage", "compute", "model", "learn", "graph", "node",
    "edge", "packet", "switch", "fabric", "tensor", "kernel", "cache",
    "index", "shard", "batch", "window", "join", "scan", "filter",
    "reduce", "map", "sort", "hash", "key", "value", "event", "sensor",
    "market", "price", "order", "trade", "user", "click", "page", "search",
    "rank", "score", "result", "engine", "cluster", "rack",
]


def zipf_documents(
    n_documents: int,
    words_per_document: int,
    skew: float = 1.1,
    seed: int = 0,
) -> List[str]:
    """Documents whose word frequencies follow a Zipf law."""
    if n_documents < 1 or words_per_document < 1:
        raise ModelError("need at least one document and one word")
    rng = RandomStream(seed, "zipf-docs")
    indices = rng.zipf_indices(
        len(_WORDLIST), skew, n_documents * words_per_document
    )
    words = [_WORDLIST[i] for i in indices]
    return [
        " ".join(words[i * words_per_document : (i + 1) * words_per_document])
        for i in range(n_documents)
    ]


def clickstream(
    n_events: int,
    n_users: int = 1000,
    n_pages: int = 200,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Web clickstream events: user, page, dwell time, timestamp."""
    if n_events < 1:
        raise ModelError("need at least one event")
    rng = RandomStream(seed, "clicks")
    users = rng.zipf_indices(n_users, 1.2, n_events)
    pages = rng.zipf_indices(n_pages, 1.4, n_events)
    events = []
    t = 0.0
    for i in range(n_events):
        t += rng.exponential(0.05)
        events.append(
            {
                "time_s": t,
                "user": f"u{users[i]}",
                "page": f"p{pages[i]}",
                "dwell_s": rng.lognormal(8.0, 1.0),
            }
        )
    return events


def sales_table(
    n_rows: int, n_customers: int = 500, seed: int = 0
) -> List[Dict[str, Any]]:
    """A TPC-H-flavoured orders table."""
    if n_rows < 1:
        raise ModelError("need at least one row")
    rng = RandomStream(seed, "sales")
    regions = ("EU", "US", "APAC")
    sectors = ("telecom", "finance", "health", "automotive", "analytics")
    rows = []
    for i in range(n_rows):
        rows.append(
            {
                "order_id": i,
                "customer": f"c{rng.zipf_indices(n_customers, 1.1, 1)[0]}",
                "region": rng.choice(regions, p=[0.5, 0.3, 0.2]),
                "sector": rng.choice(sectors),
                "amount": round(rng.lognormal(120.0, 1.2), 2),
            }
        )
    return rows


def sensor_readings(
    n_readings: int,
    n_sensors: int = 100,
    anomaly_rate: float = 0.01,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """IoT sensor stream with injected anomalies."""
    if n_readings < 1:
        raise ModelError("need at least one reading")
    if not 0.0 <= anomaly_rate < 1.0:
        raise ModelError("anomaly rate must be in [0, 1)")
    rng = RandomStream(seed, "sensors")
    readings = []
    t = 0.0
    for _ in range(n_readings):
        t += rng.exponential(0.01)
        value = rng.normal(20.0, 1.5)
        anomalous = rng.uniform() < anomaly_rate
        if anomalous:
            value += rng.uniform(15.0, 40.0)
        readings.append(
            {
                "time_s": t,
                "sensor": f"s{rng.integer(0, n_sensors)}",
                "value": value,
                "anomalous": anomalous,
            }
        )
    return readings


def web_graph(
    n_nodes: int, edges_per_node: int = 4, seed: int = 0
) -> Dict[str, List[str]]:
    """A preferential-attachment directed graph (power-law in-degree)."""
    if n_nodes < 2:
        raise ModelError("need at least two nodes")
    if edges_per_node < 1:
        raise ModelError("need at least one edge per node")
    rng = RandomStream(seed, "graph")
    nodes = [f"n{i}" for i in range(n_nodes)]
    graph: Dict[str, List[str]] = {node: [] for node in nodes}
    in_degree = np.ones(n_nodes)
    for i in range(1, n_nodes):
        k = min(edges_per_node, i)
        weights = in_degree[:i] / in_degree[:i].sum()
        targets = rng.numpy.choice(i, size=k, replace=False, p=weights)
        for target in targets:
            graph[nodes[i]].append(nodes[int(target)])
            in_degree[int(target)] += 1
    return graph


def gaussian_blobs(
    n_points: int, n_clusters: int = 5, dimensions: int = 8, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Clustered points for the k-means benchmark; returns (points, labels)."""
    if n_points < n_clusters:
        raise ModelError("need at least one point per cluster")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(n_clusters, dimensions))
    labels = rng.integers(0, n_clusters, size=n_points)
    points = centers[labels] + rng.normal(0, 0.5, size=(n_points, dimensions))
    return points, labels


def science_events(
    n_events: int,
    rate_hz: float = 1e5,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """LHC/SKA-like detector events: timestamp, channel, energy (R2/E14).

    Heavy-tailed energies with a rare 'interesting' population -- the
    filter-then-aggregate shape of large-science stream processing.
    """
    if n_events < 1:
        raise ModelError("need at least one event")
    if rate_hz <= 0:
        raise ModelError("rate must be positive")
    rng = RandomStream(seed, "science").numpy
    times = np.cumsum(rng.exponential(1.0 / rate_hz, size=n_events))
    interesting = rng.uniform(size=n_events) < 0.001
    energies = (1.0 + rng.pareto(3.0, size=n_events)) * np.where(
        interesting, 50.0, 1.0
    )
    channels = rng.integers(0, 4096, size=n_events)
    return [
        {
            "time_s": float(times[i]),
            "channel": int(channels[i]),
            "energy_gev": float(energies[i]),
            "interesting": bool(interesting[i]),
        }
        for i in range(n_events)
    ]

"""Chaos experiment X12: workloads under injected faults, with and
without resilience policies.

The paper's disaggregation premise (§IV.A.3) is that remote resources
are only usable if the fabric is *dependable*; its Catapult story (§II)
is about taming tail latency. This module closes the loop on both: it
runs calibrated fault schedules (:mod:`repro.engine.faults`) against
live workloads and measures how much of the damage the classic
tail-tolerance mechanisms (:mod:`repro.engine.resilience`) recover --
reporting the overhead they cost, not just the latency they save.

Three parts, all deterministic given the seed:

- :func:`run_search_chaos` -- an E2-style replicated search backend
  where some replicas intermittently straggle; policy ``"hedged"``
  issues a speculative second copy to another replica after a delay
  (first-wins, loser interrupted), policy ``"off"`` rides out the
  stragglers.
- :func:`run_memory_chaos` -- E8-style reads from disaggregated memory
  pools over a :func:`~repro.network.topology.disaggregated_fabric`
  whose pool uplinks flap; policy ``"resilient"`` wraps each read in a
  deadline plus jittered-backoff retries that fail over to a replica
  pool, policy ``"off"`` issues one read and fails when no path exists.
- :func:`run_scheduler_chaos` -- the online shared scheduler's job
  stream with and without host outage windows, counting killed task
  executions and wasted executor-seconds.

Latency percentiles (p50/p99/p999) are computed only over completed
requests; ``availability`` is the fraction of requests that completed
within the part's SLA, so a policy cannot hide failures by dropping
them. Overhead is reported as extra hedge copies and retry attempts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine import (
    FaultInjector,
    FaultSpec,
    RandomStream,
    Resource,
    RetryPolicy,
    Simulator,
    hedge,
    retry,
    with_deadline,
)
from repro.engine.faults import LINK_FLAP, STRAGGLER
from repro.errors import FaultError, ModelError, RetryExhausted, TopologyError

#: Policies understood by the search part.
SEARCH_POLICIES = ("off", "hedged")
#: Policies understood by the disaggregated-memory part.
MEMORY_POLICIES = ("off", "resilient")


def latency_summary(latencies_s: List[float]) -> Dict[str, float]:
    """p50/p99/p999 and the mean of a latency sample (seconds)."""
    if not latencies_s:
        raise ModelError("no completed requests to summarize")
    array = np.asarray(latencies_s, dtype=np.float64)
    return {
        "p50_s": float(np.percentile(array, 50)),
        "p99_s": float(np.percentile(array, 99)),
        "p999_s": float(np.percentile(array, 99.9)),
        "mean_s": float(array.mean()),
    }


# ---------------------------------------------------------------------------
# Part A: replicated search backend under stragglers (hedging).
# ---------------------------------------------------------------------------


def run_search_chaos(
    policy: str,
    n_requests: int = 4_000,
    qps: float = 900.0,
    n_replicas: int = 6,
    replica_slots: int = 4,
    service_median_s: float = 2.0e-3,
    service_sigma: float = 0.35,
    hedge_delay_s: float = 8.0e-3,
    sla_s: float = 0.025,
    straggler_slowdown: float = 12.0,
    straggler_mtbf_s: float = 0.8,
    straggler_mttr_s: float = 0.25,
    seed: int = 0,
) -> Dict[str, Any]:
    """One search run under straggler faults; returns headline metrics.

    Every request picks a primary replica uniformly; with
    ``policy="hedged"`` a second copy goes to the *next* replica if the
    primary has not answered within ``hedge_delay_s`` (losers are
    interrupted and release their slot). Half the replicas carry a
    straggler fault schedule, so hedging onto the neighbour recovers the
    tail whenever the neighbour is healthy.
    """
    if policy not in SEARCH_POLICIES:
        raise ModelError(
            f"unknown search policy {policy!r}; expected one of "
            f"{SEARCH_POLICIES}"
        )
    sim = Simulator()
    injector = FaultInjector(sim, seed=seed + 101)
    replicas = [f"replica{i}" for i in range(n_replicas)]
    # Odd replicas straggle; even replicas stay healthy, so every
    # straggler's hedge neighbour (i + 1 mod n) is clean.
    # Faults stop *starting* once the arrival stream ends, otherwise the
    # injector's flap processes would keep the simulation alive forever.
    injector.install(
        FaultSpec(
            kind=STRAGGLER,
            targets=tuple(replicas[1::2]),
            mtbf_s=straggler_mtbf_s,
            mttr_s=straggler_mttr_s,
            slowdown=straggler_slowdown,
            end_s=n_requests / qps,
        )
    )
    pools = {
        name: Resource(sim, capacity=replica_slots) for name in replicas
    }
    arrivals = RandomStream(seed, "chaos.search.arrivals")
    service = RandomStream(seed, "chaos.search.service")
    placement = RandomStream(seed, "chaos.search.placement")
    latencies: List[float] = []
    copies_launched = [0]

    def serve_on(replica: str, base_s: float):
        """One attempt on one replica: queue for a slot, then serve.

        The slowdown is sampled when service *starts*, which is the
        straggler model: a request that lands on a degraded replica is
        slow end to end.
        """
        copies_launched[0] += 1
        yield pools[replica].acquire()
        try:
            yield sim.timeout(base_s * injector.slowdown(replica))
        finally:
            pools[replica].release()
        return replica

    def request(arrived_s: float, primary: int, base_s: float):
        if policy == "off":
            yield from serve_on(replicas[primary], base_s)
        else:
            copy = [0]

            def attempt():
                replica = replicas[(primary + copy[0]) % n_replicas]
                copy[0] += 1
                return serve_on(replica, base_s)

            yield from hedge(
                sim, attempt, delay_s=hedge_delay_s, max_copies=2,
                name="search.hedge",
            )
        latencies.append(sim.now - arrived_s)

    def source():
        for index in range(n_requests):
            primary = placement.integer(0, n_replicas - 1)
            base_s = service.lognormal(service_median_s, service_sigma)
            sim.spawn(
                request(sim.now, primary, base_s),
                name=f"search.request{index}",
            )
            yield sim.timeout(arrivals.exponential(1.0 / qps))

    sim.spawn(source(), name="search.source")
    sim.run()
    if len(latencies) != n_requests:
        raise ModelError("not all search requests completed")
    summary = latency_summary(latencies)
    within_sla = sum(1 for latency in latencies if latency <= sla_s)
    return {
        "policy": policy,
        "n_requests": n_requests,
        "availability": within_sla / n_requests,
        "copies_per_request": copies_launched[0] / n_requests,
        "n_faults": len(injector.events),
        **summary,
    }


# ---------------------------------------------------------------------------
# Part B: disaggregated-memory reads over a flapping fabric
# (deadline + retry + failover).
# ---------------------------------------------------------------------------


def run_memory_chaos(
    policy: str,
    n_reads: int = 2_500,
    read_rate_hz: float = 400.0,
    read_bytes: float = 1.0e6,
    base_latency_s: float = 1.0e-4,
    deadline_s: float = 1.3e-3,
    sla_s: float = 3.0e-3,
    flap_mtbf_s: float = 0.6,
    flap_mttr_s: float = 0.35,
    max_attempts: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Reads from remote memory while the primary pool's uplinks flap.

    The fabric is a 4-spine composable rack with two memory pools. Every
    ``spine--mem-pool0`` uplink carries an independent flap schedule, so
    the *primary* pool is usually degraded (fewer surviving ECMP paths,
    modelled as proportionally less effective bandwidth because the
    pool's aggregate load concentrates on the survivors) and
    occasionally unreachable. Policy ``"off"`` issues a single read
    against mem-pool0, rides out the slowdown, and gives up when no path
    exists; ``"resilient"`` puts a deadline on every transfer and
    retries with jittered exponential backoff, failing over to the
    replica ``mem-pool1`` (whose uplinks never flap) on odd attempts.
    """
    if policy not in MEMORY_POLICIES:
        raise ModelError(
            f"unknown memory policy {policy!r}; expected one of "
            f"{MEMORY_POLICIES}"
        )
    from repro.network.routing import ecmp_paths, path_bottleneck_gbps
    from repro.network.topology import disaggregated_fabric

    n_spines = 4
    fabric = disaggregated_fabric(
        n_cpu_pools=2, n_mem_pools=2, n_storage_pools=1, n_spines=n_spines,
        pool_gbps=10.0,
    )
    sim = Simulator()
    injector = FaultInjector(sim, seed=seed + 202, fabric=fabric)
    # Bounded to the arrival horizon so the run drains (see Part A).
    injector.install(
        FaultSpec(
            kind=LINK_FLAP,
            targets=tuple(
                (f"spine{s}", "mem-pool0") for s in range(n_spines)
            ),
            mtbf_s=flap_mtbf_s,
            mttr_s=flap_mttr_s,
            end_s=n_reads / read_rate_hz,
        )
    )
    arrivals = RandomStream(seed, "chaos.memory.arrivals")
    backoff = RandomStream(seed, "chaos.memory.backoff")
    retry_policy = RetryPolicy(
        max_attempts=max_attempts, base_delay_s=2.5e-4, multiplier=2.0,
        jitter=0.3,
    )
    latencies: List[float] = []
    failures = [0]
    attempts_issued = [0]

    def transfer_duration_s(pool: str) -> float:
        """Duration of one read, sampled when the transfer starts.

        Effective bandwidth is the path bottleneck scaled by the
        fraction of ECMP paths still alive; a flap landing mid-transfer
        does not retroactively slow a read (the deadline in the
        resilient policy is what bounds the damage). Raises
        :class:`FaultError` when the pool is unreachable.
        """
        attempts_issued[0] += 1
        try:
            paths = ecmp_paths(fabric, "cpu-pool0", pool)
        except TopologyError as exc:
            raise FaultError(f"{pool} unreachable: {exc}") from exc
        gbps = path_bottleneck_gbps(fabric, paths[0])
        effective_gbps = gbps * len(paths) / n_spines
        return base_latency_s + read_bytes * 8.0 / (effective_gbps * 1e9)

    def request(flow_id: int, arrived_s: float):
        if policy == "off":
            try:
                duration = transfer_duration_s("mem-pool0")
            except FaultError:
                failures[0] += 1
                return
            yield sim.timeout(duration)
            latencies.append(sim.now - arrived_s)
            return

        attempt_no = [0]

        def attempt():
            # Failover: odd attempts go to the replica pool.
            pool = "mem-pool0" if attempt_no[0] % 2 == 0 else "mem-pool1"
            attempt_no[0] += 1

            def bounded():
                # transfer_duration_s may raise FaultError; the retry
                # machinery delivers it to the waiter via the outcome
                # event, so it never escapes a bare process.
                duration = transfer_duration_s(pool)
                yield with_deadline(sim, sim.timeout(duration), deadline_s)
                return pool

            return bounded()

        try:
            yield from retry(
                sim, attempt, retry_policy, rng=backoff, name="memory.retry"
            )
        except RetryExhausted:
            failures[0] += 1
            return
        latencies.append(sim.now - arrived_s)

    def source():
        for flow_id in range(n_reads):
            sim.spawn(request(flow_id, sim.now), name=f"memory.req{flow_id}")
            yield sim.timeout(arrivals.exponential(1.0 / read_rate_hz))

    sim.spawn(source(), name="memory.source")
    sim.run()
    completed = len(latencies)
    if completed + failures[0] != n_reads:
        raise ModelError("memory requests lost by the chaos harness")
    within_sla = sum(1 for latency in latencies if latency <= sla_s)
    metrics: Dict[str, Any] = {
        "policy": policy,
        "n_reads": n_reads,
        "completed": completed,
        "failed": failures[0],
        "availability": within_sla / n_reads,
        "attempts_per_read": attempts_issued[0] / n_reads,
        "n_faults": len(injector.events),
    }
    if completed:
        metrics.update(latency_summary(latencies))
    return metrics


# ---------------------------------------------------------------------------
# Part C: online scheduler under host outages.
# ---------------------------------------------------------------------------


def run_scheduler_chaos(
    n_jobs: int = 24,
    mean_interarrival_s: float = 0.4,
    n_records: int = 400_000_000,
    outage_every_s: float = 3.0,
    outage_length_s: float = 1.0,
    n_outages: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Shared-pool scheduling with and without host outage windows.

    ``hostA`` (holding half the executors) goes down for
    ``outage_length_s`` every ``outage_every_s``; tasks caught mid-run
    are killed and restarted, tasks not yet started route around the
    outage via EFT. Deterministic: the outage grid is fixed, not
    sampled.
    """
    from repro.node import nvidia_k80, xeon_e5
    from repro.scheduler import (
        Executor,
        HostOutage,
        OnlineScheduler,
        chain_job,
        poisson_job_stream,
    )

    scheduler = OnlineScheduler([
        Executor("cpu0", "hostA", xeon_e5()),
        Executor("gpu0", "hostA", nvidia_k80()),
        Executor("cpu1", "hostB", xeon_e5()),
        Executor("gpu1", "hostB", nvidia_k80()),
    ])
    stream = poisson_job_stream(
        n_jobs,
        mean_interarrival_s,
        lambda index: chain_job(
            f"job{index}",
            ["filter-scan", "hash-join", "sort"],
            n_records + (n_records // 16) * (index % 5),
        ),
        seed=31 + seed,
    )
    outages = [
        HostOutage(
            "hostA",
            start_s=outage_every_s * (k + 1),
            end_s=outage_every_s * (k + 1) + outage_length_s,
        )
        for k in range(n_outages)
    ]
    healthy = scheduler.run_shared(stream)
    degraded = scheduler.run_shared(stream, outages=outages)
    return {
        "n_jobs": n_jobs,
        "makespan_s.healthy": healthy.makespan_s,
        "makespan_s.outages": degraded.makespan_s,
        "mean_completion_s.healthy": healthy.mean_completion_time_s,
        "mean_completion_s.outages": degraded.mean_completion_time_s,
        "tasks_rescheduled": degraded.rescheduled,
        "wasted_executor_s": degraded.wasted_s,
    }


# ---------------------------------------------------------------------------
# The assembled exhibit.
# ---------------------------------------------------------------------------


def chaos_exhibit(
    n_requests: int = 4_000,
    n_reads: int = 2_500,
    n_jobs: int = 24,
    seed: int = 0,
    search_overrides: Optional[Dict[str, Any]] = None,
    memory_overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run all three chaos parts, policies off and on; returns metrics.

    The headline comparisons:

    - ``search.p99_recovery``: fraction of the straggler-inflated p99
      that hedging recovers (1.0 would mean the chaotic p99 matches the
      policy-on p99 of zero extra copies -- impossible; honest values
      land well below).
    - ``memory.availability`` off vs resilient: the dependable-fabric
      premise, quantified.
    - ``scheduler.tasks_rescheduled`` / ``wasted_executor_s``: the cost
      of host outages the scheduler routed around.
    """
    search_kw = dict(search_overrides or {})
    memory_kw = dict(memory_overrides or {})
    metrics: Dict[str, Any] = {}

    for policy in SEARCH_POLICIES:
        part = run_search_chaos(
            policy, n_requests=n_requests, seed=seed, **search_kw
        )
        for key, value in part.items():
            if key != "policy":
                metrics[f"search.{policy}.{key}"] = value
    metrics["search.p99_recovery"] = (
        1.0 - metrics["search.hedged.p99_s"] / metrics["search.off.p99_s"]
    )
    metrics["search.hedge_overhead"] = (
        metrics["search.hedged.copies_per_request"] - 1.0
    )

    for policy in MEMORY_POLICIES:
        part = run_memory_chaos(
            policy, n_reads=n_reads, seed=seed, **memory_kw
        )
        for key, value in part.items():
            if key != "policy":
                metrics[f"memory.{policy}.{key}"] = value
    metrics["memory.availability_gain"] = (
        metrics["memory.resilient.availability"]
        - metrics["memory.off.availability"]
    )
    metrics["memory.retry_overhead"] = (
        metrics["memory.resilient.attempts_per_read"] - 1.0
    )

    for key, value in run_scheduler_chaos(n_jobs=n_jobs, seed=seed).items():
        metrics[f"scheduler.{key}"] = value
    return metrics

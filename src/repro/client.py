"""Blocking client for the experiment service.

:class:`ServiceClient` speaks the versioned wire contract defined in
:mod:`repro.service.schema` against a running ``python -m repro serve``
instance (or an in-process :func:`repro.service.serve_in_thread`
handle). It is deliberately stdlib-only -- ``http.client`` for the
JSON endpoints, a raw socket for the WebSocket event stream -- so any
environment that can import :mod:`repro` can drive a remote service.

The headline call is :meth:`ServiceClient.submit_and_wait`: build a
:class:`~repro.service.schema.JobSpec`, submit it, wait for the
terminal state, and return the :class:`~repro.service.schema.JobResult`
whose ``document`` serializes byte-identically to a local ``repro run``
of the same grid.

Transient transport failures -- connection refused while the service
restarts, a reset mid-request -- are retried with exponential backoff
under a :class:`~repro.engine.resilience.RetryPolicy` (pass
``retry_policy=None`` to fail fast; ``repro submit --no-retry`` does).
Only ``code="connection"`` errors retry: an error envelope the server
actually produced is an answer, not an outage.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.engine.resilience import RetryPolicy
from repro.errors import ServiceError
from repro.service import wire
from repro.service.schema import (
    JobResult,
    JobSpec,
    SubmitRequest,
    envelope_error,
)


#: Backoff for transient transport failures: 4 attempts over ~1.75s
#: (0.25, 0.5, 1.0), tuned to ride out a service restart.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay_s=0.25, multiplier=2.0, max_delay_s=2.0
)


class ServiceClient:
    """Typed access to one experiment service at ``base_url``.

    ``timeout_s`` bounds each HTTP round trip (not whole jobs -- waiting
    for a job polls with bounded requests). Raises
    :class:`~repro.errors.ServiceError` for error envelopes the server
    returns and for transport failures (``code="connection"``).

    ``retry_policy`` governs transparent retry of *transport* failures
    (connection refused/reset before a response arrived); pass ``None``
    to disable and surface the first failure immediately.
    """

    def __init__(
        self, base_url: str, timeout_s: float = 30.0,
        client_id: str = "client",
        retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(
                f"unsupported scheme {parsed.scheme!r} (http only)",
                code="bad-request",
            )
        netloc = parsed.netloc or parsed.path
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout_s = timeout_s
        self.client_id = client_id
        self.retry_policy = retry_policy

    @property
    def base_url(self) -> str:
        """The service root this client talks to."""
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One logical round trip, with transient-failure retry.

        Retries only ``code="connection"`` failures -- the service was
        unreachable, so the request cannot have been half-applied in a
        way retries would compound (submits are content-addressed and
        coalesce server-side, making them safe to repeat). Error
        envelopes and decode failures surface immediately.
        """
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        failure: Optional[ServiceError] = None
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                if exc.code != "connection" or attempt == attempts:
                    raise
                failure = exc
                time.sleep(policy.delay_s(attempt))
        raise failure  # pragma: no cover - loop always returns or raises

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """A single HTTP round trip with no retry."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            status = response.status
            text = response.read().decode("utf-8", errors="replace")
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc}", code="connection"
            ) from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(text) if text.strip() else {}
        except ValueError as exc:
            raise ServiceError(
                f"{method} {path}: non-JSON response ({status})",
                code="connection", status=status,
            ) from exc
        if status >= 400 or "error" in decoded:
            raise envelope_error(decoded, status=status)
        return decoded

    # -- service endpoints -------------------------------------------------

    def meta(self) -> Dict[str, Any]:
        """Service metadata: schema/library version, runnable experiments."""
        return self._request("GET", "/v1/meta")

    def health(self) -> Dict[str, Any]:
        """The liveness envelope (``status``, ``accepting``)."""
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics-registry snapshot."""
        return self._request("GET", "/v1/metrics")

    def jobs(self) -> List[Dict[str, Any]]:
        """Status envelopes for every job the server knows."""
        return list(self._request("GET", "/v1/jobs").get("jobs", []))

    def job(self, job_id: str) -> Dict[str, Any]:
        """One job's status envelope (embeds the result when done)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's event backlog via plain GET (no streaming)."""
        return list(
            self._request("GET", f"/v1/jobs/{job_id}/events")
            .get("events", [])
        )

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain in-flight jobs and stop."""
        return self._request("POST", "/v1/shutdown")

    def wait_until_ready(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Poll ``/v1/healthz`` until the service answers, then return it."""
        deadline = time.monotonic() + timeout_s
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServiceError as exc:
                last = exc
                time.sleep(0.1)
        raise ServiceError(
            f"service at {self.base_url} not ready after {timeout_s}s: "
            f"{last}", code="connection",
        )

    # -- job submission ----------------------------------------------------

    def submit_request(self, request: SubmitRequest) -> Dict[str, Any]:
        """Submit a prebuilt request; returns the job's status envelope."""
        return self._request("POST", "/v1/jobs", request.to_dict())

    def submit(
        self,
        experiments: "str | Iterable[str]",
        seeds: "int | Iterable[int]" = 1,
        overrides: Optional[Iterable[Dict[str, Any]]] = None,
        quick: bool = False,
        timeout_s: Optional[float] = 600.0,
        retries: int = 1,
        use_cache: bool = True,
    ) -> Dict[str, Any]:
        """Build and submit a :class:`JobSpec`; returns the job envelope.

        ``experiments`` / ``seeds`` follow :func:`repro.run_grid`
        conventions (``"all"`` expands, an int is a seed count).
        """
        if isinstance(experiments, str):
            experiments = [experiments]
        if isinstance(seeds, int):
            seeds = range(seeds)
        spec = JobSpec(
            experiments=tuple(experiments),
            seeds=tuple(int(s) for s in seeds),
            overrides=tuple(dict(o) for o in overrides or []) or ({},),
            quick=quick,
            timeout_s=timeout_s,
            retries=retries,
        )
        return self.submit_request(SubmitRequest(
            job=spec, client_id=self.client_id, use_cache=use_cache
        ))

    def wait(
        self, job_id: str, timeout_s: float = 600.0,
        poll_interval_s: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final envelope."""
        deadline = time.monotonic() + timeout_s
        while True:
            envelope = self.job(job_id)
            if envelope.get("state") in ("done", "failed"):
                return envelope
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {envelope.get('state')!r} after "
                    f"{timeout_s}s", code="timeout",
                )
            time.sleep(poll_interval_s)

    def result(self, job_id: str, timeout_s: float = 600.0) -> JobResult:
        """Wait for the job and decode its :class:`JobResult`.

        A ``failed`` job with no result document (the grid never ran)
        raises; a ``failed`` job *with* a document returns it, so
        callers can inspect which shards failed.
        """
        envelope = self.wait(job_id, timeout_s=timeout_s)
        record = envelope.get("result")
        if record is None:
            raise ServiceError(
                f"job {job_id} {envelope.get('state')}: "
                f"{envelope.get('error_detail') or 'no result document'}",
                code="job-failed",
            )
        return JobResult.from_dict(record)

    def submit_and_wait(
        self, experiments: "str | Iterable[str]", timeout_s: float = 600.0,
        **submit_kwargs: Any,
    ) -> JobResult:
        """Submit a grid and block until its :class:`JobResult` is ready."""
        envelope = self.submit(experiments, **submit_kwargs)
        return self.result(envelope["job_id"], timeout_s=timeout_s)

    # -- event streaming ---------------------------------------------------

    def stream_events(
        self, job_id: str, timeout_s: float = 600.0
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events over a WebSocket until end-of-stream.

        Yields the backlog first, then live events; returns when the
        server closes the stream (job terminal) or the socket times out.
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout_s
        )
        try:
            key = "cmVwcm8tc2VydmljZS1ldnQ="  # any base64 nonce works
            handshake = (
                f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                "\r\n"
            )
            sock.sendall(handshake.encode("latin-1"))
            stream = sock.makefile("rb")
            status_line = stream.readline().decode("latin-1", "replace")
            accept = ""
            while True:
                line = stream.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "sec-websocket-accept":
                    accept = value.strip()
            if "101" not in status_line:
                raise ServiceError(
                    f"WebSocket upgrade refused: {status_line.strip()}",
                    code="connection",
                )
            if accept != wire.websocket_accept_key(key):
                raise ServiceError(
                    "WebSocket handshake returned a bad accept key",
                    code="connection",
                )
            while True:
                frame = wire.read_frame_blocking(stream)
                if frame is None:
                    return
                opcode, payload = frame
                if opcode == wire.OP_CLOSE:
                    return
                if opcode == wire.OP_PING:
                    sock.sendall(wire.encode_frame(
                        payload, opcode=wire.OP_PONG, mask=True
                    ))
                    continue
                if opcode != wire.OP_TEXT:
                    continue
                yield json.loads(payload.decode("utf-8"))
        except (OSError, EOFError) as exc:
            raise ServiceError(
                f"event stream for {job_id} failed: {exc}", code="connection"
            ) from exc
        finally:
            sock.close()

"""Reporting: ASCII tables, the experiment registry, and trace runs."""

from repro.reporting.experiments import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    registry,
)
from repro.reporting.tables import format_value, render_records, render_table
from repro.reporting.traces import (
    TRACE_RUNNERS,
    TraceReport,
    render_trace_report,
    run_trace,
    traceable_experiments,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "TRACE_RUNNERS",
    "TraceReport",
    "format_value",
    "get_experiment",
    "registry",
    "render_records",
    "render_table",
    "render_trace_report",
    "run_trace",
    "traceable_experiments",
]

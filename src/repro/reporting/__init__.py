"""Reporting: ASCII tables and the experiment registry."""

from repro.reporting.experiments import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    registry,
)
from repro.reporting.tables import format_value, render_records, render_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "format_value",
    "get_experiment",
    "registry",
    "render_records",
    "render_table",
]

"""Instrumented experiment runs: ``python -m repro trace <experiment>``.

Re-runs a registered experiment with an
:class:`~repro.engine.Observability` attached, then renders a run
report -- a per-subsystem breakdown (span counts, span time, engine
event steps), the hottest spans, and the metric registry snapshot --
and can export the span buffer as ``trace.jsonl``.

The traceable set is declared in the experiment registry (the
:attr:`~repro.reporting.experiments.Experiment.traceable` flag); this
module keeps the matching runner per id in :data:`TRACE_RUNNERS`, and a
registry/runner mismatch is reported as an error rather than silently
hiding an experiment. Each runner uses a deliberately modest problem
size: the point of a trace run is instrumentation coverage, not
statistical power. Runners take the grid ``seed`` convention shared
with :mod:`repro.runner`: the seed is added to each runner's legacy
base seed, so seed 0 reproduces historical traces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.engine import Observability
from repro.errors import RegistryError
from repro.reporting.experiments import EXPERIMENTS, get_experiment
from repro.reporting.tables import render_table


@dataclass
class TraceReport:
    """The artifacts of one instrumented experiment run."""

    experiment_id: str
    observability: Observability
    headline: Dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, Any]:
        """The run's full metrics/span snapshot (plain dicts)."""
        return self.observability.snapshot()

    def write_jsonl(self, path: str) -> int:
        """Export the span buffer to ``path``; returns lines written.

        The first line is a header object carrying the experiment id
        and run totals, so a trace file is self-describing.
        """
        snapshot = self.snapshot()
        header = {
            "experiment": self.experiment_id,
            "spans_recorded": snapshot["spans"]["recorded"],
            "spans_dropped": snapshot["spans"]["dropped"],
            "events_processed": snapshot.get("events_processed", 0),
            "sim_time": snapshot.get("sim_time", 0.0),
        }
        return self.observability.export_jsonl(path, header=header)


def _trace_e2(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """E2: accelerated search-ranking service (DES spans + pool gauges)."""
    from repro.workloads.search import run_search_service

    result = run_search_service(
        qps=3_000.0,
        n_requests=3_000,
        accelerated=True,
        seed=2016 + seed,
        observability=observability,
    )
    return {
        "qps": result.qps,
        "requests": len(result.latencies_s),
        "p50_s": result.p50_s,
        "p99_s": result.p99_s,
    }


def _trace_e6(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """E6: switch-fleet TCO sweep (cost counters and histograms)."""
    from repro.network.switch import (
        bare_metal_switch,
        branded_switch,
        fleet_tco_usd,
        white_box_switch,
    )

    registry = observability.registry
    switches = (branded_switch(), white_box_switch(), bare_metal_switch())
    headline: Dict[str, Any] = {}
    for fleet_size in (100, 1_000, 10_000):
        for switch in switches:
            total = fleet_tco_usd(switch, fleet_size, registry=registry)
            if fleet_size == 1_000:
                headline[f"tco_usd_1k.{switch.name}"] = total
    return headline


def _trace_e11(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """E11: offloaded pipeline (placement counters + stage spans)."""
    from repro.cluster import uniform_cluster
    from repro.frameworks import (
        BatchExecutor,
        PartitionedDataset,
        Plan,
        cpu_only,
        greedy_time,
    )
    from repro.network import leaf_spine
    from repro.node import accelerated_server, arria10_fpga, xeon_e5
    from repro.workloads import zipf_documents

    cluster = uniform_cluster(
        leaf_spine(2, 2, 2),
        lambda: accelerated_server(xeon_e5(), arria10_fpga()),
    )
    docs = zipf_documents(2_000, 40, seed=3 + seed)
    dataset = PartitionedDataset.from_records(docs, 8, record_bytes=240)
    plan = (
        Plan.source()
        .map(lambda s: s, block="regex-extract", label="extract")
        .filter(lambda s: "data" in s, block="filter-scan", label="select")
        .map(lambda s: (s.split()[0], 1), block="filter-scan", label="pair")
        .reduce_by_key(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]),
                       label="aggregate")
    )
    headline: Dict[str, Any] = {}
    for policy_name, factory in (("cpu_only", cpu_only),
                                 ("greedy_time", greedy_time)):
        policy = factory(registry=observability.registry)
        result = BatchExecutor(cluster, policy=policy).run(plan, dataset)
        headline[f"sim_time_s.{policy_name}"] = result.sim_time_s
        # Stages execute back to back; lay their compute/shuffle phases
        # out on that timeline so the trace shows the BSP structure.
        clock = 0.0
        for stage in result.stages:
            tags = {
                "subsystem": "frameworks.batch",
                "policy": policy_name,
                "operators": "+".join(stage.operator_labels),
            }
            observability.spans.record(
                f"stage{stage.stage_index}.compute",
                clock, clock + stage.compute_time_s, tags=tags,
            )
            clock += stage.compute_time_s
            if stage.shuffle_time_s > 0:
                observability.spans.record(
                    f"stage{stage.stage_index}.shuffle",
                    clock, clock + stage.shuffle_time_s, tags=tags,
                )
                clock += stage.shuffle_time_s
    headline["gain"] = (
        headline["sim_time_s.cpu_only"] / headline["sim_time_s.greedy_time"]
    )
    return headline


def _trace_x11(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """X11: incremental max-min repair under faults (repair counters)."""
    from repro import units
    from repro.network import fat_tree
    from repro.network.flows import Flow, IncrementalMaxMinSolver

    fabric = fat_tree(4)
    hosts = fabric.hosts
    half = len(hosts) // 2
    flows = [
        Flow(
            i,
            hosts[(i + seed) % half],
            hosts[half + (2 * i + seed) % half],
            100 * units.MB,
        )
        for i in range(12)
    ]
    solver = IncrementalMaxMinSolver(
        fabric, flows, registry=observability.registry
    )
    schedule = (
        ("fail_link", ("agg0-0", "core0-0")),
        ("fail_link", ("tor0-0", "agg0-1")),
        ("restore_link", ("agg0-0", "core0-0")),
        ("fail_node", ("agg1-0",)),
        ("restore_link", ("tor0-0", "agg0-1")),
        ("restore_node", ("agg1-0",)),
    )
    clock = 0.0
    for op, args in schedule:
        getattr(solver, op)(*args)
        observability.spans.record(
            f"flows.{op}", clock, clock + 1.0,
            tags={"subsystem": "network.flows", "target": "--".join(args)},
        )
        clock += 1.0
    total_rate = sum(solver.allocations.values())
    return {
        "flows": len(flows),
        "full_solves": solver.full_solves,
        "incremental_repairs": solver.incremental_repairs,
        "total_rate_gbytes_per_s": total_rate / units.GB,
    }


def _trace_x2(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """X2: online allocation policies (task spans + completion histograms)."""
    from repro.node import arria10_fpga, nvidia_k80, xeon_e5
    from repro.scheduler import (
        Executor,
        OnlineScheduler,
        chain_job,
        poisson_job_stream,
    )

    scheduler = OnlineScheduler(
        [
            Executor("cpu0", "hA", xeon_e5()),
            Executor("cpu1", "hB", xeon_e5()),
            Executor("gpu0", "hA", nvidia_k80()),
            Executor("fpga0", "hB", arria10_fpga()),
        ],
        observability=observability,
    )
    stream = poisson_job_stream(
        10,
        0.002,
        job_factory=lambda i: chain_job(
            f"job{i}",
            ["filter-scan", "dense-gemm", "hash-aggregate"],
            1_000_000,
        ),
        seed=21 + seed,
    )
    exclusive = scheduler.run_exclusive(stream)
    shared = scheduler.run_shared(stream)
    return {
        "exclusive_mct_s": exclusive.mean_completion_time_s,
        "shared_mct_s": shared.mean_completion_time_s,
        "gain": (
            exclusive.mean_completion_time_s / shared.mean_completion_time_s
        ),
    }


def _trace_x7(observability: Observability, seed: int = 0) -> Dict[str, Any]:
    """X7: ECMP vs least-loaded placement (per-flow spans + imbalance)."""
    from repro import units
    from repro.network import compare_assignment_policies, fat_tree

    fabric = fat_tree(4)
    hosts = fabric.hosts
    half = len(hosts) // 2
    specs = [
        (hosts[i], hosts[half + i], 250 * units.MB) for i in range(8)
    ]
    comparison = compare_assignment_policies(
        fabric, specs, observability=observability
    )
    return {
        "ecmp_completion_s": comparison.ecmp_completion_s,
        "least_loaded_completion_s": comparison.least_loaded_completion_s,
        "speedup": comparison.speedup,
        "ecmp_imbalance": comparison.ecmp_imbalance,
        "least_loaded_imbalance": comparison.least_loaded_imbalance,
    }


#: Experiment id -> runner producing headline numbers under instrumentation.
#: Membership must mirror the registry's ``traceable`` flags; the
#: consistency is asserted by the test suite and re-checked at run time.
TRACE_RUNNERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "E2": _trace_e2,
    "E6": _trace_e6,
    "E11": _trace_e11,
    "X2": _trace_x2,
    "X7": _trace_x7,
    "X11": _trace_x11,
}


def traceable_experiments() -> List[str]:
    """Ids of experiments the registry marks traceable, sorted.

    Derived from the registry (not a hardcoded CLI list), so newly
    wired experiments appear automatically.
    """
    return sorted(e.experiment_id for e in EXPERIMENTS if e.traceable)


def run_trace(experiment_id: str, seed: int = 0) -> TraceReport:
    """Run ``experiment_id`` instrumented; raises for untraceable ids.

    ``seed`` follows the runner convention: added to the experiment's
    base seed, with 0 reproducing the historical trace.
    """
    experiment = get_experiment(experiment_id)  # validates the id
    if not experiment.traceable:
        raise RegistryError(
            f"experiment {experiment_id!r} is not traceable; "
            f"choose from {traceable_experiments()}"
        )
    runner = TRACE_RUNNERS.get(experiment.experiment_id)
    if runner is None:
        raise RegistryError(
            f"registry marks {experiment_id!r} traceable but no trace "
            "runner is wired in TRACE_RUNNERS"
        )
    observability = Observability()
    headline = runner(observability, seed)
    return TraceReport(
        experiment_id=experiment.experiment_id,
        observability=observability,
        headline=headline,
    )


def render_trace_report(report: TraceReport) -> str:
    """The run report: subsystems, hottest spans, metrics, headline."""
    experiment = get_experiment(report.experiment_id)
    snapshot = report.snapshot()
    parts: List[str] = [
        f"trace: {experiment.experiment_id} ({experiment.paper_anchor}) "
        f"-- {experiment.claim}",
    ]

    by_subsystem = report.observability.spans.by_tag(
        "subsystem", default="(untagged)"
    )
    steps = snapshot["steps_by_subsystem"]
    names = sorted(set(by_subsystem) | set(steps))
    if names:
        total_time = sum(total for _, total in by_subsystem.values()) or 1.0
        rows = []
        for name in names:
            count, span_time = by_subsystem.get(name, (0, 0.0))
            rows.append([
                name, count, span_time, steps.get(name, 0),
                span_time / total_time,
            ])
        parts.append(render_table(
            ["subsystem", "spans", "span time (s)", "event steps", "share"],
            rows, title="per-subsystem breakdown",
        ))

    hottest = snapshot["spans"]["hottest"]
    if hottest:
        rows = [
            [h["name"], h["count"], h["total"], h["total"] / h["count"]]
            for h in hottest
        ]
        parts.append(render_table(
            ["span", "count", "total (s)", "mean (s)"], rows,
            title="hottest spans (top 5 by total time)",
        ))

    if snapshot["counters"]:
        rows = [[name, value] for name, value in snapshot["counters"].items()]
        parts.append(render_table(["counter", "value"], rows,
                                  title="counters"))
    if snapshot["gauges"]:
        rows = [
            [name, stats["last"], stats["mean"], stats["max"]]
            for name, stats in snapshot["gauges"].items()
        ]
        parts.append(render_table(["gauge", "last", "mean", "max"], rows,
                                  title="gauges (time-weighted)"))
    if snapshot["histograms"]:
        rows = [
            [name, stats["count"], stats["mean"], stats["p50"], stats["p99"]]
            for name, stats in snapshot["histograms"].items()
        ]
        parts.append(render_table(
            ["histogram", "count", "mean", "p50", "p99"], rows,
            title="histograms",
        ))

    if report.headline:
        rows = [[name, value] for name, value in report.headline.items()]
        parts.append(render_table(["headline metric", "value"], rows,
                                  title="experiment headline"))

    totals = (
        f"spans: {snapshot['spans']['recorded']} recorded, "
        f"{snapshot['spans']['dropped']} dropped, "
        f"{snapshot['spans']['open']} open | "
        f"events: {snapshot.get('events_processed', 0)} | "
        f"errors: {len(snapshot['errors'])}"
    )
    parts.append(totals)
    return "\n\n".join(parts)

"""The experiment registry: every paper exhibit and claim, indexed.

Maps each experiment id from DESIGN.md to its paper anchor, the modules
implementing it, the benchmark that regenerates it, and the expected
*shape* of the result (who wins, roughly by how much). EXPERIMENTS.md is
generated from this registry, and the test suite asserts registry
consistency (benches exist, modules import).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import RegistryError


@dataclass(frozen=True)
class Experiment:
    """One reproducible exhibit or claim.

    ``entrypoint`` is a dotted ``"module:function"`` path to a runnable
    ``(config, seed) -> RunResult`` callable (empty when the exhibit is
    only reachable through its benchmark). ``traceable`` marks
    experiments wired for instrumented ``python -m repro trace`` runs.
    """

    experiment_id: str
    paper_anchor: str
    claim: str
    expected_shape: str
    modules: Tuple[str, ...]
    bench: str
    entrypoint: str = ""
    traceable: bool = False

    @property
    def runnable(self) -> bool:
        """Whether a programmatic entrypoint is registered."""
        return bool(self.entrypoint)

    def resolve_entrypoint(self):
        """Import and return the entrypoint callable.

        Raises :class:`~repro.errors.RegistryError` when the experiment
        has none registered or the path does not resolve.
        """
        if not self.entrypoint:
            raise RegistryError(
                f"experiment {self.experiment_id!r} has no entrypoint"
            )
        from repro.runner.pool import resolve_entrypoint

        return resolve_entrypoint(self.entrypoint)


EXPERIMENTS: List[Experiment] = [
    Experiment(
        "T1", "Table 1",
        "The consortium spans architecture, databases, silicon IP and analytics across academia/industry/SME",
        "every required capability covered by >=1 partner; all three partner kinds present",
        ("repro.ecosystem.actors", "repro.ecosystem.collaboration"),
        "benchmarks/test_bench_consortium.py",
    ),
    Experiment(
        "F1", "Figure 1",
        "RETHINK big uniquely owns Big Data hardware+networking among the ETP/PPP landscape",
        "exactly RETHINK-big covers those two scopes; no uncovered scope areas",
        ("repro.ecosystem.collaboration",),
        "benchmarks/test_bench_ecosystem.py",
    ),
    Experiment(
        "E1", "Abstract / SV.A",
        "89 interviews, 70 companies; the four Key Findings hold in aggregate",
        "counts exact; findings 1-4 all hold on the calibrated corpus",
        ("repro.survey.corpus", "repro.survey.analysis"),
        "benchmarks/test_bench_survey.py",
        entrypoint="repro.runner.entrypoints:run_e1",
    ),
    Experiment(
        "E2", "SI (Catapult)",
        "FPGA offload cuts search-ranking tail latency ~29% at iso-throughput",
        "P99 reduction in the 15-45% band at the operating point; larger under overload; ~2x QPS at iso-SLA",
        ("repro.engine", "repro.workloads.search"),
        "benchmarks/test_bench_catapult.py",
        entrypoint="repro.runner.entrypoints:run_e2",
        traceable=True,
    ),
    Experiment(
        "E3", "SV.B R4",
        "Specialized hardware raises throughput/node ~10x on suitable analytics kernels",
        "best accelerator >=5x CPU on compute-bound blocks; <2x on memory-bound",
        ("repro.node.roofline", "repro.analytics.blocks"),
        "benchmarks/test_bench_accelerator_gain.py",
        entrypoint="repro.runner.entrypoints:run_e3",
    ),
    Experiment(
        "E4", "SIV.B.2",
        "GPGPU ROI is negative for low-utilization SME deployments",
        "NPV < 0 below a utilization breakeven in (0,1); breakeven falls as speedup rises",
        ("repro.econ.roi",),
        "benchmarks/test_bench_gpgpu_roi.py",
        entrypoint="repro.runner.entrypoints:run_e4",
    ),
    Experiment(
        "E5", "SIV.B.3",
        "SiP beats SoC below a crossover volume; interface upgrades are far cheaper on SiP",
        "crossover in the 10^5-10^8 unit range; SiP upgrade cost <30% of SoC's",
        ("repro.econ.soc_sip", "repro.econ.silicon"),
        "benchmarks/test_bench_soc_sip.py",
        entrypoint="repro.runner.entrypoints:run_e5",
    ),
    Experiment(
        "E6", "SIV.A.1",
        "Bare-metal/white-box switching undercuts branded TCO; in-house NOS needs hyperscale",
        "branded most expensive at all fleet sizes; bare-metal crosses white-box at a fleet-size threshold",
        ("repro.network.switch", "repro.econ.cost"),
        "benchmarks/test_bench_switch_tco.py",
        entrypoint="repro.runner.entrypoints:run_e6",
        traceable=True,
    ),
    Experiment(
        "E7", "SIV.A.2",
        "SDN makes 10,000 switches look like one: policy rollout ~constant vs fleet size",
        "SDN rollout flat within a wave; legacy rollout linear; speedup grows with fleet",
        ("repro.network.sdn", "repro.network.nfv"),
        "benchmarks/test_bench_sdn.py",
        entrypoint="repro.runner.entrypoints:run_e7",
    ),
    Experiment(
        "E8", "SIV.A.3",
        "Disaggregation reduces stranding and upgrade cost",
        "composable places >=10% more of a skewed job mix; per-dimension refresh <=40% of server refresh",
        ("repro.cluster.disaggregation",),
        "benchmarks/test_bench_disaggregation.py",
        entrypoint="repro.runner.entrypoints:run_e8",
    ),
    Experiment(
        "E9", "SIV.A.3 / R3",
        "400GbE+ appliances arrive after 2020; cost/Gbps improves monotonically",
        "forecast volume year > 2020; usd/gbps strictly decreasing across generations",
        ("repro.network.link", "repro.core.adoption"),
        "benchmarks/test_bench_ethernet_roadmap.py",
        entrypoint="repro.runner.entrypoints:run_e9",
    ),
    Experiment(
        "E10", "R11",
        "Heterogeneity-aware scheduling beats naive placement on mixed device pools",
        "HEFT makespan < FIFO makespan; gap grows with device heterogeneity",
        ("repro.scheduler",),
        "benchmarks/test_bench_scheduling.py",
        entrypoint="repro.runner.entrypoints:run_e10",
    ),
    Experiment(
        "E11", "R10",
        "Accelerated building blocks speed up framework pipelines end to end",
        "offload policy beats cpu-only on regex/gemm-heavy plans at scale; identical results",
        ("repro.frameworks", "repro.analytics.blocks"),
        "benchmarks/test_bench_offload.py",
        entrypoint="repro.runner.entrypoints:run_e11",
        traceable=True,
    ),
    Experiment(
        "E12", "R9",
        "A standard suite compares architectures side by side",
        "five workloads x four architectures; accelerated architectures win the acceleratable workloads only",
        ("repro.workloads.suite",),
        "benchmarks/test_bench_suite.py",
        entrypoint="repro.runner.entrypoints:run_e12",
    ),
    Experiment(
        "E13", "SIV.B.2 / SV.A(4)",
        "GPGPU and server-CPU markets are extremely concentrated; lock-in is NRE-protected",
        "HHI > 9000 for both; leader shares >95%; years-protected > 1 for realistic codebases",
        ("repro.ecosystem.market",),
        "benchmarks/test_bench_market.py",
        entrypoint="repro.runner.entrypoints:run_e13",
    ),
    Experiment(
        "E14", "R2",
        "HPC/Big Data convergence: science streams run on Big Data stacks; accelerators raise per-node rates",
        "GPU-class device sustains >2x CPU trigger rate at large batches",
        ("repro.workloads.streams", "repro.frameworks.streaming"),
        "benchmarks/test_bench_convergence.py",
        entrypoint="repro.runner.entrypoints:run_e14",
    ),
    Experiment(
        "E15", "SIV.C",
        "No common abstraction reaches all hardware; native-everywhere porting cost is prohibitive",
        "best universal model (OpenCL) misses >=1 device; native-everywhere effort >=10x portable",
        ("repro.node.programmability",),
        "benchmarks/test_bench_portability.py",
        entrypoint="repro.runner.entrypoints:run_e15",
    ),
    Experiment(
        "E16", "SV.B",
        "The twelve recommendations rank by survey+model evidence; a budget portfolio selects coherently",
        "benchmarks (R9) and accelerator derisking (R4) rank near the top; knapsack >= greedy",
        ("repro.core.recommendations", "repro.core.prioritize"),
        "benchmarks/test_bench_recommendations.py",
        entrypoint="repro.runner.entrypoints:run_e16",
    ),
    # --- extensions beyond the paper's explicit claims -------------------
    Experiment(
        "X1", "SIV.A.3 (implied)",
        "Disaggregation presupposes graceful fabric degradation under failures",
        "fat-tree bisection declines smoothly and stays connected; single-spine designs partition",
        ("repro.network.failures",),
        "benchmarks/test_bench_resilience.py",
    ),
    Experiment(
        "X2", "R11 (dynamic)",
        "Work-conserving shared allocation beats FIFO whole-pool allocation on job streams",
        "shared never loses on mean completion time; gain >1.3x under load",
        ("repro.scheduler.online",),
        "benchmarks/test_bench_dynamic_allocation.py",
        traceable=True,
    ),
    Experiment(
        "X3", "R11 (edge) / SIII (IoT back-end)",
        "Selective pipelines belong at the edge; unselective compute belongs in the data center",
        "split/edge wins at <=1% selectivity; dc-only wins unselective heavy compute",
        ("repro.workloads.edge",),
        "benchmarks/test_bench_edge.py",
    ),
    Experiment(
        "X4", "R6 (new FPGA entrant)",
        "An EU FPGA entrant's break-even depends sharply on public subsidy",
        "upfront >$80M; break-even year strictly decreases with subsidy",
        ("repro.ecosystem.entry",),
        "benchmarks/test_bench_market_entry.py",
    ),
    Experiment(
        "X5", "SIV.C (frameworks)",
        "Stragglers dominate BSP stage time; speculation and dataset caching recover it",
        "stage time grows with width; speculation >1.3x; caching speedup grows with iterations",
        ("repro.frameworks.faults", "repro.frameworks.iterative"),
        "benchmarks/test_bench_faults.py",
    ),
    Experiment(
        "X7", "SIV.A.2 (SDN payoff)",
        "A size-aware central controller beats oblivious ECMP hashing on elephant flows",
        "least-loaded placement never slower, lower link imbalance, wins under collision-prone fan-out",
        ("repro.network.loadbalance",),
        "benchmarks/test_bench_loadbalance.py",
        traceable=True,
    ),
    Experiment(
        "X9", "SV.A Finding 2 (wait-for-commodity)",
        "Waiting for commodity pricing is a coordination failure; seeded deployments un-stall the cascade",
        "zero seed -> zero adoption at launch price; a finite minimum seed flips the market; adoption monotone in seed",
        ("repro.core.waiting_game",),
        "benchmarks/test_bench_waiting_game.py",
    ),
    Experiment(
        "X8", "SVI ('the next 10 years')",
        "Scored from 2026, the roadmap's technology calls land within ~1-2 years; risk ratings were informative",
        "mean |error| < 2.5y over arrived tech; neuromorphic still not-yet; NVM withdrawn; troubled bets were rated riskier",
        ("repro.core.retrospective",),
        "benchmarks/test_bench_hindsight.py",
    ),
    Experiment(
        "X6", "SV.B (forecasting honesty)",
        "Technology-risk widens forecast bands; coordinated funding buys years, most for immature tech",
        "neuromorphic band >3x mature tech's; years-gained positive everywhere, largest at low TRL",
        ("repro.core.scenarios",),
        "benchmarks/test_bench_scenarios.py",
    ),
    Experiment(
        "X10", "methodology (engine observability)",
        "Span tracing and metrics make instrumented runs inspectable at <10% disabled-path overhead",
        "disabled-observability event loop within 1.1x of an uninstrumented kernel; enabled runs record spans for every stage",
        ("repro.engine.observability", "repro.reporting.traces"),
        "benchmarks/test_bench_observability.py",
    ),
    Experiment(
        "X12", "SI (Catapult) + SIV.A.3 (dependable fabrics)",
        "Hedging/retry/failover recover most fault-inflated tail latency for single-digit-percent extra work",
        "chaos p99 recovery above 50% at <2x issued work; resilient availability strictly above policy-off under the same fault schedule; host outages routed around with the kill/waste cost reported",
        (
            "repro.engine.faults",
            "repro.engine.resilience",
            "repro.workloads.chaos",
            "repro.scheduler.online",
        ),
        "benchmarks/test_bench_chaos.py",
        entrypoint="repro.runner.entrypoints:run_x12",
    ),
    Experiment(
        "X11", "methodology (incremental flow repair)",
        "Localized max-min repair after a fault beats re-solving the whole fabric from scratch",
        "repair answers bit-identical to full solves; repair count dominates full-solve fallbacks on sparse fault schedules",
        ("repro.network.flows", "repro.engine.observability"),
        "benchmarks/perfsuite.py",
        traceable=True,
    ),
    Experiment(
        "X14", "SIV.A (scale-out fabrics) + methodology (parallel DES)",
        "A conservatively synchronized sharded engine simulates 10k-switch fabrics bit-for-bit with the sequential engine, faster in wall-clock",
        "merged sharded trace byte-identical to the single-process trace at any shard count, under randomized fault schedules; >=3x wall-clock at 4 workers on a k=30+ fat tree",
        (
            "repro.engine.sharded",
            "repro.workloads.fabricsim",
            "repro.runner.pool",
        ),
        "benchmarks/test_bench_sharded.py",
        entrypoint="repro.runner.entrypoints:run_x14",
    ),
    Experiment(
        "X15", "SII.B (datacenter services) + SIV.B (admission control)",
        "An experiment service with a bounded admission queue and request coalescing keeps served P99 latency bounded under millions-of-users traffic and spine faults, at the cost of explicit sheds",
        "open admission P99 exceeds bounded-queue P99 by >=25% under spine-fault degradation; bounded sheds <5% of requests; coalescing plus result caching absorbs >=80% of offered executions",
        (
            "repro.workloads.servicesim",
            "repro.service.schema",
            "repro.engine.faults",
        ),
        "benchmarks/test_bench_service.py",
        entrypoint="repro.runner.entrypoints:run_x15",
    ),
    Experiment(
        "X16", "SIV.B (resilient services) + methodology (fault injection)",
        "A write-ahead job journal plus worker-crash containment make the experiment runner and service crash-safe: any SIGKILL schedule merges to the byte-identical canonical document of an undisturbed run",
        "worker SIGKILLs are contained and retried without poisoning sibling shards (two kills quarantine the shard); a grid SIGKILLed mid-run resumes from the journal to byte-identical results.json; a killed service re-admits its journaled jobs on restart and serves resubmitted completed work entirely from cache",
        (
            "repro.workloads.selfchaos",
            "repro.runner.journal",
            "repro.service.server",
        ),
        "benchmarks/test_bench_selfchaos.py",
        entrypoint="repro.runner.entrypoints:run_x16",
    ),
    Experiment(
        "X17", "SIII.B (provisioning for real traffic) + SII (Catapult tails)",
        "The resilience headline claims survive realistic traffic: hedging still recovers the straggler-inflated P99 and the dependable fabric still buys availability under diurnal, flash-crowd and heavy-tailed load generated as vectorized scenario batch draws",
        "hedging wins the P99 race in every traffic regime with >=50% tail recovery; the resilient memory policy wins availability in every regime; the full chaos x load matrix is deterministic at any --jobs",
        (
            "repro.mc.traffic",
            "repro.workloads.scenario",
            "repro.engine.sim",
        ),
        "benchmarks/test_bench_traffic.py",
        entrypoint="repro.runner.entrypoints:run_x17",
    ),
]


def registry() -> Dict[str, Experiment]:
    """Experiment id -> experiment, validated for uniqueness."""
    out: Dict[str, Experiment] = {}
    for experiment in EXPERIMENTS:
        if experiment.experiment_id in out:
            raise RegistryError(
                f"duplicate experiment id: {experiment.experiment_id}"
            )
        out[experiment.experiment_id] = experiment
    return out


def get_experiment(experiment_id: str) -> Experiment:
    """Lookup with a helpful error."""
    table = registry()
    if experiment_id not in table:
        raise RegistryError(f"unknown experiment: {experiment_id!r}")
    return table[experiment_id]

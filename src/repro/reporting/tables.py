"""Plain-text table rendering for benchmark and experiment output."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ModelError


def format_value(value: Any) -> str:
    """Human formatting: floats to 4 significant digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """An aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    if not headers:
        raise ModelError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ModelError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    cells = [[str(h) for h in headers]] + [
        [format_value(v) for v in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cell.ljust(width) for cell, width in zip(cells[0], widths)
    ).rstrip()
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells[1:]:
        lines.append(
            " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def render_records(
    records: List[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict records as a table, with optional column selection."""
    if not records:
        raise ModelError("no records to render")
    headers = list(columns) if columns else list(records[0])
    rows = []
    for record in records:
        missing = [h for h in headers if h not in record]
        if missing:
            raise ModelError(f"record missing columns: {missing}")
        rows.append([record[h] for h in headers])
    return render_table(headers, rows, title=title)

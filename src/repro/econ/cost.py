"""Total-cost-of-ownership building blocks.

The roadmap's Key Finding (2) is that European companies judge hardware by
ROI under "the most competitive pricing"; every architecture experiment in
this library therefore reduces to a :class:`TcoModel` comparison: capital
expense, energy, maintenance, and staffing over an ownership horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import units
from repro.errors import ModelError


@dataclass(frozen=True)
class CostItem:
    """A single named contribution to a TCO breakdown."""

    label: str
    amount_usd: float
    category: str  # "capex" | "opex"

    def __post_init__(self) -> None:
        if self.category not in ("capex", "opex"):
            raise ModelError(f"unknown cost category: {self.category!r}")
        if self.amount_usd < 0:
            raise ModelError(f"negative cost for {self.label!r}")


@dataclass
class TcoBreakdown:
    """An itemized total cost of ownership."""

    items: List[CostItem] = field(default_factory=list)

    def add(self, label: str, amount_usd: float, category: str) -> None:
        """Append one cost item."""
        self.items.append(CostItem(label, amount_usd, category))

    @property
    def capex_usd(self) -> float:
        """Sum of capital expenses."""
        return sum(i.amount_usd for i in self.items if i.category == "capex")

    @property
    def opex_usd(self) -> float:
        """Sum of operating expenses over the horizon."""
        return sum(i.amount_usd for i in self.items if i.category == "opex")

    @property
    def total_usd(self) -> float:
        """Capex plus opex."""
        return self.capex_usd + self.opex_usd

    def by_label(self) -> Dict[str, float]:
        """Mapping label -> amount, merging duplicate labels."""
        out: Dict[str, float] = {}
        for item in self.items:
            out[item.label] = out.get(item.label, 0.0) + item.amount_usd
        return out


@dataclass(frozen=True)
class EnergyPrice:
    """Electricity price plus data-center overhead (PUE)."""

    usd_per_kwh: float = 0.10
    pue: float = 1.5  # power usage effectiveness; 1.5 was the 2016 norm

    def __post_init__(self) -> None:
        if self.usd_per_kwh < 0:
            raise ModelError("negative electricity price")
        if self.pue < 1.0:
            raise ModelError(f"PUE cannot be below 1.0, got {self.pue}")

    def cost_usd(self, power_w: float, duration_s: float) -> float:
        """Electricity cost of drawing ``power_w`` for ``duration_s``."""
        if power_w < 0 or duration_s < 0:
            raise ModelError("power and duration must be non-negative")
        energy_kwh = units.joules_to_kwh(power_w * duration_s) * self.pue
        return energy_kwh * self.usd_per_kwh


def server_tco(
    purchase_usd: float,
    power_w: float,
    horizon_years: float,
    energy: EnergyPrice = EnergyPrice(),
    annual_maintenance_frac: float = 0.10,
    admin_usd_per_year: float = 0.0,
    utilization: float = 1.0,
) -> TcoBreakdown:
    """TCO of one server (or switch) over ``horizon_years``.

    ``utilization`` scales the energy draw between idle (treated as free
    for simplicity) and full load; maintenance is a yearly fraction of the
    purchase price, the standard enterprise support-contract model.
    """
    if horizon_years <= 0:
        raise ModelError(f"horizon must be positive, got {horizon_years}")
    if not 0.0 <= utilization <= 1.0:
        raise ModelError(f"utilization must be in [0, 1], got {utilization}")
    breakdown = TcoBreakdown()
    breakdown.add("purchase", purchase_usd, "capex")
    seconds = horizon_years * units.YEAR
    breakdown.add(
        "energy", energy.cost_usd(power_w * utilization, seconds), "opex"
    )
    breakdown.add(
        "maintenance",
        purchase_usd * annual_maintenance_frac * horizon_years,
        "opex",
    )
    if admin_usd_per_year:
        breakdown.add("administration", admin_usd_per_year * horizon_years, "opex")
    return breakdown


def learning_curve_price(
    first_unit_usd: float, cumulative_units: float, learning_rate: float = 0.85
) -> float:
    """Wright's-law unit price after ``cumulative_units`` produced.

    ``learning_rate`` is the price multiplier per doubling of cumulative
    volume (0.85 means a 15% price drop per doubling), the model used for
    the "wait for commodity pricing" behaviour reported in Finding 2.
    """
    if first_unit_usd < 0:
        raise ModelError("negative first-unit price")
    if cumulative_units < 1:
        raise ModelError(f"cumulative units must be >= 1, got {cumulative_units}")
    if not 0.0 < learning_rate <= 1.0:
        raise ModelError(f"learning rate must be in (0, 1], got {learning_rate}")
    import math

    exponent = math.log2(learning_rate)
    return first_unit_usd * cumulative_units**exponent

"""Return-on-investment models for adopting novel hardware.

Implements the decision calculus behind Key Finding (2) ("European
companies are not convinced of the ROI of using novel hardware") and
Recommendation 4 (reduce risk and cost of using accelerators): an
adoption is worthwhile when the discounted value of the speedup exceeds
hardware price plus the software re-engineering (port) cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError


def npv(cashflows_usd: List[float], discount_rate: float) -> float:
    """Net present value of yearly ``cashflows_usd`` (year 0 first)."""
    if discount_rate <= -1.0:
        raise ModelError(f"discount rate must exceed -100%, got {discount_rate}")
    return sum(
        cash / (1.0 + discount_rate) ** year
        for year, cash in enumerate(cashflows_usd)
    )


def payback_period_years(cashflows_usd: List[float]) -> Optional[float]:
    """Years until cumulative cashflow turns non-negative.

    Interpolates within the breakeven year; returns ``None`` if the
    investment never pays back within the given horizon.
    """
    cumulative = 0.0
    for year, cash in enumerate(cashflows_usd):
        previous = cumulative
        cumulative += cash
        if cumulative >= 0.0 and year > 0:
            if cash <= 0:
                return float(year)
            # Fraction of the year needed to close the remaining gap.
            return year - 1 + (-previous / cash)
    return None


@dataclass(frozen=True)
class AcceleratorInvestment:
    """Inputs to the accelerator-adoption ROI decision.

    Parameters mirror the barriers the paper lists: hardware price,
    person-months of re-engineering, uncertain speedup, power draw, and
    the utilization the operator can actually sustain (the paper: "power
    consumption is too high and utilization too low to justify the
    investment").
    """

    hardware_usd: float
    port_effort_person_months: float
    engineer_usd_per_month: float = 12_000.0
    speedup: float = 1.0
    baseline_compute_value_usd_per_year: float = 100_000.0
    accelerator_power_w: float = 250.0
    electricity_usd_per_kwh: float = 0.10
    pue: float = 1.5
    utilization: float = 0.5
    horizon_years: int = 3
    discount_rate: float = 0.08

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise ModelError(f"speedup must be positive, got {self.speedup}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ModelError(f"utilization must be in [0, 1], got {self.utilization}")
        if self.horizon_years < 1:
            raise ModelError("horizon must be at least one year")

    @property
    def upfront_cost_usd(self) -> float:
        """Hardware plus one-off software port cost."""
        return (
            self.hardware_usd
            + self.port_effort_person_months * self.engineer_usd_per_month
        )

    @property
    def annual_benefit_usd(self) -> float:
        """Value of the capacity freed by the speedup, scaled by utilization.

        A k-times speedup at utilization u frees ``u * (1 - 1/k)`` of the
        baseline compute spend.
        """
        freed_fraction = self.utilization * (1.0 - 1.0 / self.speedup)
        return self.baseline_compute_value_usd_per_year * freed_fraction

    @property
    def annual_energy_cost_usd(self) -> float:
        """Extra electricity for the accelerator at the given utilization."""
        hours = 24 * 365 * self.utilization
        kwh = self.accelerator_power_w / 1000.0 * hours * self.pue
        return kwh * self.electricity_usd_per_kwh

    def cashflows(self) -> List[float]:
        """Yearly cashflows: year 0 is the upfront cost, then net benefit."""
        net_yearly = self.annual_benefit_usd - self.annual_energy_cost_usd
        return [-self.upfront_cost_usd] + [net_yearly] * self.horizon_years

    def npv_usd(self) -> float:
        """Discounted net value of the adoption over the horizon."""
        return npv(self.cashflows(), self.discount_rate)

    def roi(self) -> float:
        """Simple (undiscounted) ROI: net gain over upfront cost."""
        flows = self.cashflows()
        gain = sum(flows[1:])
        return (gain - self.upfront_cost_usd) / self.upfront_cost_usd

    def payback_years(self) -> Optional[float]:
        """Payback period; ``None`` when the horizon never breaks even."""
        return payback_period_years(self.cashflows())

    def worthwhile(self) -> bool:
        """The adoption decision: positive NPV within the horizon."""
        return self.npv_usd() > 0.0


def breakeven_utilization(
    investment: AcceleratorInvestment, tolerance: float = 1e-6
) -> Optional[float]:
    """Smallest utilization at which the investment has positive NPV.

    Bisects on the utilization axis; returns ``None`` when even 100%
    utilization does not pay back (the situation the paper ascribes to
    small/medium data-center operators).
    """
    from dataclasses import replace

    def npv_at(u: float) -> float:
        return replace(investment, utilization=u).npv_usd()

    if npv_at(1.0) <= 0.0:
        return None
    if npv_at(0.0) > 0.0:
        return 0.0
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if npv_at(mid) > 0.0:
            hi = mid
        else:
            lo = mid
    return hi


def breakeven_speedup(
    investment: AcceleratorInvestment,
    max_speedup: float = 1000.0,
    tolerance: float = 1e-6,
) -> Optional[float]:
    """Smallest speedup making the investment worthwhile, if any."""
    from dataclasses import replace

    def npv_at(k: float) -> float:
        return replace(investment, speedup=k).npv_usd()

    if npv_at(max_speedup) <= 0.0:
        return None
    lo, hi = 1.0, max_speedup
    if npv_at(lo) > 0.0:
        return lo
    while hi - lo > tolerance * max(1.0, lo):
        mid = math.sqrt(lo * hi)  # geometric bisection: speedups are ratios
        if npv_at(mid) > 0.0:
            hi = mid
        else:
            lo = mid
    return hi

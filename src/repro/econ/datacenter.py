"""Whole-data-center TCO: servers + switches + facility over a horizon.

Ties the per-box models together so design studies (and Finding 2's
decision makers) get one number per candidate design: compute cluster,
fabric switch fleet, energy at a utilization profile, and facility
amortization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro import units
from repro.econ.cost import EnergyPrice, TcoBreakdown
from repro.errors import ModelError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.cluster.machine import Cluster
    from repro.network.switch import SwitchModel


@dataclass(frozen=True)
class FacilityModel:
    """Building, power distribution and cooling capex per rated kW."""

    usd_per_kw: float = 10_000.0
    amortization_years: float = 15.0

    def __post_init__(self) -> None:
        if self.usd_per_kw < 0 or self.amortization_years <= 0:
            raise ModelError("invalid facility parameters")

    def cost_usd(self, critical_power_w: float, horizon_years: float) -> float:
        """Facility capex attributable to ``horizon_years`` of use."""
        if critical_power_w < 0 or horizon_years <= 0:
            raise ModelError("power and horizon must be non-negative/positive")
        total = self.usd_per_kw * critical_power_w / 1_000.0
        return total * min(1.0, horizon_years / self.amortization_years)


def datacenter_tco(
    cluster: "Cluster",
    switch_model: "SwitchModel",
    horizon_years: float = 5.0,
    utilization: float = 0.5,
    energy: EnergyPrice = EnergyPrice(),
    facility: FacilityModel = FacilityModel(),
    admin_servers_per_person: float = 250.0,
    admin_usd_per_year: float = 90_000.0,
) -> TcoBreakdown:
    """Itemized TCO of ``cluster`` plus its fabric over ``horizon_years``.

    Switch count comes from the fabric's actual switch nodes; server
    energy interpolates between idle and peak at ``utilization``;
    administration staffing follows the servers-per-admin ratio.
    """
    if horizon_years <= 0:
        raise ModelError("horizon must be positive")
    if not 0.0 <= utilization <= 1.0:
        raise ModelError("utilization must be in [0, 1]")
    if cluster.n_servers == 0:
        raise ModelError("cluster has no servers")

    tco = TcoBreakdown()
    seconds = horizon_years * units.YEAR

    # -- compute ------------------------------------------------------------
    tco.add("servers", cluster.total_price_usd(), "capex")
    idle = cluster.total_idle_power_w()
    peak = cluster.total_peak_power_w()
    mean_power = idle + utilization * (peak - idle)
    tco.add("server-energy", energy.cost_usd(mean_power, seconds), "opex")
    tco.add(
        "server-maintenance",
        cluster.total_price_usd() * 0.08 * horizon_years,
        "opex",
    )

    # -- network -----------------------------------------------------------
    n_switches = len(cluster.fabric.switches)
    switch_tco = switch_model.tco(horizon_years, energy=energy)
    tco.add("switches", switch_tco.capex_usd * n_switches, "capex")
    tco.add("switch-opex", switch_tco.opex_usd * n_switches, "opex")

    # -- facility and people --------------------------------------------------
    switch_power = switch_model.power_w * n_switches
    tco.add(
        "facility",
        facility.cost_usd(peak + switch_power, horizon_years),
        "capex",
    )
    admins = max(1.0, cluster.n_servers / admin_servers_per_person)
    tco.add("staff", admins * admin_usd_per_year * horizon_years, "opex")
    return tco


def cost_per_server_hour(
    cluster: "Cluster",
    switch_model: "SwitchModel",
    horizon_years: float = 5.0,
    utilization: float = 0.5,
    **kwargs,
) -> float:
    """The unit economics number: all-in cost per server-hour."""
    tco = datacenter_tco(
        cluster, switch_model, horizon_years, utilization, **kwargs
    )
    server_hours = cluster.n_servers * horizon_years * 365 * 24
    return tco.total_usd / server_hours


def design_comparison(
    designs: Dict[str, tuple],
    horizon_years: float = 5.0,
    utilization: float = 0.5,
) -> Dict[str, Dict[str, float]]:
    """TCO table across named designs: name -> (cluster, switch_model)."""
    if not designs:
        raise ModelError("need at least one design")
    out = {}
    for name, (cluster, switch_model) in designs.items():
        tco = datacenter_tco(
            cluster, switch_model, horizon_years, utilization
        )
        out[name] = {
            "capex_usd": tco.capex_usd,
            "opex_usd": tco.opex_usd,
            "total_usd": tco.total_usd,
            "usd_per_server_hour": cost_per_server_hour(
                cluster, switch_model, horizon_years, utilization
            ),
        }
    return out

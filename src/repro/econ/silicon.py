"""Silicon process-node and die-cost models.

Supports the paper's SoC-vs-SiP argument (§IV.B.3): an SoC "must be
implemented using a single silicon process ... the die must be fabricated
using an expensive leading edge silicon technology", while a SiP can mix
chiplets from different (cheaper, higher-yield) nodes.

Die yield uses the negative-binomial model standard in cost-of-silicon
literature, with a Poisson/Murphy alternative retained for the ablation
bench (E5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ModelError

#: Standard 300 mm wafer.
WAFER_DIAMETER_MM = 300.0


@dataclass(frozen=True)
class ProcessNode:
    """A silicon technology node with cost and defect parameters.

    ``defect_density_per_cm2`` and ``wafer_cost_usd`` are calibrated to
    published 2016-era estimates; leading-edge nodes cost more per wafer
    and, early in their life, have higher defect densities.
    """

    name: str
    feature_nm: float
    wafer_cost_usd: float
    defect_density_per_cm2: float
    mask_set_cost_usd: float
    # Relative logic density vs 28 nm (transistors per area).
    density_vs_28nm: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ModelError("feature size must be positive")
        if min(self.wafer_cost_usd, self.defect_density_per_cm2,
               self.mask_set_cost_usd, self.density_vs_28nm) < 0:
            raise ModelError(f"negative parameter on node {self.name}")


#: 2016-era process catalog (approximate public figures).
PROCESS_CATALOG: Dict[str, ProcessNode] = {
    node.name: node
    for node in (
        ProcessNode("65nm", 65.0, 1_900.0, 0.08, 1.0e6, 0.19),
        ProcessNode("40nm", 40.0, 2_600.0, 0.10, 2.0e6, 0.49),
        ProcessNode("28nm", 28.0, 3_500.0, 0.12, 3.0e6, 1.00),
        ProcessNode("16nm", 16.0, 6_000.0, 0.18, 9.0e6, 2.50),
        ProcessNode("10nm", 10.0, 9_000.0, 0.25, 15.0e6, 4.20),
        ProcessNode("7nm", 7.0, 12_000.0, 0.33, 25.0e6, 6.70),
    )
}


def dies_per_wafer(die_area_mm2: float, diameter_mm: float = WAFER_DIAMETER_MM) -> int:
    """Gross dies per wafer (standard edge-loss formula)."""
    if die_area_mm2 <= 0:
        raise ModelError(f"die area must be positive, got {die_area_mm2}")
    radius = diameter_mm / 2.0
    wafer_area = math.pi * radius**2
    edge_loss = math.pi * diameter_mm / math.sqrt(2.0 * die_area_mm2)
    count = wafer_area / die_area_mm2 - edge_loss
    return max(0, int(count))


def yield_negative_binomial(
    die_area_mm2: float, defect_density_per_cm2: float, alpha: float = 3.0
) -> float:
    """Die yield under the negative-binomial (clustered-defect) model.

    ``alpha`` is the clustering parameter; alpha -> infinity recovers the
    Poisson model.
    """
    _check_yield_args(die_area_mm2, defect_density_per_cm2)
    if alpha <= 0:
        raise ModelError(f"alpha must be positive, got {alpha}")
    defects = defect_density_per_cm2 * die_area_mm2 / 100.0  # mm^2 -> cm^2
    return (1.0 + defects / alpha) ** -alpha


def yield_poisson(die_area_mm2: float, defect_density_per_cm2: float) -> float:
    """Die yield under the Poisson (independent-defect) model."""
    _check_yield_args(die_area_mm2, defect_density_per_cm2)
    defects = defect_density_per_cm2 * die_area_mm2 / 100.0
    return math.exp(-defects)


def _check_yield_args(die_area_mm2: float, defect_density_per_cm2: float) -> None:
    if die_area_mm2 <= 0:
        raise ModelError(f"die area must be positive, got {die_area_mm2}")
    if defect_density_per_cm2 < 0:
        raise ModelError("defect density cannot be negative")


def die_cost_usd(
    die_area_mm2: float,
    node: ProcessNode,
    yield_model: str = "negative_binomial",
    alpha: float = 3.0,
) -> float:
    """Manufacturing cost of one *good* die on ``node``.

    Wafer cost divided by good dies per wafer. ``yield_model`` selects
    between ``"negative_binomial"`` (default) and ``"poisson"`` for the
    E5 ablation.
    """
    gross = dies_per_wafer(die_area_mm2)
    if gross == 0:
        raise ModelError(
            f"die of {die_area_mm2} mm^2 does not fit on a "
            f"{WAFER_DIAMETER_MM} mm wafer"
        )
    if yield_model == "negative_binomial":
        good_fraction = yield_negative_binomial(
            die_area_mm2, node.defect_density_per_cm2, alpha
        )
    elif yield_model == "poisson":
        good_fraction = yield_poisson(die_area_mm2, node.defect_density_per_cm2)
    else:
        raise ModelError(f"unknown yield model: {yield_model!r}")
    good = gross * good_fraction
    if good < 1e-9:
        raise ModelError("yield is effectively zero for this die size")
    return node.wafer_cost_usd / good


def scaled_area_mm2(area_at_28nm_mm2: float, node: ProcessNode) -> float:
    """Area of a 28 nm design ported to ``node`` (density scaling)."""
    if area_at_28nm_mm2 <= 0:
        raise ModelError("area must be positive")
    return area_at_28nm_mm2 / node.density_vs_28nm

"""Non-recurring engineering (NRE) cost models.

The paper invokes NRE twice: switching GPU vendors "requires considerable
Non-recurring Engineering cost" (§IV.B.2), and a market-specific server
SoC "is likely to be cost-prohibitive" (§IV.B.3). This module prices chip
design projects and software ports so those claims become computable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.econ.silicon import ProcessNode
from repro.errors import ModelError


@dataclass(frozen=True)
class EngineeringRates:
    """Fully-loaded engineering cost rates."""

    hardware_engineer_usd_per_year: float = 180_000.0
    software_engineer_usd_per_year: float = 150_000.0
    verification_fraction: float = 0.6  # verification adds 60% on design effort

    def __post_init__(self) -> None:
        if min(
            self.hardware_engineer_usd_per_year,
            self.software_engineer_usd_per_year,
        ) <= 0:
            raise ModelError("engineering rates must be positive")
        if self.verification_fraction < 0:
            raise ModelError("verification fraction cannot be negative")


@dataclass
class ChipProject:
    """A chip design project priced by its major NRE components.

    ``design_effort_person_years`` covers RTL through physical design;
    verification is added as a fraction; masks come from the process
    node; IP licensing covers purchased blocks (cores, SerDes, memory
    controllers); software covers drivers/firmware/toolchain work.
    """

    name: str
    node: ProcessNode
    design_effort_person_years: float
    ip_licensing_usd: float = 0.0
    software_effort_person_years: float = 0.0
    respins: int = 1  # additional mask sets beyond the first
    rates: EngineeringRates = field(default_factory=EngineeringRates)

    def __post_init__(self) -> None:
        if self.design_effort_person_years < 0:
            raise ModelError("design effort cannot be negative")
        if self.respins < 0:
            raise ModelError("respins cannot be negative")

    @property
    def design_cost_usd(self) -> float:
        """RTL + physical design labour."""
        return (
            self.design_effort_person_years
            * self.rates.hardware_engineer_usd_per_year
        )

    @property
    def verification_cost_usd(self) -> float:
        """Verification labour as a fraction of design labour."""
        return self.design_cost_usd * self.rates.verification_fraction

    @property
    def mask_cost_usd(self) -> float:
        """Mask sets: first set plus respins."""
        return self.node.mask_set_cost_usd * (1 + self.respins)

    @property
    def software_cost_usd(self) -> float:
        """Drivers, firmware and toolchain labour."""
        return (
            self.software_effort_person_years
            * self.rates.software_engineer_usd_per_year
        )

    def total_nre_usd(self) -> float:
        """All NRE components summed."""
        return (
            self.design_cost_usd
            + self.verification_cost_usd
            + self.mask_cost_usd
            + self.ip_licensing_usd
            + self.software_cost_usd
        )

    def breakdown(self) -> Dict[str, float]:
        """Itemized NRE for reporting."""
        return {
            "design": self.design_cost_usd,
            "verification": self.verification_cost_usd,
            "masks": self.mask_cost_usd,
            "ip_licensing": self.ip_licensing_usd,
            "software": self.software_cost_usd,
        }

    def amortized_usd_per_unit(self, volume_units: float) -> float:
        """NRE per shipped unit at ``volume_units`` lifetime volume."""
        if volume_units <= 0:
            raise ModelError(f"volume must be positive, got {volume_units}")
        return self.total_nre_usd() / volume_units


def vendor_switch_nre_usd(
    codebase_kloc: float,
    fraction_device_specific: float = 0.15,
    rewrite_usd_per_kloc: float = 25_000.0,
    revalidation_factor: float = 1.5,
) -> float:
    """Cost of migrating an accelerated codebase to another vendor.

    The device-specific fraction (kernels, tuning, build glue) must be
    rewritten, then the whole port revalidated; ``revalidation_factor``
    multiplies the rewrite cost to cover testing and performance
    re-tuning. Models the lock-in cost of §IV.B.2.
    """
    if codebase_kloc < 0:
        raise ModelError("codebase size cannot be negative")
    if not 0.0 <= fraction_device_specific <= 1.0:
        raise ModelError("device-specific fraction must be in [0, 1]")
    rewrite = codebase_kloc * fraction_device_specific * rewrite_usd_per_kloc
    return rewrite * revalidation_factor

"""Economic models: TCO, ROI, NRE, silicon cost, SoC-vs-SiP.

These models turn the roadmap's qualitative business arguments (Findings
2-4, Recommendations 4-6) into numbers. They are analytical, not
simulated: every function is deterministic given its inputs.
"""

from repro.econ.cost import (
    CostItem,
    EnergyPrice,
    TcoBreakdown,
    learning_curve_price,
    server_tco,
)
from repro.econ.datacenter import (
    FacilityModel,
    cost_per_server_hour,
    datacenter_tco,
    design_comparison,
)
from repro.econ.nre import ChipProject, EngineeringRates, vendor_switch_nre_usd
from repro.econ.roi import (
    AcceleratorInvestment,
    breakeven_speedup,
    breakeven_utilization,
    npv,
    payback_period_years,
)
from repro.econ.sensitivity import (
    SensitivityRange,
    TornadoBar,
    decision_flips,
    default_accelerator_ranges,
    tornado,
)
from repro.econ.silicon import (
    PROCESS_CATALOG,
    ProcessNode,
    die_cost_usd,
    dies_per_wafer,
    scaled_area_mm2,
    yield_negative_binomial,
    yield_poisson,
)
from repro.econ.soc_sip import (
    ChipDesign,
    PackagingModel,
    Subsystem,
    euroserver_reference_design,
)

__all__ = [
    "AcceleratorInvestment",
    "ChipDesign",
    "ChipProject",
    "CostItem",
    "EnergyPrice",
    "EngineeringRates",
    "FacilityModel",
    "PROCESS_CATALOG",
    "PackagingModel",
    "ProcessNode",
    "SensitivityRange",
    "Subsystem",
    "TcoBreakdown",
    "TornadoBar",
    "breakeven_speedup",
    "breakeven_utilization",
    "cost_per_server_hour",
    "datacenter_tco",
    "decision_flips",
    "default_accelerator_ranges",
    "design_comparison",
    "die_cost_usd",
    "dies_per_wafer",
    "euroserver_reference_design",
    "learning_curve_price",
    "npv",
    "payback_period_years",
    "scaled_area_mm2",
    "server_tco",
    "tornado",
    "vendor_switch_nre_usd",
    "yield_negative_binomial",
    "yield_poisson",
]

"""SoC versus System-in-Package (SiP) cost comparison.

Implements §IV.B.3: a monolithic SoC forces every subsystem onto one
(leading-edge) process and re-spins the whole die for any interface
change, while a SiP (as pioneered by the EC EUROSERVER project) assembles
chiplets that may each use the cheapest adequate node and be replaced
individually.

The headline experiment (E5) sweeps lifetime volume and finds the
crossover volume below which SiP is cheaper -- the paper's claim that SiP
"may give smaller companies a better opportunity to compete".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.econ.nre import ChipProject, EngineeringRates
from repro.econ.silicon import ProcessNode, die_cost_usd, scaled_area_mm2
from repro.errors import ModelError


@dataclass(frozen=True)
class Subsystem:
    """A functional block of a server chip (cores, I/O, accelerator...).

    ``area_at_28nm_mm2`` is the block's area if built at 28 nm;
    ``needs_leading_edge`` marks performance-critical logic (CPU cores)
    that must use the most advanced node in the design;
    ``design_effort_person_years`` is the block's share of NRE labour.
    """

    name: str
    area_at_28nm_mm2: float
    design_effort_person_years: float
    needs_leading_edge: bool = False
    preferred_node: Optional[str] = None  # else cheapest adequate node

    def __post_init__(self) -> None:
        if self.area_at_28nm_mm2 <= 0:
            raise ModelError(f"subsystem {self.name}: area must be positive")
        if self.design_effort_person_years < 0:
            raise ModelError(f"subsystem {self.name}: negative design effort")


@dataclass(frozen=True)
class PackagingModel:
    """SiP packaging cost parameters (substrate + assembly + test)."""

    base_usd: float = 8.0
    per_chiplet_usd: float = 4.0
    assembly_yield: float = 0.98  # per-chiplet attach yield

    def __post_init__(self) -> None:
        if not 0.0 < self.assembly_yield <= 1.0:
            raise ModelError("assembly yield must be in (0, 1]")

    def cost_usd(self, n_chiplets: int) -> float:
        """Packaging cost for a SiP with ``n_chiplets``."""
        if n_chiplets < 1:
            raise ModelError("a SiP needs at least one chiplet")
        return self.base_usd + self.per_chiplet_usd * n_chiplets

    def package_yield(self, n_chiplets: int) -> float:
        """Probability every chiplet attaches successfully."""
        return self.assembly_yield**n_chiplets


@dataclass
class ChipDesign:
    """A complete server-chip design as a set of subsystems."""

    name: str
    subsystems: List[Subsystem]
    leading_node: ProcessNode
    commodity_node: ProcessNode
    packaging: PackagingModel = field(default_factory=PackagingModel)
    rates: EngineeringRates = field(default_factory=EngineeringRates)

    def __post_init__(self) -> None:
        if not self.subsystems:
            raise ModelError("design needs at least one subsystem")
        if self.leading_node.feature_nm > self.commodity_node.feature_nm:
            raise ModelError(
                "leading node must be at least as advanced as commodity node"
            )

    # -- SoC --------------------------------------------------------------

    def soc_unit_cost_usd(self) -> float:
        """Per-unit silicon cost of the monolithic SoC.

        The whole die is on the leading-edge node (the paper: the SoC
        "must be implemented using a single silicon process" and the
        performance-critical cores pin that process to the leading edge).
        """
        total_area = sum(
            scaled_area_mm2(s.area_at_28nm_mm2, self.leading_node)
            for s in self.subsystems
        )
        return die_cost_usd(total_area, self.leading_node)

    def soc_nre(self) -> ChipProject:
        """NRE of the monolithic project: one big design, one mask set."""
        effort = sum(s.design_effort_person_years for s in self.subsystems)
        # Integration overhead: a monolithic design couples every block.
        integration = 0.25 * effort
        return ChipProject(
            name=f"{self.name}-soc",
            node=self.leading_node,
            design_effort_person_years=effort + integration,
            rates=self.rates,
        )

    # -- SiP --------------------------------------------------------------

    def _chiplet_node(self, subsystem: Subsystem) -> ProcessNode:
        if subsystem.needs_leading_edge:
            return self.leading_node
        return self.commodity_node

    def sip_unit_cost_usd(self) -> float:
        """Per-unit cost of the SiP: chiplet dies + packaging, yield-adjusted."""
        die_total = 0.0
        for subsystem in self.subsystems:
            node = self._chiplet_node(subsystem)
            area = scaled_area_mm2(subsystem.area_at_28nm_mm2, node)
            die_total += die_cost_usd(area, node)
        n = len(self.subsystems)
        packaged = die_total + self.packaging.cost_usd(n)
        return packaged / self.packaging.package_yield(n)

    def sip_nre(self) -> ChipProject:
        """NRE of the SiP project.

        Each chiplet is a smaller design (no cross-block integration),
        but each needs its own mask set; mask cost is dominated by the
        cheap commodity node for most chiplets. Modelled as one
        aggregated project on the *commodity* node with per-chiplet mask
        surcharges folded into IP licensing.
        """
        effort = sum(s.design_effort_person_years for s in self.subsystems)
        mask_total = sum(
            self._chiplet_node(s).mask_set_cost_usd for s in self.subsystems
        )
        # Represent the multi-mask reality by charging the first mask set
        # via the project node and the rest as direct costs.
        project = ChipProject(
            name=f"{self.name}-sip",
            node=self.commodity_node,
            design_effort_person_years=effort,
            ip_licensing_usd=mask_total - self.commodity_node.mask_set_cost_usd,
            respins=0,
            rates=self.rates,
        )
        return project

    # -- comparison ---------------------------------------------------------

    def cost_per_unit_at_volume(self, volume_units: float) -> Dict[str, float]:
        """All-in per-unit cost (silicon + amortized NRE) for both styles."""
        if volume_units <= 0:
            raise ModelError(f"volume must be positive, got {volume_units}")
        soc = self.soc_unit_cost_usd() + self.soc_nre().amortized_usd_per_unit(
            volume_units
        )
        sip = self.sip_unit_cost_usd() + self.sip_nre().amortized_usd_per_unit(
            volume_units
        )
        return {"soc": soc, "sip": sip}

    def crossover_volume(
        self, lo: float = 1e3, hi: float = 1e9, tolerance: float = 0.01
    ) -> Optional[float]:
        """Volume above which the SoC becomes cheaper per unit.

        Returns ``None`` if one option dominates across ``[lo, hi]``.
        """

        def advantage(volume: float) -> float:
            costs = self.cost_per_unit_at_volume(volume)
            return costs["sip"] - costs["soc"]  # >0 means SoC cheaper

        at_lo, at_hi = advantage(lo), advantage(hi)
        if at_lo > 0 and at_hi > 0:
            return None  # SoC always cheaper
        if at_lo < 0 and at_hi < 0:
            return None  # SiP always cheaper
        while hi / lo > 1.0 + tolerance:
            mid = (lo * hi) ** 0.5
            if (advantage(mid) > 0) == (at_hi > 0):
                hi = mid
            else:
                lo = mid
        return (lo * hi) ** 0.5

    def interface_upgrade_cost_usd(self, subsystem_name: str) -> Dict[str, float]:
        """NRE to swap one subsystem (e.g. add a 40 GbE interface).

        The paper: for an SoC, "adding a new interface requires a costly
        redesign" (full-die respin); for a SiP only the affected chiplet
        is redesigned and re-masked.
        """
        target = next(
            (s for s in self.subsystems if s.name == subsystem_name), None
        )
        if target is None:
            raise ModelError(f"unknown subsystem: {subsystem_name!r}")
        soc_cost = (
            self.soc_nre().design_cost_usd * 0.3  # rework + re-verify the die
            + self.leading_node.mask_set_cost_usd
        )
        node = self._chiplet_node(target)
        sip_cost = (
            target.design_effort_person_years
            * self.rates.hardware_engineer_usd_per_year
            * (1.0 + self.rates.verification_fraction)
            + node.mask_set_cost_usd
        )
        return {"soc": soc_cost, "sip": sip_cost}


def euroserver_reference_design(
    leading: ProcessNode, commodity: ProcessNode
) -> ChipDesign:
    """A EUROSERVER-like micro-server design used by tests and benches.

    Four subsystems: ARM core cluster (leading edge), DDR+NVM memory
    controller, 10/40 GbE I/O chiplet, and an analytics accelerator.
    """
    return ChipDesign(
        name="euroserver",
        subsystems=[
            Subsystem("cpu-cluster", 80.0, 40.0, needs_leading_edge=True),
            Subsystem("memory-controller", 30.0, 12.0),
            Subsystem("network-io", 25.0, 10.0),
            Subsystem("analytics-accelerator", 45.0, 18.0),
        ],
        leading_node=leading,
        commodity_node=commodity,
    )

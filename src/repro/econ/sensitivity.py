"""One-at-a-time (tornado) sensitivity analysis for economic models.

Finding 2 says adoption decisions are dominated by *uncertainty* ("it is
difficult to predict the level of gains ahead of time"). A tornado
analysis shows which input the decision actually hinges on -- typically
utilization and speedup, not hardware price, which is the roadmap's
argument for benchmarks (R9) and pilot projects (R4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.econ.roi import AcceleratorInvestment
from repro.errors import ModelError


@dataclass(frozen=True)
class SensitivityRange:
    """Low/high bounds for one model input."""

    parameter: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ModelError(
                f"{self.parameter}: low bound exceeds high bound"
            )


@dataclass(frozen=True)
class TornadoBar:
    """One parameter's output swing."""

    parameter: str
    output_at_low: float
    output_at_high: float

    @property
    def swing(self) -> float:
        """Absolute output range this parameter controls."""
        return abs(self.output_at_high - self.output_at_low)


def tornado(
    investment: AcceleratorInvestment,
    ranges: List[SensitivityRange],
    metric: Callable[[AcceleratorInvestment], float] = None,
) -> List[TornadoBar]:
    """One-at-a-time sweep; bars sorted by swing, largest first.

    ``metric`` defaults to NPV, in which case all ``2 * len(ranges)``
    model evaluations run as one :func:`repro.mc.npv_batch` call (the
    batch kernel is bit-for-bit equal to the scalar ``npv_usd``, so the
    bars are unchanged). A custom metric, or a range over a parameter
    the batch kernel keeps scalar (``discount_rate``,
    ``horizon_years``), falls back to per-range scalar evaluation.

    Edge cases are well-defined: an empty ``ranges`` list raises
    :class:`~repro.errors.ModelError`; a degenerate range
    (``low == high``) yields a zero-swing bar; equal swings tie-break
    deterministically by parameter name.
    """
    if not ranges:
        raise ModelError(
            "need at least one parameter range (got an empty list)"
        )
    valid_fields = set(investment.__dataclass_fields__)
    for bounds in ranges:
        if bounds.parameter not in valid_fields:
            raise ModelError(f"unknown parameter: {bounds.parameter!r}")
    bars = None
    if metric is None:
        from repro.mc.roi import tornado_outputs_batch

        outputs = tornado_outputs_batch(investment, ranges)
        if outputs is not None:
            bars = [
                TornadoBar(
                    bounds.parameter,
                    float(outputs[i, 0]),
                    float(outputs[i, 1]),
                )
                for i, bounds in enumerate(ranges)
            ]
    if bars is None:
        metric = metric or (lambda inv: inv.npv_usd())
        bars = []
        for bounds in ranges:
            low = metric(
                replace(investment, **{bounds.parameter: bounds.low})
            )
            high = metric(
                replace(investment, **{bounds.parameter: bounds.high})
            )
            bars.append(TornadoBar(bounds.parameter, low, high))
    return sorted(bars, key=lambda b: (-b.swing, b.parameter))


def default_accelerator_ranges() -> List[SensitivityRange]:
    """The Finding-2 uncertainty set for accelerator adoption."""
    return [
        SensitivityRange("utilization", 0.1, 0.9),
        SensitivityRange("speedup", 2.0, 10.0),
        SensitivityRange("hardware_usd", 5_000.0, 80_000.0),
        SensitivityRange("port_effort_person_months", 2.0, 18.0),
        SensitivityRange("electricity_usd_per_kwh", 0.05, 0.25),
    ]


def decision_flips(
    investment: AcceleratorInvestment,
    ranges: List[SensitivityRange],
) -> Dict[str, bool]:
    """Which single parameters can flip the adopt/reject decision.

    Evaluated as one batch NPV call when every range is over a
    batchable parameter; otherwise per-range scalar evaluation.
    """
    from repro.mc.roi import decision_flip_batch

    batched = decision_flip_batch(investment, ranges)
    if batched is not None:
        return batched
    base = investment.worthwhile()
    flips = {}
    for bounds in ranges:
        low = replace(investment, **{bounds.parameter: bounds.low})
        high = replace(investment, **{bounds.parameter: bounds.high})
        flips[bounds.parameter] = (
            low.worthwhile() != base or high.worthwhile() != base
        )
    return flips

"""Cluster assembly: servers attached to a fabric.

A :class:`Cluster` binds :class:`~repro.node.server.Server` instances to
the host nodes of a :class:`~repro.network.topology.Fabric`, giving the
frameworks and scheduler layers one object that knows both compute and
network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.network.topology import Fabric
from repro.node.server import Server


@dataclass
class Cluster:
    """Servers mapped one-to-one onto fabric host nodes."""

    fabric: Fabric
    servers: Dict[str, Server] = field(default_factory=dict)

    def attach(self, host: str, server: Server) -> None:
        """Place ``server`` at fabric node ``host``."""
        if host not in self.fabric.graph:
            raise TopologyError(f"unknown fabric node: {host}")
        if self.fabric.role(host) != "host":
            raise TopologyError(f"{host} is not a host node")
        if host in self.servers:
            raise TopologyError(f"host {host} already has a server")
        self.servers[host] = server

    def attach_uniform(self, server_factory) -> None:
        """Attach one server from ``server_factory()`` to every host."""
        for host in self.fabric.hosts:
            if host not in self.servers:
                self.attach(host, server_factory())

    def server_at(self, host: str) -> Server:
        """The server at ``host``."""
        if host not in self.servers:
            raise TopologyError(f"no server at {host}")
        return self.servers[host]

    @property
    def hosts(self) -> List[str]:
        """Hosts that have servers, sorted."""
        return sorted(self.servers)

    @property
    def n_servers(self) -> int:
        """Number of attached servers."""
        return len(self.servers)

    def total_price_usd(self) -> float:
        """Bill of materials across all servers."""
        return sum(s.price_usd for s in self.servers.values())

    def total_peak_power_w(self) -> float:
        """Peak power across all servers."""
        return sum(s.peak_power_w for s in self.servers.values())

    def total_idle_power_w(self) -> float:
        """Idle power across all servers."""
        return sum(s.idle_power_w for s in self.servers.values())

    def devices_of_kind(self, kind) -> List[tuple]:
        """(host, device) pairs for every device of ``kind``."""
        out = []
        for host in self.hosts:
            for device in self.servers[host].devices:
                if device.kind == kind:
                    out.append((host, device))
        return out


def uniform_cluster(fabric: Fabric, server_factory) -> Cluster:
    """A cluster with identical servers on every fabric host."""
    cluster = Cluster(fabric)
    cluster.attach_uniform(server_factory)
    return cluster
